//! Flow networks with max-flow / min-cut.
//!
//! Algorithm 1 of the paper computes the responsibility of a tuple for a
//! linear query by repeated min-cut computations on a layered network whose
//! edges are database tuples: endogenous tuples get capacity 1, exogenous
//! tuples capacity ∞, and the tuple under scrutiny capacity 0 (Example
//! 4.2). The min-cut *value* is then exactly the size of the minimum
//! contingency set `Γ`.
//!
//! Two algorithms are provided — Edmonds–Karp (the textbook realisation of
//! the paper's "Ford–Fulkerson" reference) and Dinic — which must agree on
//! every network; the bench suite ablates one against the other.

use crate::bitset::FixedBitSet;
use std::collections::VecDeque;

/// Effectively-infinite capacity. Large enough that summing every edge of
/// any realistic network cannot overflow, and excluded from min-cuts.
pub const INF: u64 = u64::MAX / 8;

/// Which augmenting strategy to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowAlgorithm {
    /// BFS augmenting paths (Edmonds–Karp).
    EdmondsKarp,
    /// Level graphs + blocking flows (Dinic).
    Dinic,
}

/// Handle to an edge added via [`FlowNetwork::add_edge`], usable to change
/// its capacity and to identify it in a min-cut.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeHandle(pub usize);

#[derive(Clone, Debug)]
struct HalfEdge {
    to: usize,
    /// Residual capacity during a run.
    cap: u64,
}

/// A directed flow network under construction. Capacities may be changed
/// between runs; each [`FlowNetwork::max_flow`] call works on a scratch
/// copy so the builder stays pristine.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    node_count: usize,
    /// Interleaved half-edges: forward at `2i`, reverse at `2i + 1`.
    halves: Vec<HalfEdge>,
    adj: Vec<Vec<usize>>,
    caps: Vec<u64>,
}

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The max-flow value == min-cut capacity.
    pub value: u64,
    /// Edges of one minimum cut (source-side → sink-side saturated edges).
    pub min_cut: Vec<EdgeHandle>,
}

impl FlowNetwork {
    /// Create a network with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        FlowNetwork {
            node_count,
            halves: Vec::new(),
            adj: vec![Vec::new(); node_count],
            caps: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (forward) edges.
    pub fn edge_count(&self) -> usize {
        self.caps.len()
    }

    /// Append a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.node_count += 1;
        self.node_count - 1
    }

    /// Add a directed edge `from → to` with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> EdgeHandle {
        assert!(
            from < self.node_count && to < self.node_count,
            "node out of range"
        );
        let idx = self.caps.len();
        self.halves.push(HalfEdge { to, cap });
        self.halves.push(HalfEdge { to: from, cap: 0 });
        self.adj[from].push(2 * idx);
        self.adj[to].push(2 * idx + 1);
        self.caps.push(cap);
        EdgeHandle(idx)
    }

    /// Change the capacity of an edge (affects subsequent runs).
    pub fn set_capacity(&mut self, edge: EdgeHandle, cap: u64) {
        self.caps[edge.0] = cap;
    }

    /// Current capacity of an edge.
    pub fn capacity(&self, edge: EdgeHandle) -> u64 {
        self.caps[edge.0]
    }

    /// The endpoints `(from, to)` of an edge.
    pub fn endpoints(&self, edge: EdgeHandle) -> (usize, usize) {
        let to = self.halves[2 * edge.0].to;
        let from = self.halves[2 * edge.0 + 1].to;
        (from, to)
    }

    /// Compute the max flow from `source` to `sink`.
    pub fn max_flow(&self, source: usize, sink: usize, algo: FlowAlgorithm) -> FlowResult {
        let mut run = Run {
            halves: self.halves.clone(),
            adj: &self.adj,
        };
        // Load current capacities into the scratch halves.
        for (i, &c) in self.caps.iter().enumerate() {
            run.halves[2 * i].cap = c;
            run.halves[2 * i + 1].cap = 0;
        }
        let value = match algo {
            FlowAlgorithm::EdmondsKarp => run.edmonds_karp(source, sink),
            FlowAlgorithm::Dinic => run.dinic(source, sink),
        };
        // Min cut: forward edges from the residual-reachable side to the rest.
        let reachable = run.residual_reachable(source);
        let mut min_cut = Vec::new();
        for i in 0..self.caps.len() {
            let (from, to) = self.endpoints(EdgeHandle(i));
            if reachable.contains(from) && !reachable.contains(to) && self.caps[i] > 0 {
                min_cut.push(EdgeHandle(i));
            }
        }
        FlowResult { value, min_cut }
    }
}

struct Run<'a> {
    halves: Vec<HalfEdge>,
    adj: &'a [Vec<usize>],
}

impl Run<'_> {
    fn edmonds_karp(&mut self, source: usize, sink: usize) -> u64 {
        let mut flow = 0u64;
        loop {
            // BFS for the shortest augmenting path.
            let mut pred: Vec<Option<usize>> = vec![None; self.adj.len()];
            let mut queue = VecDeque::new();
            queue.push_back(source);
            let mut seen = vec![false; self.adj.len()];
            seen[source] = true;
            'bfs: while let Some(u) = queue.pop_front() {
                for &h in &self.adj[u] {
                    let e = &self.halves[h];
                    if e.cap > 0 && !seen[e.to] {
                        seen[e.to] = true;
                        pred[e.to] = Some(h);
                        if e.to == sink {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !seen[sink] {
                return flow;
            }
            // Find bottleneck and augment.
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while v != source {
                let h = pred[v].expect("path exists");
                bottleneck = bottleneck.min(self.halves[h].cap);
                v = self.halves[h ^ 1].to;
            }
            let mut v = sink;
            while v != source {
                let h = pred[v].expect("path exists");
                self.halves[h].cap -= bottleneck;
                self.halves[h ^ 1].cap += bottleneck;
                v = self.halves[h ^ 1].to;
            }
            flow += bottleneck;
        }
    }

    fn dinic(&mut self, source: usize, sink: usize) -> u64 {
        let n = self.adj.len();
        let mut flow = 0u64;
        loop {
            // Build level graph.
            let mut level = vec![usize::MAX; n];
            level[source] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(source);
            while let Some(u) = queue.pop_front() {
                for &h in &self.adj[u] {
                    let e = &self.halves[h];
                    if e.cap > 0 && level[e.to] == usize::MAX {
                        level[e.to] = level[u] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] == usize::MAX {
                return flow;
            }
            // Blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs_push(source, sink, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs_push(
        &mut self,
        u: usize,
        sink: usize,
        limit: u64,
        level: &[usize],
        iter: &mut [usize],
    ) -> u64 {
        if u == sink {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let h = self.adj[u][iter[u]];
            let (to, cap) = {
                let e = &self.halves[h];
                (e.to, e.cap)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs_push(to, sink, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.halves[h].cap -= pushed;
                    self.halves[h ^ 1].cap += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    fn residual_reachable(&self, source: usize) -> FixedBitSet {
        let mut seen = FixedBitSet::with_capacity(self.adj.len());
        seen.insert(source);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &h in &self.adj[u] {
                let e = &self.halves[h];
                if e.cap > 0 && !seen.contains(e.to) {
                    seen.insert(e.to);
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(net: &FlowNetwork, s: usize, t: usize) -> u64 {
        let a = net.max_flow(s, t, FlowAlgorithm::EdmondsKarp);
        let b = net.max_flow(s, t, FlowAlgorithm::Dinic);
        assert_eq!(a.value, b.value, "Edmonds–Karp and Dinic must agree");
        a.value
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5);
        assert_eq!(both(&net, 0, 1), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(both(&net, 0, 5), 23);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(both(&net, 0, 1), 5);
    }

    #[test]
    fn disconnected_network_has_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(2, 3, 10);
        assert_eq!(both(&net, 0, 3), 0);
    }

    #[test]
    fn min_cut_edges_separate_source_from_sink() {
        // Diamond: s→a (1), s→b (1), a→t (INF), b→t (INF). Cut = the two
        // unit edges.
        let mut net = FlowNetwork::new(4);
        let e1 = net.add_edge(0, 1, 1);
        let e2 = net.add_edge(0, 2, 1);
        net.add_edge(1, 3, INF);
        net.add_edge(2, 3, INF);
        let result = net.max_flow(0, 3, FlowAlgorithm::Dinic);
        assert_eq!(result.value, 2);
        let mut cut = result.min_cut.clone();
        cut.sort();
        assert_eq!(cut, vec![e1, e2]);
    }

    #[test]
    fn infinite_capacities_never_cut() {
        // s→a INF, a→t 1: cut must be the unit edge.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, INF);
        let unit = net.add_edge(1, 2, 1);
        let result = net.max_flow(0, 2, FlowAlgorithm::EdmondsKarp);
        assert_eq!(result.value, 1);
        assert_eq!(result.min_cut, vec![unit]);
    }

    #[test]
    fn zero_capacity_edges_are_free_to_cut() {
        // Example 4.2's trick: the tuple under scrutiny gets capacity 0, so
        // cutting it costs nothing.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 7);
        let result = net.max_flow(0, 2, FlowAlgorithm::Dinic);
        assert_eq!(result.value, 0);
    }

    #[test]
    fn capacity_updates_apply_to_next_run() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 1);
        assert_eq!(both(&net, 0, 1), 1);
        net.set_capacity(e, 9);
        assert_eq!(net.capacity(e), 9);
        assert_eq!(both(&net, 0, 1), 9);
        assert_eq!(net.endpoints(e), (0, 1));
    }

    #[test]
    fn layered_tuple_network_like_example_4_2() {
        // R(x,y), S(y,z) with R = {(x1,y1),(x1,y2)}, S = {(y1,z1),(y2,z1)}.
        // Nodes: s=0, x1=1, y1=2, y2=3, z1=4, t=5.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, INF);
        net.add_edge(1, 2, 1); // R(x1,y1)
        net.add_edge(1, 3, 1); // R(x1,y2)
        net.add_edge(2, 4, 1); // S(y1,z1)
        net.add_edge(3, 4, 1); // S(y2,z1)
        net.add_edge(4, 5, INF);
        // Two disjoint tuple paths → flow 2; removing any 2 tuples cutting
        // both paths kills the query.
        assert_eq!(both(&net, 0, 5), 2);
    }

    #[test]
    fn add_node_grows_network() {
        let mut net = FlowNetwork::new(1);
        let a = net.add_node();
        let b = net.add_node();
        net.add_edge(a, b, 3);
        assert_eq!(net.node_count(), 3);
        assert_eq!(both(&net, a, b), 3);
    }

    #[test]
    fn large_grid_agreement() {
        // 5x5 grid from corner to corner, unit capacities; EK and Dinic agree.
        let n = 5usize;
        let id = |r: usize, c: usize| r * n + c;
        let mut net = FlowNetwork::new(n * n);
        for r in 0..n {
            for c in 0..n {
                if r + 1 < n {
                    net.add_edge(id(r, c), id(r + 1, c), 1);
                }
                if c + 1 < n {
                    net.add_edge(id(r, c), id(r, c + 1), 1);
                }
            }
        }
        assert_eq!(both(&net, id(0, 0), id(n - 1, n - 1)), 2);
    }
}
