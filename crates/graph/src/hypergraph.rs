//! Hypergraphs over at most 64 vertices.
//!
//! The dichotomy analysis works on the **dual query hypergraph** `H^D(V, E)`
//! of Def. 4.3: vertices are the query's atoms and there is one hyperedge
//! per variable, containing the atoms in which the variable occurs. With
//! conjunctive queries having a handful of atoms, a `u64` bitset per edge
//! is both the simplest and fastest representation.

use std::fmt;

/// A hypergraph on vertices `0..n` (`n ≤ 64`), edges stored as bitsets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<u64>,
    edge_labels: Vec<String>,
}

impl Hypergraph {
    /// Create a hypergraph with `n` vertices and no edges.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 64, "Hypergraph supports at most 64 vertices");
        Hypergraph {
            n,
            edges: Vec::new(),
            edge_labels: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a hyperedge given its member vertices; returns its index.
    pub fn add_edge(&mut self, members: &[usize], label: impl Into<String>) -> usize {
        let mut bits = 0u64;
        for &v in members {
            assert!(v < self.n, "vertex {v} out of range");
            bits |= 1 << v;
        }
        self.edges.push(bits);
        self.edge_labels.push(label.into());
        self.edges.len() - 1
    }

    /// Add a hyperedge from a pre-built bitset.
    pub fn add_edge_bits(&mut self, bits: u64, label: impl Into<String>) -> usize {
        assert!(
            self.n == 64 || bits < (1u64 << self.n),
            "edge bits out of range"
        );
        self.edges.push(bits);
        self.edge_labels.push(label.into());
        self.edges.len() - 1
    }

    /// The bitset of edge `i`.
    pub fn edge(&self, i: usize) -> u64 {
        self.edges[i]
    }

    /// All edge bitsets.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// The label of edge `i`.
    pub fn edge_label(&self, i: usize) -> &str {
        &self.edge_labels[i]
    }

    /// The member vertices of edge `i`, ascending.
    pub fn edge_members(&self, i: usize) -> Vec<usize> {
        let bits = self.edges[i];
        (0..self.n).filter(|&v| bits & (1 << v) != 0).collect()
    }

    /// Indices of the edges containing vertex `v`.
    pub fn edges_containing(&self, v: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&i| self.edges[i] & (1 << v) != 0)
            .collect()
    }

    /// Whether two vertices share an edge.
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        let mask = (1u64 << u) | (1 << v);
        self.edges.iter().any(|&e| e & mask == mask)
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Hypergraph on {} vertices:", self.n)?;
        for i in 0..self.edges.len() {
            writeln!(
                f,
                "  {} = {{{}}}",
                self.edge_label(i),
                self.edge_members(i)
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let mut h = Hypergraph::new(4);
        let e0 = h.add_edge(&[0, 1], "x");
        let e1 = h.add_edge(&[1, 2, 3], "y");
        assert_eq!(h.vertex_count(), 4);
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.edge_members(e0), vec![0, 1]);
        assert_eq!(h.edge_members(e1), vec![1, 2, 3]);
        assert_eq!(h.edges_containing(1), vec![0, 1]);
        assert_eq!(h.edges_containing(3), vec![1]);
        assert_eq!(h.edge_label(0), "x");
        assert!(h.adjacent(0, 1));
        assert!(h.adjacent(2, 3));
        assert!(!h.adjacent(0, 3));
    }

    #[test]
    fn bitset_edge_api() {
        let mut h = Hypergraph::new(3);
        h.add_edge_bits(0b101, "z");
        assert_eq!(h.edge_members(0), vec![0, 2]);
        assert_eq!(h.edge(0), 0b101);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_bounds_checked() {
        let mut h = Hypergraph::new(2);
        h.add_edge(&[2], "bad");
    }

    #[test]
    fn display_lists_edges() {
        let mut h = Hypergraph::new(3);
        h.add_edge(&[0, 2], "w");
        let s = h.to_string();
        assert!(s.contains("w = {0, 2}"));
    }

    #[test]
    fn sixty_four_vertices_supported() {
        let mut h = Hypergraph::new(64);
        h.add_edge(&[0, 63], "wide");
        assert_eq!(h.edge_members(0), vec![0, 63]);
    }
}
