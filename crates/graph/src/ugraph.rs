//! Undirected graphs and reachability (UGAP).
//!
//! Theorem 4.15's LOGSPACE-hardness chain starts from the Undirected Graph
//! Accessibility Problem: given `G = (V, E)` and nodes `a, b`, is there a
//! path from `a` to `b`? This module supplies the graph type, BFS
//! reachability, and the bipartite incidence construction (UGAP → BGAP)
//! used as the first reduction step.

use std::collections::VecDeque;

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug)]
pub struct UGraph {
    n: usize,
    adj: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
}

impl UGraph {
    /// Create a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            n,
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list, in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Add an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge out of range");
        self.adj[u].push(v);
        if u != v {
            self.adj[v].push(u);
        }
        self.edges.push((u, v));
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// BFS reachability: is there a path from `a` to `b`? (UGAP.)
    pub fn reachable(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.n];
        seen[a] = true;
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &w in &self.adj[u] {
                if w == b {
                    return true;
                }
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        false
    }

    /// The **incidence bipartition** used by the paper's UGAP → BGAP step:
    /// left side `X = V`, right side `Y = E ∪ {c}` where `c` is a fresh
    /// node, with edges `(x, (x,y))`, `(y, (x,y))` for every original edge,
    /// plus `(b, c)`. There is a path `a → b` in `G` iff there is a path
    /// `a → c` in the bipartite graph.
    ///
    /// Returns `(bipartite graph, left_size, a', c')` where vertices
    /// `0..left_size` are `X` and the rest are `Y`; `a' = a` and `c'` is the
    /// fresh target node.
    pub fn to_bgap(&self, a: usize, b: usize) -> (UGraph, usize, usize, usize) {
        let left = self.n;
        let right = self.edges.len() + 1;
        let mut bg = UGraph::new(left + right);
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let edge_node = left + i;
            bg.add_edge(u, edge_node);
            bg.add_edge(v, edge_node);
        }
        let c = left + self.edges.len();
        bg.add_edge(b, c);
        (bg, left, a, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_basics() {
        let mut g = UGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        assert!(g.reachable(0, 2));
        assert!(g.reachable(2, 0), "undirected");
        assert!(!g.reachable(0, 3));
        assert!(g.reachable(4, 4), "trivially reachable from itself");
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut g = UGraph::new(2);
        g.add_edge(0, 0);
        assert!(!g.reachable(0, 1));
        g.add_edge(0, 1);
        assert!(g.reachable(0, 1));
    }

    #[test]
    fn bgap_preserves_reachability_positive() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let (bg, left, a, c) = g.to_bgap(0, 3);
        assert_eq!(left, 4);
        assert!(bg.reachable(a, c));
    }

    #[test]
    fn bgap_preserves_reachability_negative() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let (bg, _, a, c) = g.to_bgap(0, 3);
        assert!(!bg.reachable(a, c));
    }

    #[test]
    fn bgap_is_bipartite() {
        let mut g = UGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let (bg, left, _, _) = g.to_bgap(0, 2);
        // Every edge of the bipartite graph crosses the partition.
        for &(u, v) in bg.edges() {
            assert!(
                (u < left) != (v < left),
                "edge ({u},{v}) stays inside a side"
            );
        }
    }

    #[test]
    fn bgap_agrees_with_ugap_on_random_graphs() {
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..30 {
            let n = 6;
            let mut g = UGraph::new(n);
            let m = next() % 8;
            for _ in 0..m {
                g.add_edge(next() % n, next() % n);
            }
            let a = next() % n;
            let b = next() % n;
            if a == b {
                continue;
            }
            let (bg, _, a2, c) = g.to_bgap(a, b);
            assert_eq!(g.reachable(a, b), bg.reachable(a2, c));
        }
    }
}
