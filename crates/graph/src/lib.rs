//! # causality-graph — graphs, flows and hypergraphs
//!
//! Graph-algorithmic substrate for the causality reproduction:
//!
//! * [`maxflow`] — flow networks with Edmonds–Karp and Dinic max-flow and
//!   min-cut extraction. Algorithm 1 of the paper reduces responsibility of
//!   linear queries to repeated min-cut computations ("the capacity of a
//!   min-cut can be computed in PTIME using Ford-Fulkerson's algorithm",
//!   Example 4.2); Theorem 4.15's LOGSPACE argument reduces reachability to
//!   a four-partite max-flow problem.
//! * [`hypergraph`] — hypergraphs over ≤ 64 vertices (bitset edges), the
//!   *dual query hypergraph* representation (Def. 4.3).
//! * [`c1p`] — the consecutive-ones property: a query is *linear*
//!   (Def. 4.4) iff its dual hypergraph admits a vertex order in which
//!   every hyperedge is consecutive.
//! * [`cover`] — exact minimum vertex cover for graphs and for 3-partite
//!   3-uniform hypergraphs (the NP-hard source problems of Theorem 4.1 and
//!   Proposition 4.16), used as test oracles for the reductions.
//! * [`ugraph`] — undirected graphs with BFS reachability (the UGAP
//!   problem that anchors Theorem 4.15's LOGSPACE chain).
//! * [`bitset`] — packed `u64`-word bitsets over dense universes: the
//!   shared set representation behind the lineage arena's kernels
//!   (subset/absorption/hitting-set as word-wise ops) and max-flow's
//!   residual-reachability marking in min-cut extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod c1p;
pub mod cover;
pub mod hypergraph;
pub mod maxflow;
pub mod ugraph;

pub use bitset::FixedBitSet;
pub use c1p::{c1p_order, is_consecutive_under};
pub use cover::{min_hypergraph_cover_3p, min_vertex_cover};
pub use hypergraph::Hypergraph;
pub use maxflow::{FlowAlgorithm, FlowNetwork, INF};
pub use ugraph::UGraph;
