//! Packed bitsets over dense `u32`/`usize` universes.
//!
//! The responsibility hot path (DNF minimization, hitting-set
//! branch-and-bound, contingency search) is set algebra over small dense
//! universes: once tuple variables are interned to dense ids, every
//! subset / intersection / difference test collapses to a handful of
//! word-wise `u64` operations instead of a pointer-chasing tree walk.
//! [`FixedBitSet`] is that representation. The same type backs the
//! max-flow module's residual-reachability marking in min-cut
//! extraction.
//!
//! Semantically a `FixedBitSet` is a finite set of `usize` elements; the
//! backing word vector grows on demand and **trailing zero words never
//! affect equality, ordering, or hashing** — `{1, 2}` is the same set no
//! matter how wide the buffer that holds it.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

const BITS: usize = u64::BITS as usize;

/// A growable packed bitset of `usize` elements.
#[derive(Clone, Default)]
pub struct FixedBitSet {
    words: Vec<u64>,
}

impl FixedBitSet {
    /// The empty set.
    pub fn new() -> Self {
        FixedBitSet::default()
    }

    /// The empty set with capacity for elements `0..bits` preallocated.
    pub fn with_capacity(bits: usize) -> Self {
        FixedBitSet {
            words: vec![0; bits.div_ceil(BITS)],
        }
    }

    /// Build a set from elements.
    pub fn from_iter_elems(elems: impl IntoIterator<Item = usize>) -> Self {
        let mut set = FixedBitSet::new();
        for e in elems {
            set.insert(e);
        }
        set
    }

    /// Number of backing words (for sizing scratch buffers).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Insert `elem`, growing the backing storage as needed.
    pub fn insert(&mut self, elem: usize) {
        let w = elem / BITS;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (elem % BITS);
    }

    /// Remove `elem` if present.
    pub fn remove(&mut self, elem: usize) {
        let w = elem / BITS;
        if w < self.words.len() {
            self.words[w] &= !(1u64 << (elem % BITS));
        }
    }

    /// Whether `elem` is in the set.
    pub fn contains(&self, elem: usize) -> bool {
        let w = elem / BITS;
        w < self.words.len() && self.words[w] & (1u64 << (elem % BITS)) != 0
    }

    /// Number of elements (popcount).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements, keeping the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `self ⊆ other`: word-wise masked compare with early exit.
    pub fn is_subset(&self, other: &FixedBitSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Whether the two sets share an element.
    pub fn intersects(&self, other: &FixedBitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self ∖= other` (restriction with `true` in lineage terms).
    pub fn difference_with(&mut self, other: &FixedBitSet) {
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// A fresh `self ∖ other` without mutating either operand.
    pub fn without(&self, other: &FixedBitSet) -> FixedBitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Iterate the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * BITS + bit)
            })
        })
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * BITS + w.trailing_zeros() as usize)
    }

    /// Compare as *sorted element sequences* — the order `BTreeSet`s of
    /// the same elements would compare in ({1,5} < {2}, prefixes first).
    /// This is the ordering lineage minimization sorts conjuncts by; it
    /// is **not** the subset order.
    pub fn cmp_elements(&self, other: &FixedBitSet) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

impl PartialEq for FixedBitSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for FixedBitSet {}

/// Total order for use as a map/set key (word-wise, padding with zeros).
/// Like the derived order on the element vector it is arbitrary but
/// consistent with [`FixedBitSet::eq`]; use
/// [`FixedBitSet::cmp_elements`] when the `BTreeSet`-style sequence
/// order matters.
impl Ord for FixedBitSet {
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.words.len().max(other.words.len());
        for i in 0..n {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for FixedBitSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for FixedBitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash only up to the last nonzero word so equal sets with
        // different buffer widths hash identically.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

/// Renders like a set literal (`{1, 5, 9}`) for test-failure readability.
impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for FixedBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        FixedBitSet::from_iter_elems(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set(elems: &[usize]) -> FixedBitSet {
        elems.iter().copied().collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(200); // forces growth across word boundaries
        assert!(s.contains(3) && s.contains(200));
        assert!(!s.contains(4) && !s.contains(1000));
        assert_eq!(s.len(), 2);
        s.remove(3);
        s.remove(999); // out of range: no-op
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let narrow = set(&[1, 2]);
        let mut wide = FixedBitSet::with_capacity(1024);
        wide.insert(1);
        wide.insert(2);
        assert_eq!(narrow, wide);
        assert_eq!(narrow.cmp(&wide), Ordering::Equal);
        let mut grown = set(&[1, 2, 500]);
        grown.remove(500);
        assert_eq!(narrow, grown);
        // Hash consistency with Eq.
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &FixedBitSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&narrow), h(&wide));
        assert_eq!(h(&narrow), h(&grown));
    }

    #[test]
    fn subset_and_intersection_match_btreeset() {
        let cases: &[(&[usize], &[usize])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 3], &[1, 2, 3]),
            (&[1, 64, 130], &[1, 64]),
            (&[63, 64, 65], &[64]),
            (&[0, 127], &[0, 127, 128]),
        ];
        for (a, b) in cases {
            let (fa, fb) = (set(a), set(b));
            let (ba, bb): (BTreeSet<_>, BTreeSet<_>) = (a.iter().collect(), b.iter().collect());
            assert_eq!(fa.is_subset(&fb), ba.is_subset(&bb), "{a:?} ⊆ {b:?}");
            assert_eq!(fb.is_subset(&fa), bb.is_subset(&ba), "{b:?} ⊆ {a:?}");
            assert_eq!(fa.intersects(&fb), !ba.is_disjoint(&bb), "{a:?} ∩ {b:?}");
        }
    }

    #[test]
    fn word_ops_match_set_algebra() {
        let a = set(&[1, 5, 64, 200]);
        let b = set(&[5, 64, 300]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, set(&[1, 5, 64, 200, 300]));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, set(&[5, 64]));
        assert_eq!(a.without(&b), set(&[1, 200]));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, set(&[1, 200]));
    }

    #[test]
    fn iter_ascending_and_first() {
        let s = set(&[130, 2, 64, 7]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 7, 64, 130]);
        assert_eq!(s.first(), Some(2));
        assert_eq!(FixedBitSet::new().first(), None);
    }

    #[test]
    fn cmp_elements_matches_btreeset_order() {
        // The classic witness that sequence order ≠ word order:
        // {1,5} < {2} as sequences, but 2^1|2^5 > 2^2 as words.
        let a = set(&[1, 5]);
        let b = set(&[2]);
        assert_eq!(a.cmp_elements(&b), Ordering::Less);
        let ba: BTreeSet<usize> = [1, 5].into();
        let bb: BTreeSet<usize> = [2].into();
        assert_eq!(a.cmp_elements(&b), ba.cmp(&bb));
        // Prefix sorts first.
        assert_eq!(set(&[1]).cmp_elements(&set(&[1, 9])), Ordering::Less);
        assert_eq!(set(&[3]).cmp_elements(&set(&[3])), Ordering::Equal);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = set(&[500]);
        let words = s.word_count();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.word_count(), words, "scratch reuse keeps allocation");
    }
}
