//! Exact minimum vertex covers — the NP-hard oracles behind Theorem 4.1.
//!
//! The paper's hardness proofs reduce *from* vertex-cover-style problems:
//!
//! * h1* responsibility ⇐ minimum vertex cover in a 3-partite 3-uniform
//!   hypergraph (Fig. 6, citing \[21\]),
//! * the self-join query of Prop. 4.16 ⇐ minimum vertex cover in a graph.
//!
//! To *test* those reductions we need ground truth, so this module solves
//! both problems exactly with branch-and-bound (fine at test scale). The
//! search branches on an uncovered edge — one branch per endpoint — and
//! prunes with a greedy disjoint-edge (matching) lower bound.

/// Exact minimum vertex cover of an undirected graph on vertices `0..n`.
/// Self-loops force their vertex into the cover. Returns a smallest cover.
pub fn min_vertex_cover(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range");
    }
    let mut best: Option<Vec<usize>> = None;
    let mut chosen = vec![false; n];
    branch_graph(edges, &mut chosen, 0, &mut best);
    let best = best.expect("search always finds some cover");
    (0..n).filter(|&v| best.contains(&v)).collect()
}

fn branch_graph(
    edges: &[(usize, usize)],
    chosen: &mut Vec<bool>,
    size: usize,
    best: &mut Option<Vec<usize>>,
) {
    if let Some(b) = best {
        // Matching lower bound: greedily pick disjoint uncovered edges.
        let lb = size + matching_lower_bound(edges, chosen);
        if lb >= b.len() {
            return;
        }
    }
    // Find an uncovered edge.
    let uncovered = edges.iter().find(|&&(u, v)| !chosen[u] && !chosen[v]);
    match uncovered {
        None => {
            let cover: Vec<usize> = chosen
                .iter()
                .enumerate()
                .filter_map(|(v, &c)| c.then_some(v))
                .collect();
            if best.as_ref().is_none_or(|b| cover.len() < b.len()) {
                *best = Some(cover);
            }
        }
        Some(&(u, v)) => {
            for w in [u, v] {
                chosen[w] = true;
                branch_graph(edges, chosen, size + 1, best);
                chosen[w] = false;
                if u == v {
                    break; // self-loop: only one branch
                }
            }
        }
    }
}

fn matching_lower_bound(edges: &[(usize, usize)], chosen: &[bool]) -> usize {
    let mut blocked = vec![false; chosen.len()];
    let mut bound = 0;
    for &(u, v) in edges {
        if !chosen[u] && !chosen[v] && !blocked[u] && !blocked[v] {
            blocked[u] = true;
            blocked[v] = true;
            bound += 1;
        }
    }
    bound
}

/// Exact minimum vertex cover of a 3-uniform hypergraph given as vertex
/// triples (the 3-partite structure of Fig. 6 needs no special handling:
/// the solver works for any 3-uniform instance). Returns a smallest set of
/// vertices meeting every triple.
pub fn min_hypergraph_cover_3p(n: usize, triples: &[(usize, usize, usize)]) -> Vec<usize> {
    for &(a, b, c) in triples {
        assert!(a < n && b < n && c < n, "triple out of range");
    }
    let mut best: Option<Vec<usize>> = None;
    let mut chosen = vec![false; n];
    branch_triples(triples, &mut chosen, 0, &mut best);
    let best = best.expect("search always finds some cover");
    (0..n).filter(|&v| best.contains(&v)).collect()
}

fn branch_triples(
    triples: &[(usize, usize, usize)],
    chosen: &mut Vec<bool>,
    size: usize,
    best: &mut Option<Vec<usize>>,
) {
    if let Some(b) = best {
        let lb = size + triple_matching_bound(triples, chosen);
        if lb >= b.len() {
            return;
        }
    }
    let uncovered = triples
        .iter()
        .find(|&&(a, b, c)| !chosen[a] && !chosen[b] && !chosen[c]);
    match uncovered {
        None => {
            let cover: Vec<usize> = chosen
                .iter()
                .enumerate()
                .filter_map(|(v, &c)| c.then_some(v))
                .collect();
            if best.as_ref().is_none_or(|b| cover.len() < b.len()) {
                *best = Some(cover);
            }
        }
        Some(&(a, b, c)) => {
            let mut tried = Vec::new();
            for w in [a, b, c] {
                if tried.contains(&w) {
                    continue;
                }
                tried.push(w);
                chosen[w] = true;
                branch_triples(triples, chosen, size + 1, best);
                chosen[w] = false;
            }
        }
    }
}

fn triple_matching_bound(triples: &[(usize, usize, usize)], chosen: &[bool]) -> usize {
    let mut blocked = vec![false; chosen.len()];
    let mut bound = 0;
    for &(a, b, c) in triples {
        if !chosen[a] && !chosen[b] && !chosen[c] && !blocked[a] && !blocked[b] && !blocked[c] {
            blocked[a] = true;
            blocked[b] = true;
            blocked[c] = true;
            bound += 1;
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_needs_no_cover() {
        assert!(min_vertex_cover(5, &[]).is_empty());
    }

    #[test]
    fn single_edge_needs_one_vertex() {
        let c = min_vertex_cover(2, &[(0, 1)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn triangle_needs_two() {
        let c = min_vertex_cover(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(c.len(), 2);
        assert!(covers(&c, &[(0, 1), (1, 2), (2, 0)]));
    }

    #[test]
    fn star_needs_center() {
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let c = min_vertex_cover(5, &edges);
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn path_of_five() {
        // Path 0-1-2-3-4: cover {1,3}.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let c = min_vertex_cover(5, &edges);
        assert_eq!(c.len(), 2);
        assert!(covers(&c, &edges));
    }

    #[test]
    fn complete_graph_k4_needs_three() {
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(min_vertex_cover(4, &edges).len(), 3);
    }

    #[test]
    fn self_loop_forces_vertex() {
        let edges = [(1, 1), (0, 2)];
        let c = min_vertex_cover(3, &edges);
        assert!(c.contains(&1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn petersen_graph_cover_is_six() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5));
            edges.push((5 + i, 5 + (i + 2) % 5));
            edges.push((i, i + 5));
        }
        assert_eq!(min_vertex_cover(10, &edges).len(), 6);
    }

    #[test]
    fn hypergraph_single_triple() {
        let c = min_hypergraph_cover_3p(3, &[(0, 1, 2)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hypergraph_disjoint_triples() {
        let triples = [(0, 1, 2), (3, 4, 5), (6, 7, 8)];
        let c = min_hypergraph_cover_3p(9, &triples);
        assert_eq!(c.len(), 3);
        assert!(covers3(&c, &triples));
    }

    #[test]
    fn hypergraph_shared_vertex() {
        // All triples share vertex 0: cover {0}.
        let triples = [(0, 1, 2), (0, 3, 4), (0, 5, 6)];
        assert_eq!(min_hypergraph_cover_3p(7, &triples), vec![0]);
    }

    #[test]
    fn fig6_example_instance() {
        // The 3-partite 3-uniform hypergraph of Fig. 6(a):
        // partitions R={r1,r2,r3}→{0,1,2}, S={s1,s2,s3}→{3,4,5},
        // T={t1,t2}→{6,7}; edges per Fig. 6(b)'s W relation
        // (x1,y1,z2),(x1,y2,z1),(x2,y1,z1),(x3,y3,z2).
        let triples = [(0, 3, 7), (0, 4, 6), (1, 3, 6), (2, 5, 7)];
        let c = min_hypergraph_cover_3p(8, &triples);
        assert!(covers3(&c, &triples));
        // {r1 or y1 pairings}: e.g. {0 (r1), 6 (t1), 2 or 5} — minimum is 3?
        // Check optimality by brute force.
        assert_eq!(c.len(), brute_force_3p(8, &triples));
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic pseudo-random instances via a simple LCG.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 7;
            let m = (next() % 6 + 1) as usize;
            let triples: Vec<(usize, usize, usize)> = (0..m)
                .map(|_| {
                    (
                        (next() % n as u64) as usize,
                        (next() % n as u64) as usize,
                        (next() % n as u64) as usize,
                    )
                })
                .filter(|&(a, b, c)| a != b && b != c && a != c)
                .collect();
            let solved = min_hypergraph_cover_3p(n, &triples).len();
            assert_eq!(solved, brute_force_3p(n, &triples), "triples {triples:?}");
        }
    }

    fn covers(cover: &[usize], edges: &[(usize, usize)]) -> bool {
        edges
            .iter()
            .all(|&(u, v)| cover.contains(&u) || cover.contains(&v))
    }

    fn covers3(cover: &[usize], triples: &[(usize, usize, usize)]) -> bool {
        triples
            .iter()
            .all(|&(a, b, c)| cover.contains(&a) || cover.contains(&b) || cover.contains(&c))
    }

    fn brute_force_3p(n: usize, triples: &[(usize, usize, usize)]) -> usize {
        (0u32..(1 << n))
            .filter(|&mask| {
                triples.iter().all(|&(a, b, c)| {
                    mask & (1 << a) != 0 || mask & (1 << b) != 0 || mask & (1 << c) != 0
                })
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0)
    }
}
