//! The consecutive-ones property (C1P).
//!
//! Def. 4.4: a hypergraph is **linear** if there is a total order of its
//! vertices in which every hyperedge is a consecutive block; a query is
//! linear if its dual hypergraph (Def. 4.3) is. Deciding this is the
//! classic *consecutive ones property* of the vertex/edge incidence matrix.
//!
//! Query hypergraphs are tiny (one vertex per atom), so the workhorse here
//! is a pruned backtracking search that also returns a witness order. An
//! edge-state automaton (untouched → open → closed) prunes branches as soon
//! as a hyperedge would have to be interrupted, which makes the search fast
//! in practice even though it is worst-case exponential.

/// Whether every edge (bitset over positions) is consecutive in `order`.
///
/// `order[i]` is the vertex placed at position `i`.
pub fn is_consecutive_under(edges: &[u64], order: &[usize]) -> bool {
    for &edge in edges {
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        let mut count = 0usize;
        for (pos, &v) in order.iter().enumerate() {
            if edge & (1u64 << v) != 0 {
                if first.is_none() {
                    first = Some(pos);
                }
                last = Some(pos);
                count += 1;
            }
        }
        match (first, last) {
            (Some(f), Some(l)) if l - f + 1 != count => {
                return false;
            }
            _ => {} // empty edge: trivially consecutive
        }
    }
    true
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    Untouched,
    Open,
    Closed,
}

/// Find a vertex order on `0..n` in which every edge is consecutive, if one
/// exists. Returns the witness order.
pub fn c1p_order(n: usize, edges: &[u64]) -> Option<Vec<usize>> {
    assert!(n <= 64, "at most 64 vertices supported");
    if n == 0 {
        return Some(Vec::new());
    }
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut states = vec![EdgeState::Untouched; edges.len()];
    if place(n, edges, &mut order, &mut used, &mut states) {
        Some(order)
    } else {
        None
    }
}

/// Whether the hypergraph has the consecutive-ones property.
pub fn has_c1p(n: usize, edges: &[u64]) -> bool {
    c1p_order(n, edges).is_some()
}

fn place(
    n: usize,
    edges: &[u64],
    order: &mut Vec<usize>,
    used: &mut [bool],
    states: &mut [EdgeState],
) -> bool {
    if order.len() == n {
        return true;
    }
    for v in 0..n {
        if used[v] {
            continue;
        }
        // Simulate placing v; record state changes for rollback.
        let bit = 1u64 << v;
        let mut changes: Vec<(usize, EdgeState)> = Vec::new();
        let mut ok = true;
        for (i, &edge) in edges.iter().enumerate() {
            let contains = edge & bit != 0;
            match (states[i], contains) {
                (EdgeState::Closed, true) => {
                    ok = false;
                    break;
                }
                (EdgeState::Untouched, true) => {
                    changes.push((i, states[i]));
                    states[i] = EdgeState::Open;
                }
                (EdgeState::Open, false) => {
                    changes.push((i, states[i]));
                    states[i] = EdgeState::Closed;
                }
                _ => {}
            }
        }
        if ok {
            used[v] = true;
            order.push(v);
            if place(n, edges, order, used, states) {
                return true;
            }
            order.pop();
            used[v] = false;
        }
        for (i, s) in changes {
            states[i] = s;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_trivial_instances() {
        assert_eq!(c1p_order(0, &[]), Some(vec![]));
        assert!(has_c1p(1, &[0b1]));
        assert!(has_c1p(3, &[])); // no edges: any order works
    }

    #[test]
    fn chain_is_c1p() {
        // Edges {0,1}, {1,2}, {2,3}: the identity order works.
        let edges = [0b0011, 0b0110, 0b1100];
        let order = c1p_order(4, &edges).expect("chain has C1P");
        assert!(is_consecutive_under(&edges, &order));
    }

    #[test]
    fn paper_fig5a_linear_query_hypergraph() {
        // q :- A(x), S1(x,v), S2(v,y), R(y,u), S3(y,z), T(z,w), B(z)
        // Atoms (vertices): A=0, S1=1, S2=2, R=3, S3=4, T=5, B=6.
        // Variables (edges): x={A,S1}, v={S1,S2}, y={S2,R,S3}, u={R},
        // z={S3,T,B}, w={T}.
        let edges = [
            0b0000011, // x
            0b0000110, // v
            0b0011100, // y
            0b0001000, // u
            0b1110000, // z
            0b0100000, // w
        ];
        let order = c1p_order(7, &edges).expect("Fig 5a query is linear");
        assert!(is_consecutive_under(&edges, &order));
    }

    #[test]
    fn paper_fig5b_h1_star_is_not_c1p() {
        // h1* :- A(x), B(y), C(z), W(x,y,z).
        // Atoms: A=0, B=1, C=2, W=3. Edges: x={A,W}, y={B,W}, z={C,W}.
        let edges = [0b1001, 0b1010, 0b1100];
        assert!(!has_c1p(4, &edges));
    }

    #[test]
    fn triangle_h2_star_is_not_c1p() {
        // h2* :- R(x,y), S(y,z), T(z,x). Atoms R=0,S=1,T=2.
        // Edges: x={R,T}, y={R,S}, z={S,T}.
        let edges = [0b101, 0b011, 0b110];
        // Every pair of the three vertices must be adjacent *and* each edge
        // has exactly 2 of 3 vertices — any order breaks the edge joining
        // the two extremes.
        assert!(!has_c1p(3, &edges));
    }

    #[test]
    fn overlapping_blocks() {
        // Edges {0,1,2}, {1,2,3}: C1P with order 0,1,2,3.
        assert!(has_c1p(4, &[0b0111, 0b1110]));
        // Tucker's forbidden configuration M_I(1): the 3-cycle above is the
        // smallest non-C1P example; adding a universal edge keeps failure.
        assert!(!has_c1p(3, &[0b101, 0b011, 0b110, 0b111]));
    }

    #[test]
    fn witness_order_is_a_permutation() {
        let edges = [0b01111, 0b11110];
        let order = c1p_order(5, &edges).unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(is_consecutive_under(&edges, &order));
    }

    #[test]
    fn is_consecutive_under_detects_gaps() {
        // Edge {0,2} under order 0,1,2 has a gap.
        assert!(!is_consecutive_under(&[0b101], &[0, 1, 2]));
        assert!(is_consecutive_under(&[0b101], &[0, 2, 1]));
        assert!(is_consecutive_under(&[0b101], &[1, 0, 2]));
    }

    /// Brute-force cross-check on all hypergraphs with 4 vertices and up to
    /// 3 edges: the backtracking search agrees with trying all 24 orders.
    #[test]
    fn exhaustive_cross_check_small() {
        let n = 4;
        let perms = all_permutations(n);
        let mut checked = 0usize;
        for e1 in 0u64..16 {
            for e2 in 0u64..16 {
                for e3 in [0u64, 0b1011, 0b0111, 0b1101] {
                    let edges = [e1, e2, e3];
                    let brute = perms.iter().any(|p| is_consecutive_under(&edges, p));
                    assert_eq!(has_c1p(n, &edges), brute, "edges {edges:?}");
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 16 * 16 * 4);
    }

    fn all_permutations(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut items: Vec<usize> = (0..n).collect();
        permute(&mut items, 0, &mut out);
        out
    }

    fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }
}
