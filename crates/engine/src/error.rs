//! Engine error type.

use std::fmt;

/// Errors surfaced by the relational engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced a relation name absent from the database.
    UnknownRelation(String),
    /// An atom's arity does not match its relation's schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity expected by the schema.
        expected: usize,
        /// Arity used by the atom.
        found: usize,
    },
    /// Query text could not be parsed.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset into the input where the error occurred.
        offset: usize,
    },
    /// A query was used in a context requiring a Boolean query.
    NotBoolean(String),
    /// A head variable does not occur in the query body (unsafe query).
    UnsafeQuery {
        /// Query text.
        query: String,
        /// Offending variable name.
        var: String,
    },
    /// An answer tuple does not match the query head (arity or constants).
    InvalidAnswer {
        /// Query text.
        query: String,
        /// What disagreed.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            EngineError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on `{relation}`: schema has {expected}, atom uses {found}"
            ),
            EngineError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            EngineError::NotBoolean(q) => {
                write!(
                    f,
                    "query `{q}` has head variables; a Boolean query is required"
                )
            }
            EngineError::UnsafeQuery { query, var } => {
                write!(
                    f,
                    "unsafe query `{query}`: head variable `{var}` not in body"
                )
            }
            EngineError::InvalidAnswer { query, message } => {
                write!(f, "answer does not match head of `{query}`: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownRelation("R".into()).to_string(),
            "unknown relation `R`"
        );
        let e = EngineError::ArityMismatch {
            relation: "S".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("schema has 2"));
        let p = EngineError::Parse {
            message: "expected `(`".into(),
            offset: 4,
        };
        assert!(p.to_string().contains("byte 4"));
    }
}
