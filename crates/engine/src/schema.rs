//! Relation schemas.

use std::fmt;

/// The schema of a relation: its name and attribute names.
///
/// Attribute names are purely descriptive (queries bind by position, as in
/// the paper's `R(x, y)` notation), but they make printed instances and
/// generated SQL readable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
}

impl Schema {
    /// Build a schema from a relation name and attribute names.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Self {
        Schema {
            name: name.into(),
            attrs: attrs.iter().map(|a| (*a).to_string()).collect(),
        }
    }

    /// Build a schema with anonymous attributes `a0..a{arity-1}`.
    pub fn anon(name: impl Into<String>, arity: usize) -> Self {
        Schema {
            name: name.into(),
            attrs: (0..arity).map(|i| format!("a{i}")).collect(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Position of a named attribute, if present.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_schema() {
        let s = Schema::new("Movie", &["mid", "name", "year", "rank"]);
        assert_eq!(s.name(), "Movie");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_index("year"), Some(2));
        assert_eq!(s.attr_index("nope"), None);
        assert_eq!(s.to_string(), "Movie(mid, name, year, rank)");
    }

    #[test]
    fn anonymous_schema() {
        let s = Schema::anon("W", 3);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attrs(), &["a0".to_string(), "a1".into(), "a2".into()]);
    }
}
