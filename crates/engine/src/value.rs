//! Attribute values.
//!
//! The paper's constructions only need an ordered, hashable domain with
//! integers (gadget coordinates, ids) and strings (names, genres). Strings
//! are reference-counted so that cloning tuples during join evaluation is
//! cheap.

use std::fmt;
use std::sync::Arc;

/// A single attribute value: a 64-bit integer or an interned string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer constant.
    Int(i64),
    /// String constant (cheaply cloneable).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_accessors() {
        let v = Value::int(7);
        assert_eq!(v.as_int(), Some(7));
        assert_eq!(v.as_str(), None);

        let s = Value::str("burton");
        assert_eq!(s.as_str(), Some("burton"));
        assert_eq!(s.as_int(), None);
    }

    #[test]
    fn equality_across_kinds() {
        assert_ne!(Value::int(1), Value::str("1"));
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_eq!(Value::from(5i64), Value::int(5));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        // Ints sort before strings (enum variant order), each kind internally ordered.
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn hashing_matches_equality() {
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        set.insert(Value::str("x"));
        set.insert(Value::int(3));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&Value::from("x")));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("Sweeney Todd").to_string(), "Sweeney Todd");
        assert_eq!(format!("{:?}", Value::str("a")), "\"a\"");
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Value::str("a fairly long string value");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("expected strings"),
        }
    }
}
