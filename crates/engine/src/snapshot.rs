//! Immutable, versioned, **structurally shared** database snapshots for
//! concurrent serving.
//!
//! The paper's PTIME results (Thm. 3.2/3.4, Cor. 4.14) make explanations
//! cheap enough to serve interactively — which needs many reader threads
//! evaluating against a *stable* view of the data while writers keep
//! loading tuples. A [`Snapshot`] freezes a [`Database`] behind an `Arc`
//! (cloning is a pointer copy; the data is `Send + Sync`), and a
//! [`SnapshotStore`] versions successive snapshots so writers publish new
//! ones without ever blocking readers mid-evaluation: a reader pins the
//! current snapshot once and keeps using it even after newer versions land.
//!
//! Publication is cheap because the [`Database`] itself holds one `Arc`
//! per relation: [`SnapshotStore::update`] clones only the relations the
//! write actually touches (copy-on-write at relation granularity), so
//! publishing a version costs O(touched data), not O(database). Untouched
//! relations stay pointer-identical across versions — and keep their
//! [`RelVersion`](crate::relation::RelVersion) stamps, which is what lets
//! a [`SharedIndexCache`](crate::SharedIndexCache) keyed on relation
//! content keep serving warm indexes across writes to other relations.

use crate::database::Database;
use std::ops::Deref;
use std::sync::{Arc, Mutex, RwLock};

/// An immutable, cheaply-cloneable view of a [`Database`] at one version.
///
/// Dereferences to [`Database`], so every read-only engine entry point
/// (`evaluate`, `holds_masked`, lineage, …) works on `&snapshot` directly.
#[derive(Clone, Debug)]
pub struct Snapshot {
    db: Arc<Database>,
    version: u64,
}

impl Snapshot {
    /// Freeze a database into version-1 snapshot (outside any store).
    pub fn freeze(db: Database) -> Self {
        Snapshot {
            db: Arc::new(db),
            version: 1,
        }
    }

    /// The snapshot's version: strictly increasing within a
    /// [`SnapshotStore`], starting at 1.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Start a writable copy of this snapshot's data: O(relations)
    /// pointer clones, not a data copy. Relations deep-clone lazily on
    /// first mutation (copy-on-write); mutate freely, then
    /// [`SnapshotStore::publish`] the result.
    pub fn to_database(&self) -> Database {
        (*self.db).clone()
    }
}

impl Deref for Snapshot {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.db
    }
}

/// A versioned publication point: one current [`Snapshot`], swapped
/// atomically by writers, pinned freely by readers.
///
/// Readers call [`SnapshotStore::current`] and hold the returned snapshot
/// for as long as they like — publishing never invalidates it. Writers are
/// serialized against each other (so versions are strictly increasing and
/// no update is lost) but only hold the read-side lock for the duration of
/// a pointer swap.
///
/// Successive versions share structure: an [`SnapshotStore::update`] that
/// touches one of R relations clones only that relation, and the other
/// R − 1 stay pointer-identical ([`std::sync::Arc::ptr_eq`]) between the
/// old and new snapshots.
///
/// ```
/// use causality_engine::{database::example_2_2, SnapshotStore, Value};
/// use std::sync::Arc;
///
/// let store = SnapshotStore::new(example_2_2());
/// let pinned = store.current();               // a reader pins version 1
///
/// let published = store.update(|db| {          // a writer touches S only
///     let s = db.relation_id("S").unwrap();
///     db.insert_endo(s, vec![Value::from("a9")]);
/// });
/// assert_eq!(published.version(), 2);
///
/// // The pinned reader is undisturbed…
/// assert_eq!(pinned.version(), 1);
/// assert_eq!(pinned.tuple_count(), 10);
/// // …and the untouched relation R is shared, not copied.
/// let r = pinned.relation_id("R").unwrap();
/// assert!(Arc::ptr_eq(pinned.relation_arc(r), published.relation_arc(r)));
/// ```
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Snapshot>,
    /// Serializes writers across the clone-mutate-publish cycle.
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Create a store whose first snapshot (version 1) freezes `db`.
    pub fn new(db: Database) -> Self {
        SnapshotStore {
            current: RwLock::new(Snapshot::freeze(db)),
            writer: Mutex::new(()),
        }
    }

    /// Pin the current snapshot (a pointer clone).
    pub fn current(&self) -> Snapshot {
        self.current.read().expect("snapshot lock").clone()
    }

    /// The current version.
    pub fn version(&self) -> u64 {
        self.current.read().expect("snapshot lock").version
    }

    /// Publish a whole new database as the next version; returns the new
    /// snapshot. Readers holding older snapshots are unaffected.
    pub fn publish(&self, db: Database) -> Snapshot {
        let _writing = self.writer.lock().expect("writer lock");
        self.swap(db)
    }

    /// Copy-on-write update: start from the current data (pointer clones
    /// only), apply `f`, publish the result as the next version. Only the
    /// relations `f` mutably touches are deep-cloned — publication cost
    /// is O(touched data), not O(database). Concurrent `update` calls are
    /// serialized, so no modification is lost.
    pub fn update(&self, f: impl FnOnce(&mut Database)) -> Snapshot {
        let _writing = self.writer.lock().expect("writer lock");
        let mut db = self.current().to_database();
        f(&mut db);
        self.swap(db)
    }

    /// Swap in the next version. Caller must hold the writer lock.
    fn swap(&self, db: Database) -> Snapshot {
        let mut current = self.current.write().expect("snapshot lock");
        let next = Snapshot {
            db: Arc::new(db),
            version: current.version + 1,
        };
        *current = next.clone();
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::example_2_2;
    use crate::eval::{evaluate, SharedIndexCache};
    use crate::query::ConjunctiveQuery;
    use crate::schema::Schema;
    use crate::tup;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_machinery_is_send_sync() {
        assert_send_sync::<Snapshot>();
        assert_send_sync::<SnapshotStore>();
        assert_send_sync::<SharedIndexCache>();
    }

    #[test]
    fn freeze_and_evaluate_through_deref() {
        let snap = Snapshot::freeze(example_2_2());
        assert_eq!(snap.version(), 1);
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let result = evaluate(&snap, &q).unwrap();
        assert_eq!(result.answers.len(), 3);
        let clone = snap.clone();
        assert_eq!(clone.version(), 1);
        assert_eq!(clone.tuple_count(), snap.database().tuple_count());
    }

    #[test]
    fn publish_bumps_version_without_touching_pinned_readers() {
        let store = SnapshotStore::new(example_2_2());
        let pinned = store.current();
        assert_eq!(pinned.version(), 1);
        let before = pinned.tuple_count();

        let published = store.update(|db| {
            let s = db.relation_id("S").unwrap();
            db.insert_endo(s, tup!["a9"]);
        });
        assert_eq!(published.version(), 2);
        assert_eq!(store.version(), 2);
        // The pinned reader still sees the old contents.
        assert_eq!(pinned.tuple_count(), before);
        assert_eq!(store.current().tuple_count(), before + 1);
    }

    #[test]
    fn update_shares_untouched_relations_with_prior_versions() {
        let store = SnapshotStore::new(example_2_2());
        let v1 = store.current();
        let r = v1.relation_id("R").unwrap();
        let s = v1.relation_id("S").unwrap();

        let v2 = store.update(|db| {
            let s = db.relation_id("S").unwrap();
            db.insert_endo(s, tup!["a9"]);
        });
        // Touched relation diverges; untouched relation is shared.
        assert!(!Arc::ptr_eq(v1.relation_arc(s), v2.relation_arc(s)));
        assert!(Arc::ptr_eq(v1.relation_arc(r), v2.relation_arc(r)));
        assert_eq!(v1.relation_version(r), v2.relation_version(r));
        assert!(v2.relation_version(s) > v1.relation_version(s));

        // A second write to R leaves v2's S shared with v3.
        let v3 = store.update(|db| {
            let r = db.relation_id("R").unwrap();
            db.insert_endo(r, tup!["a9", "a9"]);
        });
        assert!(Arc::ptr_eq(v2.relation_arc(s), v3.relation_arc(s)));
        assert!(!Arc::ptr_eq(v2.relation_arc(r), v3.relation_arc(r)));
    }

    #[test]
    fn shared_index_cache_stays_warm_across_unrelated_updates() {
        let store = SnapshotStore::new(example_2_2());
        let cache = SharedIndexCache::new();
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let v1 = store.current();
        crate::eval::evaluate_with_cache(&v1, &q, &cache).unwrap();
        let built = cache.len();

        // Add a relation the query never mentions, and touch only it.
        let v2 = store.update(|db| {
            let t = db.add_relation(Schema::new("T", &["z"]));
            db.insert_endo(t, tup![1]);
        });
        let warm = crate::eval::evaluate_with_cache(&v2, &q, &cache).unwrap();
        assert_eq!(
            cache.len(),
            built,
            "no index rebuilt: R and S kept their content stamps"
        );
        assert_eq!(warm.answers.len(), 3);
    }

    #[test]
    fn publish_replaces_wholesale() {
        let store = SnapshotStore::new(example_2_2());
        let mut fresh = Database::new();
        fresh.add_relation(Schema::new("T", &["x"]));
        let snap = store.publish(fresh);
        assert_eq!(snap.version(), 2);
        assert!(store.current().relation_id("T").is_some());
        assert!(store.current().relation_id("R").is_none());
    }

    #[test]
    fn concurrent_updates_are_all_applied() {
        let store = std::sync::Arc::new(SnapshotStore::new(Database::new()));
        {
            let mut db = Database::new();
            db.add_relation(Schema::new("R", &["x"]));
            store.publish(db);
        }
        let max_seen = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for w in 0..4i64 {
                let store = std::sync::Arc::clone(&store);
                let max_seen = std::sync::Arc::clone(&max_seen);
                scope.spawn(move || {
                    for i in 0..8 {
                        let snap = store.update(|db| {
                            let r = db.relation_id("R").unwrap();
                            db.insert_endo(r, tup![w * 100 + i]);
                        });
                        max_seen.fetch_max(snap.version(), Ordering::SeqCst);
                    }
                });
            }
        });
        // 1 initial + 1 publish + 32 updates.
        assert_eq!(store.version(), 34);
        assert_eq!(max_seen.load(Ordering::SeqCst), 34);
        let r = store.current().relation_id("R").unwrap();
        assert_eq!(store.current().relation(r).len(), 32, "no lost updates");
    }
}
