//! Conjunctive query evaluation.
//!
//! The evaluator enumerates **valuations** `θ : Var(q) → Adom(D)` — the
//! mappings of Def. 3.1 that ground every atom to a stored tuple. A
//! valuation is exactly one conjunct `c_θ = X_{t1} ∧ … ∧ X_{tm}` of the
//! lineage, so the lineage crate consumes the valuation stream directly.
//!
//! Evaluation is a backtracking join: atoms are greedily reordered so that
//! each step binds against already-bound variables, and per-binding-pattern
//! hash indexes are built lazily. Counterfactual evaluation (over `D − Γ`
//! or `Dx ∪ Γ`) is supported through [`EndoMask`] without copying the
//! database.

use crate::database::{Database, EndoMask};
use crate::error::EngineError;
use crate::query::{Atom, ConjunctiveQuery, Nature, Term, VarId};
use crate::relation::RelVersion;
use crate::tuple::{RelId, RowId, Tuple, TupleRef};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// One hash index over a relation: key (values at the bound positions) →
/// rows holding those values.
pub type PositionIndex = HashMap<Vec<Value>, Vec<RowId>>;

/// The binding pattern an index serves within one evaluation:
/// (relation, sorted bound positions).
type LocalKey = (RelId, Vec<usize>);

/// The key a [`SharedIndexCache`] entry lives under: the binding pattern
/// plus the relation's content stamp, so an index can never be served
/// against content it was not built from.
type SharedKey = (RelId, RelVersion, Vec<usize>);

/// Build the hash index for one binding pattern by scanning the relation.
fn build_index(db: &Database, rel: RelId, positions: &[usize]) -> PositionIndex {
    let relation = db.relation(rel);
    let mut index: PositionIndex = HashMap::new();
    for (row, tuple, _) in relation.iter() {
        let key: Vec<Value> = positions.iter().map(|&p| tuple[p].clone()).collect();
        index.entry(key).or_default().push(row);
    }
    index
}

/// A thread-safe, build-once cache of per-binding-pattern hash indexes,
/// keyed by **relation content** — `(RelId, RelVersion, positions)`.
///
/// Indexes depend only on the stored tuples — not on the [`EndoMask`] —
/// so one cache serves every counterfactual evaluation over the same
/// relation content: plain evaluation, `D − Γ` removals and `Dx ∪ Γ`
/// insertions all share it. Because [`RelVersion`] stamps are
/// process-wide unique and re-issued on every mutable access, **one
/// cache is sound across arbitrarily many databases and snapshot
/// versions**: a write to one relation leaves every other relation's
/// indexes valid (same stamp), and a stale index can never be served
/// (the stamp moved). Stale entries are garbage, not hazards — reclaim
/// them with [`SharedIndexCache::retain_versions`] or
/// [`SharedIndexCache::clear`].
///
/// Entries are `Arc`-shared so concurrent readers clone a pointer, not
/// the index. Building races are benign: the first insert wins and the
/// duplicate is dropped.
#[derive(Debug, Default)]
pub struct SharedIndexCache {
    inner: RwLock<HashMap<SharedKey, Arc<PositionIndex>>>,
}

impl SharedIndexCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        SharedIndexCache::default()
    }

    /// Number of distinct (relation, version, binding-pattern) indexes held.
    pub fn len(&self) -> usize {
        self.inner.read().expect("index cache lock").len()
    }

    /// Whether no index has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached index.
    pub fn clear(&self) {
        self.inner.write().expect("index cache lock").clear();
    }

    /// Drop indexes for relation versions outside the `live` set and
    /// return how many entries were evicted. A serving layer passes the
    /// union of [`Database::relation_versions`] over the snapshots it
    /// still serves; everything else is unreachable garbage.
    pub fn retain_versions(&self, live: &[(RelId, RelVersion)]) -> usize {
        let live: HashSet<(RelId, RelVersion)> = live.iter().copied().collect();
        let mut w = self.inner.write().expect("index cache lock");
        let before = w.len();
        w.retain(|(rel, version, _), _| live.contains(&(*rel, *version)));
        before - w.len()
    }

    /// Fetch the index for a binding pattern over `rel`'s current content
    /// in `db`, building it on first use.
    pub fn get_or_build(
        &self,
        db: &Database,
        rel: RelId,
        positions: &[usize],
    ) -> Arc<PositionIndex> {
        let version = db.relation_version(rel);
        if let Some(idx) =
            self.inner
                .read()
                .expect("index cache lock")
                .get(&(rel, version, positions.to_vec()))
        {
            return Arc::clone(idx);
        }
        let built = Arc::new(build_index(db, rel, positions));
        let mut w = self.inner.write().expect("index cache lock");
        Arc::clone(w.entry((rel, version, positions.to_vec())).or_insert(built))
    }
}

/// One valuation `θ` of the query body: a value for every bound variable
/// and the tuple grounding each atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Valuation {
    /// Per-[`VarId`] assignment (`None` for interned-but-unused variables).
    pub assignment: Vec<Option<Value>>,
    /// The tuple each body atom was grounded to, in atom order.
    pub atom_tuples: Vec<TupleRef>,
}

impl Valuation {
    /// Value bound to a variable.
    pub fn value(&self, v: VarId) -> Option<&Value> {
        self.assignment.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// Project the valuation onto the query head, producing an answer tuple.
    pub fn head_values(&self, q: &ConjunctiveQuery) -> Tuple {
        q.head()
            .iter()
            .map(|t| match t {
                Term::Var(v) => self
                    .value(*v)
                    .expect("head variable bound by safe query")
                    .clone(),
                Term::Const(c) => c.clone(),
            })
            .collect()
    }

    /// The distinct tuples grounding the atoms (a lineage conjunct's
    /// variable set, before endo/exo substitution).
    pub fn tuple_set(&self) -> BTreeSet<TupleRef> {
        self.atom_tuples.iter().copied().collect()
    }
}

/// The result of evaluating a query: distinct answers plus all valuations.
#[derive(Clone, Debug, Default)]
pub struct EvalResult {
    /// Distinct answer tuples, sorted.
    pub answers: Vec<Tuple>,
    /// Every valuation of the body.
    pub valuations: Vec<Valuation>,
}

impl EvalResult {
    /// For a Boolean query: whether the query is true.
    pub fn holds(&self) -> bool {
        !self.valuations.is_empty()
    }

    /// The valuations producing a given answer.
    pub fn valuations_for<'a>(
        &'a self,
        q: &'a ConjunctiveQuery,
        answer: &'a Tuple,
    ) -> impl Iterator<Item = &'a Valuation> + 'a {
        self.valuations
            .iter()
            .filter(move |v| &v.head_values(q) == answer)
    }
}

/// Evaluate `q` over the full database (all endogenous tuples present).
pub fn evaluate(db: &Database, q: &ConjunctiveQuery) -> Result<EvalResult, EngineError> {
    evaluate_masked(db, q, EndoMask::All)
}

/// Like [`evaluate`], reusing indexes from a [`SharedIndexCache`].
pub fn evaluate_with_cache(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: &SharedIndexCache,
) -> Result<EvalResult, EngineError> {
    evaluate_masked_with_cache(db, q, EndoMask::All, cache)
}

/// Evaluate `q` under a counterfactual [`EndoMask`].
pub fn evaluate_masked(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: EndoMask<'_>,
) -> Result<EvalResult, EngineError> {
    Evaluator::new(db, q, mask, None)?.run(false)
}

/// Like [`evaluate_masked`], reusing indexes from a [`SharedIndexCache`]:
/// binding-pattern indexes missing from the cache are built once and
/// published for subsequent evaluations over the same database contents.
pub fn evaluate_masked_with_cache(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: EndoMask<'_>,
    cache: &SharedIndexCache,
) -> Result<EvalResult, EngineError> {
    Evaluator::new(db, q, mask, Some(cache))?.run(false)
}

/// Boolean check with early exit: is `q` (treated as Boolean) true under
/// the mask? Faster than [`evaluate_masked`] when only truth is needed.
pub fn holds_masked(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: EndoMask<'_>,
) -> Result<bool, EngineError> {
    Ok(Evaluator::new(db, q, mask, None)?.run(true)?.holds())
}

/// Like [`holds_masked`], reusing indexes from a [`SharedIndexCache`].
pub fn holds_masked_with_cache(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: EndoMask<'_>,
    cache: &SharedIndexCache,
) -> Result<bool, EngineError> {
    Ok(Evaluator::new(db, q, mask, Some(cache))?.run(true)?.holds())
}

struct ResolvedAtom {
    rel: RelId,
    nature: Nature,
    terms: Vec<Term>,
}

struct Evaluator<'a> {
    db: &'a Database,
    q: &'a ConjunctiveQuery,
    mask: EndoMask<'a>,
    /// Atoms in original order, resolved to relation ids.
    atoms: Vec<ResolvedAtom>,
    /// Evaluation order (indexes into `atoms`).
    plan: Vec<usize>,
    /// Indexes pinned for this evaluation: (rel, bound positions) → index.
    local: HashMap<LocalKey, Arc<PositionIndex>>,
    /// Cross-evaluation cache consulted (and fed) before building locally.
    shared: Option<&'a SharedIndexCache>,
}

impl<'a> Evaluator<'a> {
    fn new(
        db: &'a Database,
        q: &'a ConjunctiveQuery,
        mask: EndoMask<'a>,
        shared: Option<&'a SharedIndexCache>,
    ) -> Result<Self, EngineError> {
        // Safety check: head variables must occur in the body.
        let body_vars = q.body_vars();
        for hv in q.head_vars() {
            if !body_vars.contains(&hv) {
                return Err(EngineError::UnsafeQuery {
                    query: q.to_string(),
                    var: q.var_name(hv).to_string(),
                });
            }
        }
        let mut atoms = Vec::with_capacity(q.atoms().len());
        for atom in q.atoms() {
            let rel = db.require_relation(&atom.relation)?;
            let schema_arity = db.relation(rel).schema().arity();
            if schema_arity != atom.arity() {
                return Err(EngineError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: schema_arity,
                    found: atom.arity(),
                });
            }
            atoms.push(ResolvedAtom {
                rel,
                nature: atom.nature,
                terms: atom.terms.clone(),
            });
        }
        let plan = plan_order(db, q.atoms(), &atoms);
        Ok(Evaluator {
            db,
            q,
            mask,
            atoms,
            plan,
            local: HashMap::new(),
            shared,
        })
    }

    fn run(&mut self, stop_at_first: bool) -> Result<EvalResult, EngineError> {
        let mut result = EvalResult::default();
        let mut bindings: Vec<Option<Value>> = vec![None; self.q.var_count()];
        let mut chosen: Vec<TupleRef> = Vec::with_capacity(self.atoms.len());
        self.search(0, &mut bindings, &mut chosen, stop_at_first, &mut result);

        let mut seen = BTreeSet::new();
        for v in &result.valuations {
            seen.insert(v.head_values(self.q));
        }
        result.answers = seen.into_iter().collect();
        Ok(result)
    }

    fn search(
        &mut self,
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        chosen: &mut Vec<TupleRef>,
        stop_at_first: bool,
        result: &mut EvalResult,
    ) -> bool {
        if depth == self.plan.len() {
            // Reorder chosen tuples back to original atom order.
            let mut atom_tuples = vec![TupleRef::new(0, 0); self.plan.len()];
            for (step, &atom_idx) in self.plan.iter().enumerate() {
                atom_tuples[atom_idx] = chosen[step];
            }
            result.valuations.push(Valuation {
                assignment: bindings.clone(),
                atom_tuples,
            });
            return stop_at_first;
        }
        let atom_idx = self.plan[depth];

        // Compute bound positions and the lookup key.
        let (positions, key, unbound): (Vec<usize>, Vec<Value>, Vec<(usize, VarId)>) = {
            let atom = &self.atoms[atom_idx];
            let mut positions = Vec::new();
            let mut key = Vec::new();
            let mut unbound = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        positions.push(i);
                        key.push(c.clone());
                    }
                    Term::Var(v) => match &bindings[v.0 as usize] {
                        Some(val) => {
                            positions.push(i);
                            key.push(val.clone());
                        }
                        None => unbound.push((i, *v)),
                    },
                }
            }
            (positions, key, unbound)
        };

        let rel = self.atoms[atom_idx].rel;
        let nature = self.atoms[atom_idx].nature;
        let rows: Vec<RowId> = self
            .index_for(rel, positions)
            .get(&key)
            .cloned()
            .unwrap_or_default();

        for row in rows {
            let tref = TupleRef { rel, row };
            let relation = self.db.relation(rel);
            let endo = relation.is_endogenous(row);
            match nature {
                Nature::Endo if !endo => continue,
                Nature::Exo if endo => continue,
                _ => {}
            }
            if !self.mask.active(tref, endo) {
                continue;
            }
            // Bind unbound variables; positions repeated within the atom
            // must agree.
            let tuple = relation.tuple(row).clone();
            let mut newly_bound: Vec<VarId> = Vec::new();
            let mut ok = true;
            for &(pos, var) in &unbound {
                match &bindings[var.0 as usize] {
                    Some(existing) => {
                        if existing != &tuple[pos] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings[var.0 as usize] = Some(tuple[pos].clone());
                        newly_bound.push(var);
                    }
                }
            }
            if ok {
                chosen.push(tref);
                let stop = self.search(depth + 1, bindings, chosen, stop_at_first, result);
                chosen.pop();
                if stop {
                    for v in newly_bound {
                        bindings[v.0 as usize] = None;
                    }
                    return true;
                }
            }
            for v in newly_bound {
                bindings[v.0 as usize] = None;
            }
        }
        false
    }

    /// The index serving a binding pattern: pinned locally, fetched from
    /// the shared cache, or built on the spot (and published if shared).
    fn index_for(&mut self, rel: RelId, positions: Vec<usize>) -> Arc<PositionIndex> {
        let cache_key = (rel, positions);
        if let Some(idx) = self.local.get(&cache_key) {
            return Arc::clone(idx);
        }
        let idx = match self.shared {
            Some(cache) => cache.get_or_build(self.db, cache_key.0, &cache_key.1),
            None => Arc::new(build_index(self.db, cache_key.0, &cache_key.1)),
        };
        self.local.insert(cache_key, Arc::clone(&idx));
        idx
    }
}

/// Greedy join-order planning: repeatedly pick the atom with the most bound
/// terms (constants count as bound), tie-breaking by smaller relation.
fn plan_order(db: &Database, atoms: &[Atom], resolved: &[ResolvedAtom]) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut bound_vars: BTreeSet<VarId> = BTreeSet::new();
    for _ in 0..n {
        let mut best: Option<(usize, usize, usize)> = None; // (idx, bound count, rel size)
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let bound = atoms[i]
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound_vars.contains(v),
                })
                .count();
            let size = db.relation(resolved[i].rel).len();
            let better = match best {
                None => true,
                Some((_, b, s)) => bound > b || (bound == b && size < s),
            };
            if better {
                best = Some((i, bound, size));
            }
        }
        let (idx, _, _) = best.expect("unplaced atom exists");
        placed[idx] = true;
        bound_vars.extend(atoms[idx].vars());
        order.push(idx);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::example_2_2;
    use crate::schema::Schema;
    use crate::tup;
    use std::collections::HashSet;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// Example 2.2: q(x) :- R(x,y), S(y) has answers {a2, a3, a4}.
    #[test]
    fn example_2_2_answers() {
        let db = example_2_2();
        let result = evaluate(&db, &q("q(x) :- R(x, y), S(y)")).unwrap();
        let answers: Vec<String> = result.answers.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(answers, vec!["a2", "a3", "a4"]);
    }

    #[test]
    fn valuations_carry_tuple_provenance() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let result = evaluate(&db, &query).unwrap();
        // a4 joins through both S(a3) and S(a2): two valuations.
        let a4 = tup!["a4"];
        let vals: Vec<_> = result.valuations_for(&query, &a4).collect();
        assert_eq!(vals.len(), 2);
        for v in vals {
            assert_eq!(v.atom_tuples.len(), 2);
            let x = v.value(query.find_var("x").unwrap()).unwrap();
            assert_eq!(x, &Value::str("a4"));
        }
    }

    #[test]
    fn boolean_query_with_constant() {
        let db = example_2_2();
        // q :- R(x, 'a3'), S('a3') — true via R(a3,a3) and R(a4,a3).
        let query = q("q :- R(x, 'a3'), S('a3')");
        let result = evaluate(&db, &query).unwrap();
        assert!(result.holds());
        assert_eq!(result.valuations.len(), 2);
        assert_eq!(result.answers, vec![Tuple::new(vec![])]);
    }

    #[test]
    fn masked_removal_changes_answers() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let s = db.relation_id("S").unwrap();
        let s_a1 = TupleRef {
            rel: s,
            row: db.relation(s).find(&tup!["a1"]).unwrap(),
        };
        let mut gone = HashSet::new();
        gone.insert(s_a1);
        let result = evaluate_masked(&db, &query, EndoMask::Except(&gone)).unwrap();
        // Removing S(a1) kills answer a2 (counterfactual cause, Example 2.2).
        let answers: Vec<String> = result.answers.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(answers, vec!["a3", "a4"]);
    }

    #[test]
    fn only_mask_models_why_no_insertions() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let missing = db.insert_endo(r, tup![1]); // potential tuple in Dn
        db.insert_exo(r, tup![2]);

        let query = q("q :- R(1)");
        let none = HashSet::new();
        assert!(!holds_masked(&db, &query, EndoMask::Only(&none)).unwrap());
        let mut ins = HashSet::new();
        ins.insert(missing);
        assert!(holds_masked(&db, &query, EndoMask::Only(&ins)).unwrap());
    }

    #[test]
    fn nature_restrictions_filter_tuples() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_endo(r, tup![1]);
        db.insert_exo(r, tup![2]);

        let all = evaluate(&db, &q("q(x) :- R(x)")).unwrap();
        assert_eq!(all.answers.len(), 2);
        let endo = evaluate(&db, &q("q(x) :- R^n(x)")).unwrap();
        assert_eq!(endo.answers, vec![tup![1]]);
        let exo = evaluate(&db, &q("q(x) :- R^x(x)")).unwrap();
        assert_eq!(exo.answers, vec![tup![2]]);
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 1]);
        db.insert_endo(r, tup![1, 2]);
        let result = evaluate(&db, &q("q(x) :- R(x, x)")).unwrap();
        assert_eq!(result.answers, vec![tup![1]]);
    }

    #[test]
    fn self_join_evaluation() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(r, tup![2, 3]);
        let result = evaluate(&db, &q("q(x, z) :- R(x, y), R(y, z)")).unwrap();
        assert_eq!(result.answers, vec![tup![1, 3]]);
        // The valuation uses two distinct tuples of the same relation.
        assert_eq!(result.valuations[0].tuple_set().len(), 2);
    }

    #[test]
    fn triangle_query() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(t, tup![3, 1]);
        db.insert_endo(t, tup![3, 9]); // does not close the triangle
        let result = evaluate(&db, &q("h2 :- R(x, y), S(y, z), T(z, x)")).unwrap();
        assert_eq!(result.valuations.len(), 1);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let db = Database::new();
        let err = evaluate(&db, &q("q :- Nope(x)")).unwrap_err();
        assert_eq!(err, EngineError::UnknownRelation("Nope".into()));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x", "y"]));
        let err = evaluate(&db, &q("q :- R(x)")).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    #[test]
    fn unsafe_query_is_an_error() {
        // The parser rejects unbound head vars up front; build through the
        // API to prove the evaluator still guards against them.
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x"]));
        let mut query = ConjunctiveQuery::boolean("q");
        let x = query.var("x");
        let y = query.var("y");
        query.push_atom(Atom::new("R", Nature::Any, vec![Term::Var(x)]));
        query.set_head(vec![Term::Var(y)]);
        let err = evaluate(&db, &query).unwrap_err();
        assert!(matches!(err, EngineError::UnsafeQuery { .. }));
    }

    #[test]
    fn holds_early_exit_agrees_with_full_eval() {
        let db = example_2_2();
        let query = q("q :- R(x, y), S(y)");
        assert!(holds_masked(&db, &query, EndoMask::All).unwrap());
        let all: HashSet<TupleRef> = db.endogenous_tuples().into_iter().collect();
        assert!(
            !holds_masked(&db, &query, EndoMask::Only(&HashSet::new())).unwrap() || all.is_empty()
        );
    }

    #[test]
    fn shared_cache_reuses_indexes_across_evaluations() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let cache = SharedIndexCache::new();
        assert!(cache.is_empty());
        let cold = evaluate_with_cache(&db, &query, &cache).unwrap();
        let built = cache.len();
        assert!(built > 0, "evaluation populates the cache");
        let warm = evaluate_with_cache(&db, &query, &cache).unwrap();
        assert_eq!(cache.len(), built, "second run builds nothing new");
        assert_eq!(cold.answers, warm.answers);
        assert_eq!(cold.valuations, warm.valuations);
    }

    #[test]
    fn shared_cache_agrees_under_masks() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let cache = SharedIndexCache::new();
        let s = db.relation_id("S").unwrap();
        let s_a1 = TupleRef {
            rel: s,
            row: db.relation(s).find(&tup!["a1"]).unwrap(),
        };
        let mut gone = HashSet::new();
        gone.insert(s_a1);
        let masked = evaluate_masked_with_cache(&db, &query, EndoMask::Except(&gone), &cache)
            .unwrap()
            .answers;
        let plain = evaluate_masked(&db, &query, EndoMask::Except(&gone))
            .unwrap()
            .answers;
        assert_eq!(masked, plain, "indexes are mask-independent");
        assert!(holds_masked_with_cache(&db, &query, EndoMask::All, &cache).unwrap());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn index_cache_survives_writes_to_other_relations() {
        let mut db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let cache = SharedIndexCache::new();
        evaluate_with_cache(&db, &query, &cache).unwrap();
        let built = cache.len();
        assert!(built >= 2, "indexes over both R and S");

        // Touch S only: R's indexes keep their (rel, version) keys.
        let s = db.relation_id("S").unwrap();
        db.insert_endo(s, tup!["a9"]);
        let warm = evaluate_with_cache(&db, &query, &cache).unwrap();
        let r_answers: Vec<String> = warm.answers.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(r_answers, vec!["a2", "a3", "a4"], "still correct");
        // New entries were built only for S's new version, none for R.
        let rebuilt = cache.len() - built;
        assert!(rebuilt >= 1, "S's index was rebuilt");
        let live = db.relation_versions();
        let evicted = cache.retain_versions(&live);
        assert_eq!(
            evicted, 1,
            "exactly the stale S index dies; R's survives untouched"
        );
        // And the surviving entries still serve the current database.
        let again = evaluate_with_cache(&db, &query, &cache).unwrap();
        assert_eq!(again.answers, warm.answers);
    }

    #[test]
    fn stale_indexes_are_never_served() {
        // The pre-versioning footgun: reuse one cache across *different*
        // contents. With (rel, version) keys this is now simply correct.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_endo(r, tup![1]);
        let cache = SharedIndexCache::new();
        let before = evaluate_with_cache(&db, &q("q(x) :- R(x)"), &cache).unwrap();
        assert_eq!(before.answers.len(), 1);
        db.insert_endo(r, tup![2]);
        let after = evaluate_with_cache(&db, &q("q(x) :- R(x)"), &cache).unwrap();
        assert_eq!(after.answers.len(), 2, "new content, new index");
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let mut db = Database::new();
        let a = db.add_relation(Schema::new("A", &["x"]));
        let b = db.add_relation(Schema::new("B", &["y"]));
        db.insert_endo(a, tup![1]);
        db.insert_endo(a, tup![2]);
        db.insert_endo(b, tup![10]);
        db.insert_endo(b, tup![20]);
        db.insert_endo(b, tup![30]);
        let result = evaluate(&db, &q("q(x, y) :- A(x), B(y)")).unwrap();
        assert_eq!(result.answers.len(), 6);
        assert_eq!(result.valuations.len(), 6);
    }
}
