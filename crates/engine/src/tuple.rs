//! Tuples and tuple identities.
//!
//! Def. 3.1 of the paper associates a distinct Boolean variable `X_t` with
//! every tuple `t ∈ D`. [`TupleRef`] is that identity: a stable
//! (relation, row) coordinate that the lineage crate uses as its variable
//! type and that contingency sets `Γ` (Def. 2.1) are sets of.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;

/// Identifier of a relation within a [`Database`](crate::Database).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

/// Index of a row within its relation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RowId(pub u32);

/// Stable identity of a stored tuple — the Boolean variable `X_t`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleRef {
    /// Relation the tuple belongs to.
    pub rel: RelId,
    /// Row inside that relation.
    pub row: RowId,
}

impl TupleRef {
    /// Build a tuple reference from raw indices.
    pub fn new(rel: u32, row: u32) -> Self {
        TupleRef {
            rel: RelId(rel),
            row: RowId(row),
        }
    }
}

impl fmt::Debug for TupleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.rel.0, self.row.0)
    }
}

/// An immutable tuple of [`Value`]s.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }
}

impl Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro building a [`Tuple`] from heterogeneous literals.
///
/// ```
/// use causality_engine::tup;
/// let t = tup!["burton", 2007];
/// assert_eq!(t.arity(), 2);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_basics() {
        let t = tup!["a", 1, "b"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("a"));
        assert_eq!(t[1], Value::int(1));
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = tup![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tup![30, 10, 10]);
        assert_eq!(t.project(&[]), Tuple::new(vec![]));
    }

    #[test]
    fn tuple_ref_ordering() {
        let a = TupleRef::new(0, 5);
        let b = TupleRef::new(1, 0);
        let c = TupleRef::new(0, 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn display_and_debug() {
        let t = tup!["x", 3];
        assert_eq!(t.to_string(), "(x, 3)");
        assert_eq!(format!("{t:?}"), "(\"x\", 3)");
        assert_eq!(format!("{:?}", TupleRef::new(2, 9)), "t2.9");
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t, tup![0, 1, 2]);
    }
}
