//! Tuple storage for one relation.
//!
//! A relation is an append-only store of distinct tuples, each carrying an
//! *endogenous* flag. Per the paper (Sect. 1, item (1)), the partition into
//! endogenous and exogenous tuples "is not restricted to entire relations" —
//! so the flag lives on the tuple, not on the relation.
//!
//! Every relation also carries a [`RelVersion`]: a process-wide unique,
//! per-relation monotone content stamp. A [`Database`](crate::Database)
//! re-stamps a relation on every mutable access, which is what lets
//! snapshots share untouched relations structurally (`Arc` per relation)
//! and lets the evaluator's [`SharedIndexCache`](crate::SharedIndexCache)
//! key indexes by relation content instead of by whole-database version.

use crate::schema::Schema;
use crate::tuple::{RowId, Tuple};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of relation version stamps. Never reset, so two
/// distinct relation contents can never share a `(RelId, RelVersion)`
/// pair — which is what makes sharing one index cache across arbitrary
/// databases sound.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// A content stamp for one relation: process-wide unique and strictly
/// increasing across successive mutations of the same relation.
///
/// Two relations (or two states of one relation) with equal versions are
/// guaranteed to be the very same immutable content; differing versions
/// say nothing except "assume different".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelVersion(pub u64);

impl RelVersion {
    /// Draw a fresh, process-wide unique stamp.
    pub(crate) fn fresh() -> Self {
        RelVersion(NEXT_VERSION.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for RelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One relation instance: schema plus stored tuples with endogenous flags.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
    endo: Vec<bool>,
    /// Exact-tuple lookup, used for duplicate elimination and membership.
    by_tuple: HashMap<Tuple, RowId>,
    /// Content stamp, refreshed by [`Relation::bump_version`] on every
    /// mutable access through a [`Database`](crate::Database).
    version: RelVersion,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            endo: Vec::new(),
            by_tuple: HashMap::new(),
            version: RelVersion::fresh(),
        }
    }

    /// The relation's current content stamp.
    pub fn version(&self) -> RelVersion {
        self.version
    }

    /// Re-stamp the relation with a fresh process-wide unique version.
    /// Called by [`Database::relation_mut`](crate::Database::relation_mut)
    /// before handing out mutable access, so the stamp is conservative:
    /// it may change without the content changing, never the reverse.
    pub(crate) fn bump_version(&mut self) {
        self.version = RelVersion::fresh();
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple with the given endogenous flag. Returns its row and
    /// whether it was newly inserted (`false` if it was already present —
    /// in that case the stored flag is left unchanged).
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the schema.
    pub fn insert(&mut self, tuple: Tuple, endogenous: bool) -> (RowId, bool) {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "arity mismatch inserting into {}",
            self.schema.name()
        );
        if let Some(&row) = self.by_tuple.get(&tuple) {
            return (row, false);
        }
        let row = RowId(self.rows.len() as u32);
        self.by_tuple.insert(tuple.clone(), row);
        self.rows.push(tuple);
        self.endo.push(endogenous);
        (row, true)
    }

    /// The tuple stored at `row`.
    pub fn tuple(&self, row: RowId) -> &Tuple {
        &self.rows[row.0 as usize]
    }

    /// Whether the tuple at `row` is endogenous.
    pub fn is_endogenous(&self, row: RowId) -> bool {
        self.endo[row.0 as usize]
    }

    /// Set the endogenous flag of one row.
    pub fn set_endogenous(&mut self, row: RowId, endogenous: bool) {
        self.endo[row.0 as usize] = endogenous;
    }

    /// Set every tuple's endogenous flag.
    pub fn set_all_endogenous(&mut self, endogenous: bool) {
        self.endo.iter_mut().for_each(|e| *e = endogenous);
    }

    /// Set flags for every tuple matching `pred`.
    pub fn set_endogenous_where(&mut self, mut pred: impl FnMut(&Tuple) -> bool, endogenous: bool) {
        for (i, t) in self.rows.iter().enumerate() {
            if pred(t) {
                self.endo[i] = endogenous;
            }
        }
    }

    /// Find the row holding exactly `tuple`, if present.
    pub fn find(&self, tuple: &Tuple) -> Option<RowId> {
        self.by_tuple.get(tuple).copied()
    }

    /// Iterate over `(row, tuple, endogenous)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Tuple, bool)> {
        self.rows
            .iter()
            .zip(self.endo.iter())
            .enumerate()
            .map(|(i, (t, &e))| (RowId(i as u32), t, e))
    }

    /// Number of endogenous tuples.
    pub fn endogenous_count(&self) -> usize {
        self.endo.iter().filter(|&&e| e).count()
    }

    /// Collect the distinct values appearing in column `col`.
    pub fn column_values(&self, col: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = self.rows.iter().map(|t| t[col].clone()).collect();
        vals.sort();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn rel() -> Relation {
        Relation::new(Schema::new("R", &["x", "y"]))
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = rel();
        let (row, fresh) = r.insert(tup!["a", "b"], true);
        assert!(fresh);
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuple(row), &tup!["a", "b"]);
        assert!(r.is_endogenous(row));
        assert_eq!(r.find(&tup!["a", "b"]), Some(row));
        assert_eq!(r.find(&tup!["a", "c"]), None);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut r = rel();
        let (row1, fresh1) = r.insert(tup![1, 2], true);
        let (row2, fresh2) = r.insert(tup![1, 2], false);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(row1, row2);
        assert_eq!(r.len(), 1);
        // Original flag preserved.
        assert!(r.is_endogenous(row1));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        rel().insert(tup![1], true);
    }

    #[test]
    fn endogenous_flag_management() {
        let mut r = rel();
        r.insert(tup![1, 1], false);
        r.insert(tup![2, 2], false);
        r.insert(tup![3, 3], false);
        assert_eq!(r.endogenous_count(), 0);

        r.set_all_endogenous(true);
        assert_eq!(r.endogenous_count(), 3);

        r.set_endogenous_where(|t| t[0].as_int() == Some(2), false);
        assert_eq!(r.endogenous_count(), 2);
        assert!(!r.is_endogenous(RowId(1)));

        r.set_endogenous(RowId(1), true);
        assert_eq!(r.endogenous_count(), 3);
    }

    #[test]
    fn column_values_sorted_distinct() {
        let mut r = rel();
        r.insert(tup![2, 9], true);
        r.insert(tup![1, 9], true);
        r.insert(tup![2, 8], true);
        assert_eq!(r.column_values(0), vec![Value::int(1), Value::int(2)]);
        assert_eq!(r.column_values(1), vec![Value::int(8), Value::int(9)]);
    }

    #[test]
    fn versions_are_unique_monotone_and_preserved_by_clone() {
        let mut a = rel();
        let b = rel();
        assert_ne!(a.version(), b.version(), "fresh relations never collide");
        let before = a.version();
        let cloned = a.clone();
        assert_eq!(cloned.version(), before, "clone keeps the stamp");
        a.bump_version();
        assert!(a.version() > before, "bumps are strictly increasing");
        assert_eq!(cloned.version(), before, "clone is unaffected");
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut r = rel();
        r.insert(tup![1, 1], true);
        r.insert(tup![2, 2], false);
        let collected: Vec<_> = r.iter().map(|(_, t, e)| (t.clone(), e)).collect();
        assert_eq!(collected, vec![(tup![1, 1], true), (tup![2, 2], false)]);
    }
}
