//! Homomorphisms, cores and isomorphism of conjunctive queries.
//!
//! Theorem 3.4's construction enumerates *image queries* and "always
//! minimize\[s\] an image query" — minimization of a conjunctive query is
//! computing its **core** (the smallest equivalent subquery), a classic
//! homomorphism-based procedure \[Abiteboul-Hull-Vianu\]. The dichotomy
//! search additionally needs **isomorphism** tests to recognise the
//! canonical hard queries h1*, h2*, h3* up to variable renaming.
//!
//! Atoms match only when both relation name *and* nature agree: `R^n` and
//! `R^x` are distinct symbols throughout the paper's constructions.

use super::{Atom, ConjunctiveQuery, Term, VarId};
use std::collections::HashMap;

/// A variable mapping `Var(from) → Term(to)` witnessing a homomorphism.
pub type Homomorphism = HashMap<VarId, Term>;

/// Search for a homomorphism from `from` to `to`: a mapping of `from`'s
/// variables to `to`'s terms (constants map to themselves) such that the
/// image of every `from`-atom is an atom of `to`.
///
/// Both queries are treated as Boolean (heads are ignored).
pub fn find_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Homomorphism> {
    let mut assignment: Homomorphism = HashMap::new();
    if hom_search(from.atoms(), 0, to, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

/// Whether a homomorphism `from → to` exists. By the Chandra–Merlin
/// theorem this is Boolean-query containment `to ⊆ from`.
pub fn has_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
    find_homomorphism(from, to).is_some()
}

fn hom_search(
    atoms: &[Atom],
    i: usize,
    to: &ConjunctiveQuery,
    assignment: &mut Homomorphism,
) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = &atoms[i];
    for target in to.atoms() {
        if target.relation != atom.relation
            || target.nature != atom.nature
            || target.arity() != atom.arity()
        {
            continue;
        }
        // Try to extend the assignment so that atom maps onto target.
        let mut added: Vec<VarId> = Vec::new();
        let mut ok = true;
        for (s, t) in atom.terms.iter().zip(target.terms.iter()) {
            match s {
                Term::Const(c) => {
                    if !matches!(t, Term::Const(d) if d == c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(bound) => {
                        if bound != t {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*v, t.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if ok && hom_search(atoms, i + 1, to, assignment) {
            return true;
        }
        for v in added {
            assignment.remove(&v);
        }
    }
    false
}

/// Compute the **core** of a Boolean conjunctive query: repeatedly drop an
/// atom `g` whenever the remaining query still maps homomorphically onto
/// the original (equivalently, `q ≡ q − {g}`), until no atom is removable.
pub fn query_core(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    current.dedup_atoms();
    loop {
        let mut removed = false;
        for i in 0..current.atoms().len() {
            let mut candidate = current.clone();
            candidate.remove_atom(i);
            if candidate.atoms().is_empty() {
                continue;
            }
            // q − {g} ≡ q  iff  hom(q → q − {g}) exists (inclusion gives the
            // other direction).
            if has_homomorphism(&current, &candidate) {
                current = candidate;
                removed = true;
                break;
            }
        }
        if !removed {
            return current;
        }
    }
}

/// Whether two Boolean queries are isomorphic: a variable bijection turning
/// one atom multiset into the other (relations, natures and constants must
/// match exactly).
pub fn is_isomorphic(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    if a.atoms().len() != b.atoms().len() || a.signature() != b.signature() {
        return false;
    }
    let mut forward: HashMap<VarId, VarId> = HashMap::new();
    let mut backward: HashMap<VarId, VarId> = HashMap::new();
    let mut used = vec![false; b.atoms().len()];
    iso_search(
        a.atoms(),
        0,
        b.atoms(),
        &mut used,
        &mut forward,
        &mut backward,
    )
}

fn iso_search(
    atoms: &[Atom],
    i: usize,
    targets: &[Atom],
    used: &mut [bool],
    forward: &mut HashMap<VarId, VarId>,
    backward: &mut HashMap<VarId, VarId>,
) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = &atoms[i];
    for j in 0..targets.len() {
        if used[j] {
            continue;
        }
        let target = &targets[j];
        if target.relation != atom.relation
            || target.nature != atom.nature
            || target.arity() != atom.arity()
        {
            continue;
        }
        let mut added: Vec<VarId> = Vec::new();
        let mut ok = true;
        for (s, t) in atom.terms.iter().zip(target.terms.iter()) {
            match (s, t) {
                (Term::Const(c), Term::Const(d)) => {
                    if c != d {
                        ok = false;
                        break;
                    }
                }
                (Term::Var(v), Term::Var(w)) => match (forward.get(v), backward.get(w)) {
                    (Some(fw), Some(bw)) if fw == w && bw == v => {}
                    (None, None) => {
                        forward.insert(*v, *w);
                        backward.insert(*w, *v);
                        added.push(*v);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                },
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            used[j] = true;
            if iso_search(atoms, i + 1, targets, used, forward, backward) {
                return true;
            }
            used[j] = false;
        }
        for v in added {
            let w = forward.remove(&v).expect("tracked mapping");
            backward.remove(&w);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let a = q("q :- R(x, y), S(y, z)");
        assert!(has_homomorphism(&a, &a));
    }

    #[test]
    fn homomorphism_collapses_variables() {
        let from = q("q :- R(x, y), R(y, z)");
        let to = q("p :- R(u, u)");
        assert!(has_homomorphism(&from, &to));
        assert!(
            !has_homomorphism(&to, &from),
            "R(u,u) needs a loop in the target"
        );
    }

    #[test]
    fn natures_block_homomorphisms() {
        let from = q("q :- R^n(x, y)");
        let to = q("p :- R^x(u, v)");
        assert!(!has_homomorphism(&from, &to));
    }

    #[test]
    fn constants_must_match() {
        let from = q("q :- R(x, 'a')");
        let to_good = q("p :- R(u, 'a')");
        let to_bad = q("p :- R(u, 'b')");
        assert!(has_homomorphism(&from, &to_good));
        assert!(!has_homomorphism(&from, &to_bad));
        // A variable may map to a constant…
        let from2 = q("q :- R(x, y)");
        assert!(has_homomorphism(&from2, &to_good));
        // …but a constant never maps to a variable.
        let to_var = q("p :- R(u, v)");
        assert!(!has_homomorphism(&from, &to_var));
    }

    #[test]
    fn core_removes_redundant_atoms() {
        // R(x,y), R(x,z) folds onto R(x,y).
        let cq = q("q :- R(x, y), R(x, z)");
        let core = query_core(&cq);
        assert_eq!(core.atoms().len(), 1);

        // A path of length 2 with a loop folds onto the loop.
        let cq = q("q :- R(x, y), R(y, z), R(w, w)");
        let core = query_core(&cq);
        assert_eq!(core.atoms().len(), 1);
        assert_eq!(core.to_string(), "q :- R(w, w)");
    }

    #[test]
    fn core_keeps_non_redundant_queries() {
        let cq = q("q :- R(x, y), S(y, z)");
        assert_eq!(query_core(&cq).atoms().len(), 2);
        // Triangle query is its own core.
        let h2 = q("h2 :- R(x, y), S(y, z), T(z, x)");
        assert_eq!(query_core(&h2).atoms().len(), 3);
    }

    #[test]
    fn core_respects_natures() {
        // R^n(x,y), R^x(x,z): different symbols, nothing folds.
        let cq = q("q :- R^n(x, y), R^x(x, z)");
        assert_eq!(query_core(&cq).atoms().len(), 2);
    }

    #[test]
    fn isomorphism_up_to_renaming() {
        let a = q("h2 :- R(x, y), S(y, z), T(z, x)");
        let b = q("p :- S(b, c), T(c, a), R(a, b)");
        assert!(is_isomorphic(&a, &b));
        let c = q("p :- R(x, y), S(y, z), T(x, z)");
        assert!(!is_isomorphic(&a, &c), "T reversed is a different query");
    }

    #[test]
    fn isomorphism_requires_matching_natures() {
        let a = q("q :- R^n(x, y)");
        let b = q("q :- R^x(x, y)");
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn isomorphism_requires_injectivity() {
        let a = q("q :- R(x, y)");
        let b = q("q :- R(x, x)");
        assert!(!is_isomorphic(&a, &b));
        assert!(has_homomorphism(&a, &b), "hom exists but iso does not");
    }

    #[test]
    fn isomorphism_handles_duplicate_structure() {
        let a = q("q :- R(x, y), R(y, x)");
        let b = q("q :- R(v, u), R(u, v)");
        assert!(is_isomorphic(&a, &b));
    }
}
