//! Conjunctive query ASTs.
//!
//! The paper restricts attention to conjunctive queries `q(x̄) :- g1, …, gm`
//! (Sect. 2). Beyond the plain AST this module provides the structural
//! operations the complexity analysis needs:
//!
//! * grounding an answer `ā` into a Boolean query `q[ā/x̄]` (Sect. 2),
//! * variable/atom surgery used by the *rewriting* (Def. 4.6) and
//!   *weakening* (Def. 4.9) relations,
//! * homomorphisms, cores and isomorphism (Theorem 3.4's image queries are
//!   "always minimized", i.e. replaced by their core; the dichotomy search
//!   must recognise the canonical hard queries h1*, h2*, h3* up to
//!   isomorphism).

pub mod homomorphism;
pub mod parser;

use crate::error::EngineError;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, identified by its index into the query's name table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// A term in an atom or head: a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable id, if this is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Whether this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

/// Which tuples of the underlying relation an atom ranges over.
///
/// The paper writes `Rn` for the endogenous and `Rx` for the exogenous
/// tuples of `R` (Sect. 2). A plain atom (`Any`) ranges over all of `R`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Nature {
    /// All tuples, endogenous and exogenous.
    Any,
    /// Only endogenous tuples (`Rn`).
    Endo,
    /// Only exogenous tuples (`Rx`).
    Exo,
}

impl Nature {
    /// Superscript used in display / parse syntax (`R^n`, `R^x`, `R`).
    pub fn suffix(self) -> &'static str {
        match self {
            Nature::Any => "",
            Nature::Endo => "^n",
            Nature::Exo => "^x",
        }
    }
}

/// One body atom `R^nature(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Endogenous / exogenous / unrestricted.
    pub nature: Nature,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, nature: Nature, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            nature,
            terms,
        }
    }

    /// The distinct variables of the atom, ascending.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// Whether the atom contains variable `v`.
    pub fn contains_var(&self, v: VarId) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(v))
    }

    /// Atom arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }
}

/// A conjunctive query `name(head) :- atom1, …, atomm`.
///
/// A *Boolean* query has an empty head. Most of the paper's machinery is
/// defined for Boolean queries; [`ConjunctiveQuery::ground`] converts an
/// answer of a non-Boolean query into the Boolean query `q[ā/x̄]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<Term>,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Create an empty Boolean query with the given name.
    pub fn boolean(name: impl Into<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
            var_names: Vec::new(),
        }
    }

    /// Parse a query from text, e.g. `q(x) :- R(x, y), S^x(y, 'a')`.
    ///
    /// See [`parser`] for the grammar.
    pub fn parse(input: &str) -> Result<Self, EngineError> {
        parser::parse_query(input)
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the query.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Head terms.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// Body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Mutable access to a body atom (used by rewriting/weakening).
    pub fn atom_mut(&mut self, i: usize) -> &mut Atom {
        &mut self.atoms[i]
    }

    /// Whether the query is Boolean (empty head).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Whether some relation name occurs in more than one atom.
    pub fn has_self_join(&self) -> bool {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.relation.as_str()).collect();
        names.sort_unstable();
        names.windows(2).any(|w| w[0] == w[1])
    }

    /// Number of interned variables (some may no longer occur after surgery).
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Intern (or find) a variable by name; returns its id.
    pub fn var(&mut self, name: impl AsRef<str>) -> VarId {
        let name = name.as_ref();
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return VarId(i as u32);
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        id
    }

    /// Find an existing variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Append an atom; terms must use variables interned via [`Self::var`].
    pub fn push_atom(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Set the head terms.
    pub fn set_head(&mut self, head: Vec<Term>) {
        self.head = head;
    }

    /// The set of variables occurring in the body (`Var(q)`).
    pub fn body_vars(&self) -> BTreeSet<VarId> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// The set of variables occurring in the head.
    pub fn head_vars(&self) -> BTreeSet<VarId> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// `sg(x)`: the indices of atoms whose variable set contains `x`
    /// (the paper's "set of subgoals containing variable x").
    pub fn atoms_with_var(&self, v: VarId) -> Vec<usize> {
        (0..self.atoms.len())
            .filter(|&i| self.atoms[i].contains_var(v))
            .collect()
    }

    /// Distinct constants occurring anywhere in the query.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out: BTreeSet<Value> = self
            .atoms
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Const(c) => Some(c.clone()),
                Term::Var(_) => None,
            })
            .collect();
        for t in &self.head {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        }
        out
    }

    /// Ground the query with an answer tuple: substitute head variables by
    /// the answer's constants, producing the Boolean query `q[ā/x̄]`
    /// (Sect. 2, "it suffices to compute the causes of the Boolean query").
    ///
    /// # Panics
    /// Panics if `answer` does not match the head arity, or if a head
    /// constant disagrees with the answer. Serving layers should prefer
    /// the fallible [`ConjunctiveQuery::try_ground`].
    pub fn ground(&self, answer: &[Value]) -> ConjunctiveQuery {
        self.try_ground(answer).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConjunctiveQuery::ground`]: rejects answers whose arity
    /// or constants disagree with the head instead of panicking.
    pub fn try_ground(&self, answer: &[Value]) -> Result<ConjunctiveQuery, EngineError> {
        let invalid = |message: String| EngineError::InvalidAnswer {
            query: self.to_string(),
            message,
        };
        if answer.len() != self.head.len() {
            return Err(invalid(format!(
                "answer arity mismatch: head has {} terms, answer has {}",
                self.head.len(),
                answer.len()
            )));
        }
        let mut subst: Vec<Option<Value>> = vec![None; self.var_names.len()];
        for (term, val) in self.head.iter().zip(answer.iter()) {
            match term {
                Term::Var(v) => {
                    if let Some(prev) = &subst[v.0 as usize] {
                        if prev != val {
                            return Err(invalid(format!(
                                "inconsistent repeated head variable `{}`: {prev} vs {val}",
                                self.var_name(*v)
                            )));
                        }
                    }
                    subst[v.0 as usize] = Some(val.clone());
                }
                Term::Const(c) => {
                    if c != val {
                        return Err(invalid(format!(
                            "head constant disagrees with answer: {c} vs {val}"
                        )));
                    }
                }
            }
        }
        let mut q = self.clone();
        q.name = format!("{}[{}]", self.name, format_values(answer));
        q.head = Vec::new();
        for atom in &mut q.atoms {
            for term in &mut atom.terms {
                if let Term::Var(v) = term {
                    if let Some(val) = &subst[v.0 as usize] {
                        *term = Term::Const(val.clone());
                    }
                }
            }
        }
        Ok(q)
    }

    /// Substitute variable `v` by the given term everywhere in the body.
    pub fn substitute_var(&mut self, v: VarId, replacement: &Term) {
        for atom in &mut self.atoms {
            for term in &mut atom.terms {
                if term.as_var() == Some(v) {
                    *term = replacement.clone();
                }
            }
        }
        for term in &mut self.head {
            if term.as_var() == Some(v) {
                *term = replacement.clone();
            }
        }
    }

    /// Rewriting rule DELETE x (Def. 4.6): remove the variable from every
    /// atom, decreasing arities.
    pub fn delete_var(&mut self, v: VarId) {
        for atom in &mut self.atoms {
            atom.terms.retain(|t| t.as_var() != Some(v));
        }
    }

    /// Rewriting rule ADD y (Def. 4.6): append `y` to every atom that
    /// contains `x` but not yet `y`. The caller must check the side
    /// condition (some atom contains both `x` and `y`).
    pub fn add_var_where(&mut self, x: VarId, y: VarId) {
        for atom in &mut self.atoms {
            if atom.contains_var(x) && !atom.contains_var(y) {
                atom.terms.push(Term::Var(y));
            }
        }
    }

    /// Rewriting rule DELETE g (Def. 4.6): remove atom `i`.
    pub fn remove_atom(&mut self, i: usize) -> Atom {
        self.atoms.remove(i)
    }

    /// Drop duplicate atoms (same relation, nature and terms), keeping the
    /// first occurrence. Rewriting can produce syntactic duplicates.
    pub fn dedup_atoms(&mut self) {
        let mut seen: Vec<Atom> = Vec::new();
        self.atoms.retain(|a| {
            if seen.contains(a) {
                false
            } else {
                seen.push(a.clone());
                true
            }
        });
    }

    /// A fingerprint invariant under variable renaming, used as a hash
    /// prefilter before full isomorphism checks: the sorted multiset of
    /// (relation, nature, arity, per-position duplicate pattern).
    pub fn signature(&self) -> Vec<(String, Nature, usize, Vec<usize>)> {
        let mut sig: Vec<_> = self
            .atoms
            .iter()
            .map(|a| {
                // For each position, the index of the first position holding
                // the same term — a renaming-invariant equality pattern.
                let pattern: Vec<usize> = a
                    .terms
                    .iter()
                    .enumerate()
                    .map(|(i, t)| a.terms.iter().position(|u| u == t).unwrap_or(i))
                    .collect();
                (a.relation.clone(), a.nature, a.arity(), pattern)
            })
            .collect();
        sig.sort();
        sig
    }
}

fn format_values(vals: &[Value]) -> String {
    vals.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.head.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.head.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                self.fmt_term(f, t)?;
            }
            write!(f, ")")?;
        }
        write!(f, " :- ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}{}(", atom.relation, atom.nature.suffix())?;
            for (j, t) in atom.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                self.fmt_term(f, t)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl ConjunctiveQuery {
    fn fmt_term(&self, f: &mut fmt::Formatter<'_>, t: &Term) -> fmt::Result {
        match t {
            Term::Var(v) => write!(f, "{}", self.var_name(*v)),
            Term::Const(Value::Int(i)) => write!(f, "{i}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
        }
    }
}

pub use homomorphism::{find_homomorphism, is_isomorphic, query_core};

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn builder_api() {
        let mut cq = ConjunctiveQuery::boolean("q");
        let x = cq.var("x");
        let y = cq.var("y");
        assert_eq!(cq.var("x"), x, "interning is idempotent");
        cq.push_atom(Atom::new(
            "R",
            Nature::Endo,
            vec![Term::Var(x), Term::Var(y)],
        ));
        cq.push_atom(Atom::new("S", Nature::Exo, vec![Term::Var(y)]));
        assert!(cq.is_boolean());
        assert_eq!(cq.to_string(), "q :- R^n(x, y), S^x(y)");
        assert_eq!(cq.body_vars().len(), 2);
        assert_eq!(cq.atoms_with_var(y), vec![0, 1]);
    }

    #[test]
    fn grounding_produces_boolean_query() {
        let cq = q("q(x) :- R(x, y), S(y)");
        let g = cq.ground(&[Value::str("a2")]);
        assert!(g.is_boolean());
        assert_eq!(g.to_string(), "q[a2] :- R('a2', y), S(y)");
        assert_eq!(g.constants().len(), 1);
    }

    /// `q(x, x) :- R(x, y)` — rejected by the parser nowadays, but still
    /// constructible through the builder API, and `ground` must handle it.
    fn repeated_head_query() -> ConjunctiveQuery {
        let mut cq = ConjunctiveQuery::boolean("q");
        let x = cq.var("x");
        let y = cq.var("y");
        cq.push_atom(Atom::new(
            "R",
            Nature::Any,
            vec![Term::Var(x), Term::Var(y)],
        ));
        cq.set_head(vec![Term::Var(x), Term::Var(x)]);
        cq
    }

    #[test]
    fn grounding_repeated_head_var() {
        let g = repeated_head_query().ground(&[Value::int(1), Value::int(1)]);
        assert_eq!(g.to_string(), "q[1,1] :- R(1, y)");
    }

    #[test]
    #[should_panic(expected = "inconsistent repeated head variable")]
    fn grounding_rejects_inconsistent_answer() {
        repeated_head_query().ground(&[Value::int(1), Value::int(2)]);
    }

    #[test]
    fn self_join_detection() {
        assert!(!q("q :- R(x, y), S(y, z)").has_self_join());
        assert!(q("q :- R(x), S(x, y), R(y)").has_self_join());
    }

    #[test]
    fn rewrite_surgery() {
        // Example 4.8 first step: add x to T in R(x,y),S(y,z),T(z,u),K(u,x).
        let mut cq = q("q :- R(x, y), S(y, z), T(z, u), K(u, x)");
        let x = cq.find_var("x").unwrap();
        let u = cq.find_var("u").unwrap();
        cq.add_var_where(u, x); // atoms containing u: T, K. K already has x.
        assert_eq!(cq.to_string(), "q :- R(x, y), S(y, z), T(z, u, x), K(u, x)");

        let z = cq.find_var("z").unwrap();
        cq.delete_var(z);
        assert_eq!(cq.to_string(), "q :- R(x, y), S(y), T(u, x), K(u, x)");

        cq.remove_atom(3);
        assert_eq!(cq.to_string(), "q :- R(x, y), S(y), T(u, x)");
    }

    #[test]
    fn dedup_atoms_removes_syntactic_duplicates() {
        let mut cq = q("q :- R(x, y), R(x, y), S(y)");
        cq.dedup_atoms();
        assert_eq!(cq.atoms().len(), 2);
    }

    #[test]
    fn signature_is_renaming_invariant() {
        let a = q("q :- R(x, y), S(y, z)");
        let b = q("p :- R(u, v), S(v, w)");
        let c = q("q :- R(x, x), S(y, z)");
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn substitution() {
        let mut cq = q("q :- R(x, y), S(y)");
        let y = cq.find_var("y").unwrap();
        cq.substitute_var(y, &Term::Const(Value::str("a3")));
        assert_eq!(cq.to_string(), "q :- R(x, 'a3'), S('a3')");
    }
}
