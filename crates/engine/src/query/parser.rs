//! Text syntax for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  :=  head ':-' atom (',' atom)*
//! head   :=  ident [ '(' term (',' term)* ')' ]
//! atom   :=  ident [ '^' ('n'|'x') ] '(' term (',' term)* ')'
//! term   :=  ident            — a variable
//!          | integer          — an integer constant
//!          | '\'' chars '\''  — a string constant
//! ```
//!
//! Following the paper's notation, `R^n` restricts an atom to endogenous
//! tuples, `R^x` to exogenous tuples, and a bare `R` ranges over all tuples.
//! Examples:
//!
//! ```text
//! q(x) :- R(x, y), S(y)
//! h2   :- R^n(x, y), S^n(y, z), T^n(z, x)
//! q    :- R(x, 'a3'), S('a3')
//! ```

use super::{Atom, ConjunctiveQuery, Nature, Term};
use crate::error::EngineError;
use crate::value::Value;

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, expected: char) -> Result<(), EngineError> {
        self.skip_ws();
        if self.rest().starts_with(expected) {
            self.pos += expected.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected `{expected}`")))
        }
    }

    fn eat_str(&mut self, expected: &str) -> Result<(), EngineError> {
        self.skip_ws();
        if self.rest().starts_with(expected) {
            self.pos += expected.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{expected}`")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, EngineError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 || rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.error("expected identifier".to_string()));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn error(&self, message: String) -> EngineError {
        EngineError::Parse {
            message,
            offset: self.pos,
        }
    }
}

/// Parse one query. See the module docs for the grammar.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, EngineError> {
    let mut c = Cursor::new(input);
    let name = c.ident()?;
    let mut q = ConjunctiveQuery::boolean(name);

    let mut head = Vec::new();
    if c.peek() == Some('(') {
        c.eat('(')?;
        loop {
            head.push(parse_term(&mut c, &mut q)?);
            match c.peek() {
                Some(',') => c.eat(',')?,
                Some(')') => {
                    c.eat(')')?;
                    break;
                }
                _ => return Err(c.error("expected `,` or `)` in head".into())),
            }
        }
    }
    q.set_head(head);

    c.eat_str(":-")?;

    loop {
        let atom = parse_atom(&mut c, &mut q)?;
        q.push_atom(atom);
        c.skip_ws();
        if c.peek() == Some(',') {
            c.eat(',')?;
        } else {
            break;
        }
    }
    c.skip_ws();
    if !c.rest().is_empty() {
        return Err(c.error(format!("trailing input `{}`", c.rest())));
    }
    if q.atoms().is_empty() {
        return Err(c.error("query has no body atoms".into()));
    }
    validate_head(&q, &c)?;
    Ok(q)
}

/// Reject malformed heads at parse time rather than letting them panic or
/// misbehave downstream (`ground` asserts on repeated head variables, the
/// evaluator rejects unbound ones only when run):
///
/// * a head variable repeated (`q(x, x) :- …`) — grounding such a head is
///   ambiguous for any answer that does not repeat the value;
/// * a head variable that never occurs in the body (unsafe query).
fn validate_head(q: &ConjunctiveQuery, c: &Cursor) -> Result<(), EngineError> {
    let mut seen = Vec::new();
    for term in q.head() {
        if let Term::Var(v) = term {
            if seen.contains(v) {
                return Err(c.error(format!("duplicate head variable `{}`", q.var_name(*v))));
            }
            seen.push(*v);
        }
    }
    let body_vars = q.body_vars();
    for v in seen {
        if !body_vars.contains(&v) {
            return Err(EngineError::UnsafeQuery {
                query: q.to_string(),
                var: q.var_name(v).to_string(),
            });
        }
    }
    Ok(())
}

fn parse_atom(c: &mut Cursor, q: &mut ConjunctiveQuery) -> Result<Atom, EngineError> {
    let rel = c.ident()?.to_string();
    let nature = if c.peek() == Some('^') {
        c.eat('^')?;
        match c.peek() {
            Some('n') => {
                c.eat('n')?;
                Nature::Endo
            }
            Some('x') => {
                c.eat('x')?;
                Nature::Exo
            }
            _ => return Err(c.error("expected `n` or `x` after `^`".into())),
        }
    } else {
        Nature::Any
    };
    c.eat('(')?;
    let mut terms = Vec::new();
    if c.peek() == Some(')') {
        c.eat(')')?;
        return Ok(Atom::new(rel, nature, terms));
    }
    loop {
        terms.push(parse_term(c, q)?);
        match c.peek() {
            Some(',') => c.eat(',')?,
            Some(')') => {
                c.eat(')')?;
                break;
            }
            _ => return Err(c.error("expected `,` or `)` in atom".into())),
        }
    }
    Ok(Atom::new(rel, nature, terms))
}

fn parse_term(c: &mut Cursor, q: &mut ConjunctiveQuery) -> Result<Term, EngineError> {
    match c.peek() {
        Some('\'') => {
            c.eat('\'')?;
            let rest = c.rest();
            let end = rest
                .find('\'')
                .ok_or_else(|| c.error("unterminated string constant".into()))?;
            let s = &rest[..end];
            c.pos += end;
            c.eat('\'')?;
            Ok(Term::Const(Value::str(s)))
        }
        Some(ch) if ch.is_ascii_digit() || ch == '-' => {
            c.skip_ws();
            let rest = c.rest();
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, d)| !d.is_ascii_digit())
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let text = &rest[..end];
            let n: i64 = text
                .parse()
                .map_err(|_| c.error(format!("bad integer `{text}`")))?;
            c.pos += end;
            Ok(Term::Const(Value::int(n)))
        }
        Some(ch) if ch.is_alphabetic() || ch == '_' => {
            let name = c.ident()?;
            Ok(Term::Var(q.var(name)))
        }
        _ => Err(c.error("expected term".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("q(x) :- R(x, y), S(y)").unwrap();
        assert_eq!(q.name(), "q");
        assert_eq!(q.head().len(), 1);
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.to_string(), "q(x) :- R(x, y), S(y)");
    }

    #[test]
    fn parses_boolean_query() {
        let q = parse_query("h2 :- R^n(x,y), S^n(y,z), T^n(z,x)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms()[0].nature, Nature::Endo);
        assert_eq!(q.to_string(), "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)");
    }

    #[test]
    fn parses_constants() {
        let q = parse_query("q :- R(x, 'a3'), S('a3'), T(-7)").unwrap();
        assert_eq!(q.atoms()[0].terms[1], Term::Const(Value::str("a3")));
        assert_eq!(q.atoms()[2].terms[0], Term::Const(Value::int(-7)));
    }

    #[test]
    fn parses_exogenous_marker() {
        let q = parse_query("q :- R^x(x, y), S(y)").unwrap();
        assert_eq!(q.atoms()[0].nature, Nature::Exo);
        assert_eq!(q.atoms()[1].nature, Nature::Any);
    }

    #[test]
    fn shared_variables_are_interned_once() {
        let q = parse_query("q :- R(x, y), S(y, z)").unwrap();
        assert_eq!(q.var_count(), 3);
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("q:-R(x,y),S(y)").unwrap();
        let b = parse_query("  q  :-  R( x , y ) , S( y )  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("q(x)").is_err(), "missing body");
        assert!(parse_query("q :- ").is_err(), "empty body");
        assert!(parse_query("q :- R(x").is_err(), "unclosed paren");
        assert!(parse_query("q :- R(x,)").is_err(), "dangling comma");
        assert!(parse_query("q :- R^z(x)").is_err(), "bad nature");
        assert!(parse_query("q :- R('abc)").is_err(), "unterminated string");
        assert!(parse_query("q :- R(x) extra").is_err(), "trailing input");
        assert!(parse_query("1q :- R(x)").is_err(), "bad identifier");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        // Duplicate head variable: grounding would be ambiguous.
        let err = parse_query("q(x, x) :- R(x, y)").unwrap_err();
        assert!(err.to_string().contains("duplicate head variable `x`"));
        // Head variable not bound by the body: unsafe query.
        let err = parse_query("q(y) :- R(x)").unwrap_err();
        assert!(matches!(err, EngineError::UnsafeQuery { ref var, .. } if var == "y"));
        // A head constant repeated with a variable is fine.
        assert!(parse_query("q(x, 'lit') :- R(x)").is_ok());
        // Same variable in head and body, used once in the head: fine.
        assert!(parse_query("q(x, y) :- R(x, y)").is_ok());
    }

    #[test]
    fn roundtrip_display_parse() {
        for text in [
            "q(x) :- R(x, y), S(y)",
            "h1 :- A^n(x), B^n(y), C^n(z), W(x, y, z)",
            "g :- R(x, 'lit'), S(3, x)",
        ] {
            let q = parse_query(text).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2);
        }
    }
}
