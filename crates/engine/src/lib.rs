//! # causality-engine — relational substrate
//!
//! The in-memory relational engine underpinning the reproduction of
//! *Meliou, Gatterbauer, Moore, Suciu: "The Complexity of Causality and
//! Responsibility for Query Answers and non-Answers"*.
//!
//! The paper (Sect. 2) assumes a standard relational setting:
//!
//! * a database instance `D` of named relations holding tuples,
//! * a partition of `D` into *endogenous* tuples `Dn` (potential causes)
//!   and *exogenous* tuples `Dx` (context),
//! * conjunctive queries `q :- g1, …, gm` whose *valuations*
//!   `θ : Var(q) → Adom(D)` ground every atom to a database tuple.
//!
//! This crate provides exactly that substrate:
//!
//! * [`Value`], [`Tuple`], [`TupleRef`] — data model; a [`TupleRef`] is the
//!   Boolean variable `X_t` of Def. 3.1.
//! * [`Schema`], [`Relation`], [`Database`] — storage with per-tuple
//!   endogenous flags and flexible partitioning.
//! * [`ConjunctiveQuery`], [`Atom`], [`Term`] — query ASTs with a text
//!   [parser](query::parser), homomorphism / core machinery (needed by the
//!   paper's Theorem 3.4 image minimization) and isomorphism tests (needed
//!   to recognise the canonical hard queries h1*, h2*, h3*).
//! * [`eval`] — a backtracking join evaluator that enumerates answers *and*
//!   valuations, under counterfactual [`EndoMask`]s (tuple removals for
//!   Why-So, tuple insertions for Why-No), with a thread-safe
//!   [`SharedIndexCache`] keyed on per-relation content stamps
//!   ([`RelVersion`]) so repeated evaluations over unchanged relations
//!   build their hash indexes once — even across writes to *other*
//!   relations.
//! * [`snapshot`] — immutable, structurally shared [`Snapshot`]s and a
//!   versioned [`SnapshotStore`]: each [`Database`] holds one `Arc` per
//!   relation, so publishing an update clones only the relations it
//!   touches while concurrent readers keep their pinned views.
//!
//! # Example
//!
//! ```
//! use causality_engine::{Database, Schema, Value, ConjunctiveQuery, eval::evaluate};
//!
//! let mut db = Database::new();
//! let r = db.add_relation(Schema::new("R", &["x", "y"]));
//! let s = db.add_relation(Schema::new("S", &["y"]));
//! db.insert_endo(r, vec![Value::from("a2"), Value::from("a1")]);
//! db.insert_endo(s, vec![Value::from("a1")]);
//!
//! let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
//! let result = evaluate(&db, &q).unwrap();
//! assert_eq!(result.answers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod eval;
pub mod query;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod tuple;
pub mod value;

pub use database::{Database, EndoMask};
pub use error::EngineError;
pub use eval::{
    evaluate, evaluate_masked, evaluate_masked_with_cache, evaluate_with_cache, holds_masked,
    holds_masked_with_cache, EvalResult, SharedIndexCache, Valuation,
};
pub use query::{Atom, ConjunctiveQuery, Nature, Term, VarId};
pub use relation::{RelVersion, Relation};
pub use schema::Schema;
pub use snapshot::{Snapshot, SnapshotStore};
pub use tuple::{RelId, RowId, Tuple, TupleRef};
pub use value::Value;
