//! Database instances `D = Dx ∪ Dn` and counterfactual masks.

use crate::error::EngineError;
use crate::relation::{RelVersion, Relation};
use crate::schema::Schema;
use crate::tuple::{RelId, Tuple, TupleRef};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A database instance: a set of named relations whose tuples each carry an
/// endogenous flag (`Dn` vs `Dx` of Sect. 2).
///
/// Relations are held behind per-relation [`Arc`]s, so cloning a database
/// is O(number of relations) pointer copies — not a data copy. Mutation is
/// copy-on-write at relation granularity: [`Database::relation_mut`]
/// deep-clones a relation only when it is shared with another database
/// (e.g. a pinned [`Snapshot`](crate::Snapshot)), and re-stamps its
/// [`RelVersion`] so caches keyed on relation content notice the change.
/// Untouched relations stay pointer-identical across versions.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: Vec<Arc<Relation>>,
    by_name: HashMap<String, RelId>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a relation; returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists.
    pub fn add_relation(&mut self, schema: Schema) -> RelId {
        let name = schema.name().to_string();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate relation name {name}"
        );
        let id = RelId(self.relations.len() as u32);
        self.relations.push(Arc::new(Relation::new(schema)));
        self.by_name.insert(name, id);
        id
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of stored tuples.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Lookup a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Lookup a relation id by name, or return an [`EngineError`].
    pub fn require_relation(&self, name: &str) -> Result<RelId, EngineError> {
        self.relation_id(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// The shared handle holding the relation with the given id. Two
    /// databases returning [`Arc::ptr_eq`] handles share the relation
    /// structurally (same content, same indexes, no copy between them).
    pub fn relation_arc(&self, id: RelId) -> &Arc<Relation> {
        &self.relations[id.0 as usize]
    }

    /// Mutable, copy-on-write access to the relation with the given id.
    ///
    /// If the relation is shared with another database (a clone or a
    /// pinned [`Snapshot`](crate::Snapshot)), it is deep-cloned first, so
    /// the sharer is never disturbed. The relation's [`RelVersion`] is
    /// re-stamped on every call — conservatively, whether or not the
    /// caller goes on to change anything.
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        let slot = &mut self.relations[id.0 as usize];
        let relation = Arc::make_mut(slot);
        relation.bump_version();
        relation
    }

    /// The content stamp of the relation with the given id.
    pub fn relation_version(&self, id: RelId) -> RelVersion {
        self.relations[id.0 as usize].version()
    }

    /// The content stamps of every relation, in [`RelId`] order — the
    /// fine-grained fingerprint a serving layer keys its caches on.
    pub fn relation_versions(&self) -> Vec<(RelId, RelVersion)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r.version()))
            .collect()
    }

    /// Iterate over `(id, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r.as_ref()))
    }

    /// Insert a tuple into `rel` with the given endogenous flag.
    pub fn insert(&mut self, rel: RelId, tuple: impl Into<Tuple>, endogenous: bool) -> TupleRef {
        let (row, _) = self.relation_mut(rel).insert(tuple.into(), endogenous);
        TupleRef { rel, row }
    }

    /// Insert an endogenous tuple.
    pub fn insert_endo(&mut self, rel: RelId, tuple: impl Into<Tuple>) -> TupleRef {
        self.insert(rel, tuple, true)
    }

    /// Insert an exogenous tuple.
    pub fn insert_exo(&mut self, rel: RelId, tuple: impl Into<Tuple>) -> TupleRef {
        self.insert(rel, tuple, false)
    }

    /// The tuple a [`TupleRef`] points to.
    pub fn tuple(&self, t: TupleRef) -> &Tuple {
        self.relation(t.rel).tuple(t.row)
    }

    /// Whether the referenced tuple is endogenous.
    pub fn is_endogenous(&self, t: TupleRef) -> bool {
        self.relation(t.rel).is_endogenous(t.row)
    }

    /// Mark every tuple of every relation endogenous — the paper's suggested
    /// default ("the user may start by declaring all tuples in the database
    /// as endogenous, then narrow down").
    pub fn set_all_endogenous(&mut self) {
        for i in 0..self.relations.len() {
            self.relation_mut(RelId(i as u32)).set_all_endogenous(true);
        }
    }

    /// Mark an entire relation endogenous (`Rn = R`) or exogenous (`Rx = R`).
    pub fn set_relation_endogenous(&mut self, rel: RelId, endogenous: bool) {
        self.relation_mut(rel).set_all_endogenous(endogenous);
    }

    /// All endogenous tuple refs, in deterministic order.
    pub fn endogenous_tuples(&self) -> Vec<TupleRef> {
        let mut out = Vec::new();
        for (rel, r) in self.relations() {
            for (row, _, endo) in r.iter() {
                if endo {
                    out.push(TupleRef { rel, row });
                }
            }
        }
        out
    }

    /// Number of endogenous tuples (`|Dn|`).
    pub fn endogenous_count(&self) -> usize {
        self.relations.iter().map(|r| r.endogenous_count()).sum()
    }

    /// The active domain `Adom(D)`: all values appearing anywhere.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut vals = Vec::new();
        for r in &self.relations {
            for (_, t, _) in r.iter() {
                vals.extend(t.values().iter().cloned());
            }
        }
        vals.sort();
        vals.dedup();
        vals
    }

    /// Render the instance as text (one block per relation), for harnesses.
    pub fn display_instance(&self) -> String {
        let mut s = String::new();
        for (_, r) in self.relations() {
            s.push_str(&format!("{}:\n", r.schema()));
            for (_, t, endo) in r.iter() {
                s.push_str(&format!("  {} {}\n", if endo { "n" } else { "x" }, t));
            }
        }
        s
    }
}

/// A counterfactual view of the endogenous tuples during evaluation.
///
/// Exogenous tuples are always present (they "define a context determined by
/// external factors", Sect. 1). Endogenous tuples are toggled:
///
/// * **Why-So** (Def. 2.1): evaluate `q` on `D − Γ` → [`EndoMask::Except`]
///   with `Γ` as the removed set.
/// * **Why-No** (Sect. 2): the real database is `Dx`; `Dn` are *potentially
///   missing* tuples, and we evaluate on `Dx ∪ Γ` → [`EndoMask::Only`] with
///   `Γ` as the inserted set.
#[derive(Clone, Copy, Debug)]
pub enum EndoMask<'a> {
    /// Every endogenous tuple is present (plain evaluation over `D`).
    All,
    /// Every endogenous tuple except the given set is present (`D − Γ`).
    Except(&'a HashSet<TupleRef>),
    /// Only the given endogenous tuples are present (`Dx ∪ Γ`).
    Only(&'a HashSet<TupleRef>),
}

impl EndoMask<'_> {
    /// Whether the tuple `t` (with endogenous flag `endo`) is visible.
    #[inline]
    pub fn active(&self, t: TupleRef, endo: bool) -> bool {
        if !endo {
            return true;
        }
        match self {
            EndoMask::All => true,
            EndoMask::Except(gone) => !gone.contains(&t),
            EndoMask::Only(present) => present.contains(&t),
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_instance())
    }
}

/// Build the Example 2.2 instance from the paper:
/// `R = {(a1,a5),(a2,a1),(a3,a3),(a4,a3),(a4,a2)}`, `S = {a1,a2,a3,a4,a6}`,
/// all tuples endogenous.
pub fn example_2_2() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [
        ("a1", "a5"),
        ("a2", "a1"),
        ("a3", "a3"),
        ("a4", "a3"),
        ("a4", "a2"),
    ] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3", "a4", "a6"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn add_insert_lookup() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t = db.insert_endo(r, tup![1]);
        assert_eq!(db.tuple(t), &tup![1]);
        assert!(db.is_endogenous(t));
        assert_eq!(db.relation_id("R"), Some(r));
        assert_eq!(db.relation_id("Q"), None);
        assert!(db.require_relation("Q").is_err());
        assert_eq!(db.tuple_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x"]));
        db.add_relation(Schema::new("R", &["y"]));
    }

    #[test]
    fn endogenous_partitioning() {
        let mut db = example_2_2();
        assert_eq!(db.endogenous_count(), 10);
        let r = db.relation_id("R").unwrap();
        db.set_relation_endogenous(r, false);
        assert_eq!(db.endogenous_count(), 5);
        db.set_all_endogenous();
        assert_eq!(db.endogenous_count(), 10);
        assert_eq!(db.endogenous_tuples().len(), 10);
    }

    #[test]
    fn active_domain_of_example() {
        let db = example_2_2();
        let adom = db.active_domain();
        let expect: Vec<Value> = ["a1", "a2", "a3", "a4", "a5", "a6"]
            .iter()
            .map(Value::str)
            .collect();
        assert_eq!(adom, expect);
    }

    #[test]
    fn masks() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let endo_t = db.insert_endo(r, tup![1]);
        let exo_t = db.insert_exo(r, tup![2]);

        let mut set = HashSet::new();
        set.insert(endo_t);

        assert!(EndoMask::All.active(endo_t, true));
        assert!(!EndoMask::Except(&set).active(endo_t, true));
        assert!(EndoMask::Only(&set).active(endo_t, true));

        let empty = HashSet::new();
        assert!(!EndoMask::Only(&empty).active(endo_t, true));
        // Exogenous tuples are always visible regardless of mask.
        assert!(EndoMask::Only(&empty).active(exo_t, false));
        assert!(EndoMask::Except(&set).active(exo_t, false));
    }

    #[test]
    fn clone_shares_relations_until_touched() {
        let mut db = example_2_2();
        let r = db.relation_id("R").unwrap();
        let s = db.relation_id("S").unwrap();
        let clone = db.clone();
        assert!(Arc::ptr_eq(db.relation_arc(r), clone.relation_arc(r)));
        assert!(Arc::ptr_eq(db.relation_arc(s), clone.relation_arc(s)));

        let r_before = db.relation_version(r);
        let s_before = db.relation_version(s);
        db.insert_endo(s, tup!["a9"]);

        // Touched relation: diverged pointer, fresh version.
        assert!(!Arc::ptr_eq(db.relation_arc(s), clone.relation_arc(s)));
        assert!(db.relation_version(s) > s_before);
        // Untouched relation: still the very same allocation and stamp.
        assert!(Arc::ptr_eq(db.relation_arc(r), clone.relation_arc(r)));
        assert_eq!(db.relation_version(r), r_before);
        // The clone saw neither the new tuple nor any re-stamp.
        assert_eq!(clone.relation(s).len(), 5);
        assert_eq!(clone.relation_version(s), s_before);
    }

    #[test]
    fn relation_versions_fingerprint_tracks_touches() {
        let mut db = example_2_2();
        let before = db.relation_versions();
        assert_eq!(before.len(), 2);
        let s = db.relation_id("S").unwrap();
        db.set_relation_endogenous(s, false);
        let after = db.relation_versions();
        assert_eq!(before[0], after[0], "R untouched");
        assert_ne!(before[1], after[1], "S re-stamped");
        assert!(after[1].1 > before[1].1, "stamps are monotone");
    }

    #[test]
    fn unshared_relation_mut_still_bumps_version() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let v0 = db.relation_version(r);
        // No clone exists: make_mut mutates in place, but the stamp moves.
        db.relation_mut(r);
        assert!(db.relation_version(r) > v0);
    }

    #[test]
    fn display_lists_tuples_with_flags() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_endo(r, tup![1]);
        db.insert_exo(r, tup![2]);
        let s = db.display_instance();
        assert!(s.contains("R(x):"));
        assert!(s.contains("n (1)"));
        assert!(s.contains("x (2)"));
    }
}
