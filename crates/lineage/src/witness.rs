//! Why-provenance: the minimal witness basis.
//!
//! Sect. 5 of the paper relates Why-So causality to *why-provenance*
//! (Buneman, Khanna, Tan \[2\]): the minimal witness basis of an answer is
//! the set of minimal tuple sets that each suffice to produce the answer.
//! Footnote 4: "To compare it with Why-So causality, we consider the union
//! of tuples across those sets" — and when *all* tuples are endogenous,
//! that union is exactly the cause set. The integration tests exercise
//! this correspondence.

use crate::dnf::Conjunct;
use crate::whyso::lineage;
use causality_engine::{ConjunctiveQuery, Database, EngineError, TupleRef};
use std::collections::BTreeSet;

/// The minimal witness basis of a Boolean query: the minimal (under ⊆)
/// tuple sets each sufficient to make the query true. Computed as the
/// minimized full lineage (over endogenous *and* exogenous tuples alike —
/// provenance does not distinguish them).
pub fn why_provenance(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Vec<BTreeSet<TupleRef>>, EngineError> {
    let phi = lineage(db, q)?.minimized();
    Ok(phi.conjuncts().iter().map(|c| c.as_set().clone()).collect())
}

/// The union of the minimal witness basis — the tuple set footnote 4
/// compares against Why-So causes.
pub fn witness_union(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<BTreeSet<TupleRef>, EngineError> {
    Ok(why_provenance(db, q)?.into_iter().flatten().collect())
}

/// Whether a tuple set is a witness (makes the query true by itself).
pub fn is_witness(
    db: &Database,
    q: &ConjunctiveQuery,
    tuples: &BTreeSet<TupleRef>,
) -> Result<bool, EngineError> {
    let phi = lineage(db, q)?;
    let conj = Conjunct::new(tuples.iter().copied());
    Ok(phi.conjuncts().iter().any(|c| c.is_subset(&conj)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn tref(db: &Database, rel: &str, tuple: causality_engine::Tuple) -> TupleRef {
        let rid = db.relation_id(rel).unwrap();
        TupleRef {
            rel: rid,
            row: db.relation(rid).find(&tuple).unwrap(),
        }
    }

    #[test]
    fn witness_basis_of_a4() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let basis = why_provenance(&db, &query).unwrap();
        assert_eq!(basis.len(), 2, "a4 derives via S(a3) and via S(a2)");
        for w in &basis {
            assert_eq!(w.len(), 2);
        }
        let union = witness_union(&db, &query).unwrap();
        assert_eq!(union.len(), 4);
    }

    #[test]
    fn is_witness_checks_sufficiency() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a2")]);
        let r21 = tref(&db, "R", tup!["a2", "a1"]);
        let s1 = tref(&db, "S", tup!["a1"]);
        let good: BTreeSet<TupleRef> = [r21, s1].into_iter().collect();
        assert!(is_witness(&db, &query, &good).unwrap());
        let partial: BTreeSet<TupleRef> = [r21].into_iter().collect();
        assert!(!is_witness(&db, &query, &partial).unwrap());
    }

    #[test]
    fn false_query_has_empty_basis() {
        let db = example_2_2();
        let query = q("q :- R(x, 'a6'), S('a6')");
        assert!(why_provenance(&db, &query).unwrap().is_empty());
        assert!(witness_union(&db, &query).unwrap().is_empty());
    }

    #[test]
    fn witness_sets_are_minimal() {
        let db = example_2_2();
        let query = q("q :- R(x, y), S(y)");
        let basis = why_provenance(&db, &query).unwrap();
        for (i, a) in basis.iter().enumerate() {
            for (j, b) in basis.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "witness {i} ⊆ witness {j}");
                }
            }
        }
    }
}
