//! Interned lineage: dense variable ids and bitset DNF kernels.
//!
//! Every responsibility computation — Algorithm 1's screening, the exact
//! hitting-set solver, Why-No ranking, the parallel top-k ranker —
//! funnels through DNF manipulation over tuple variables. With
//! [`TupleRef`]-keyed `BTreeSet`s, each kernel step (subset test in
//! minimization, restriction, intersection in the branch-and-bound) is a
//! pointer-chasing, allocation-per-call tree walk. The arena fixes the
//! unit of work instead of the call sites:
//!
//! * [`LineageArena`] interns the `TupleRef`s of one query's lineage into
//!   dense `u32` variable ids, **in ascending `TupleRef` order**, so that
//!   ascending-id iteration of a bitset reproduces exactly the iteration
//!   order of the original `BTreeSet`s — algorithms mirrored onto bitsets
//!   stay *result-identical* to the set-based originals, determinism
//!   included.
//! * [`VarSet`] (a [`FixedBitSet`] of variable ids) replaces `Conjunct`'s
//!   `BTreeSet<TupleRef>`: subset = masked AND compare, restriction =
//!   word-wise difference, intersection tests = word-wise AND — no
//!   allocation, no tree walk.
//! * [`BitDnf`] is the DNF in arena form, with the three kernels the
//!   paper's Sect. 3 needs (restriction with true/false, satisfiability,
//!   redundancy removal) plus the derived queries the responsibility
//!   solvers ask (variables, counterfactuals, per-variable conjunct
//!   scans).
//!
//! The public [`Dnf`] API is unchanged — construction still
//! speaks `TupleRef` — but its minimization routes through this module,
//! and the hot solvers in `causality_core` operate on `BitDnf` directly,
//! translating back to `TupleRef`s only at the result boundary. The
//! original `BTreeSet` implementations survive verbatim in
//! [`crate::oracle`] as the differential-testing baseline.

use crate::dnf::{Conjunct, Dnf};
use causality_engine::TupleRef;
use std::collections::HashMap;

pub use causality_graph::bitset::FixedBitSet;

/// A set of interned variable ids — the bitset form of a
/// [`Conjunct`] or contingency set.
pub type VarSet = FixedBitSet;

/// Interner mapping the [`TupleRef`]s of one lineage to dense `u32` ids.
///
/// Ids are assigned in ascending `TupleRef` order by
/// [`LineageArena::from_dnf`], which makes ascending-id order and
/// ascending-`TupleRef` order coincide — the property every mirrored
/// kernel relies on for bit-identical results.
#[derive(Clone, Debug, Default)]
pub struct LineageArena {
    vars: Vec<TupleRef>,
    index: HashMap<TupleRef, u32>,
}

impl LineageArena {
    /// An empty arena.
    pub fn new() -> Self {
        LineageArena::default()
    }

    /// Intern a lineage: collects the DNF's variables (sorted), assigns
    /// dense ids in `TupleRef` order, and packs every conjunct into a
    /// [`VarSet`]. Conjunct order is preserved.
    pub fn from_dnf(phi: &Dnf) -> (Self, BitDnf) {
        let mut arena = LineageArena::new();
        for t in phi.variables() {
            // `Dnf::variables` yields a BTreeSet: ascending TupleRef
            // order, hence ascending ids.
            arena.intern(t);
        }
        let conjuncts = phi
            .conjuncts()
            .iter()
            .map(|c| {
                // Width on demand: each conjunct's buffer spans only up
                // to its own highest id, so a sparse low-id conjunct
                // stays narrow instead of paying full arena width
                // (every word-wise op tolerates mixed widths).
                let mut set = VarSet::new();
                for t in c.vars() {
                    set.insert(arena.id(t).expect("interned above") as usize);
                }
                set
            })
            .collect();
        (arena, BitDnf { conjuncts })
    }

    /// Intern one tuple variable, returning its id. Idempotent.
    pub fn intern(&mut self, t: TupleRef) -> u32 {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let id = self.vars.len() as u32;
        self.vars.push(t);
        self.index.insert(t, id);
        id
    }

    /// The id of `t`, if it was interned.
    pub fn id(&self, t: TupleRef) -> Option<u32> {
        self.index.get(&t).copied()
    }

    /// The tuple behind an id.
    ///
    /// # Panics
    /// If the id was not produced by this arena.
    pub fn resolve(&self, id: u32) -> TupleRef {
        self.vars[id as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables were interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Resolve a [`VarSet`] back to tuples, in ascending id order (which
    /// is ascending `TupleRef` order for [`LineageArena::from_dnf`]
    /// arenas).
    pub fn tuples_of(&self, set: &VarSet) -> Vec<TupleRef> {
        set.iter().map(|id| self.resolve(id as u32)).collect()
    }

    /// Rebuild a [`Conjunct`] from a [`VarSet`].
    pub fn conjunct_of(&self, set: &VarSet) -> Conjunct {
        Conjunct::new(set.iter().map(|id| self.resolve(id as u32)))
    }

    /// Rebuild a full [`Dnf`] from arena form (conjunct order preserved).
    pub fn dnf_of(&self, phi: &BitDnf) -> Dnf {
        Dnf::new(phi.conjuncts.iter().map(|c| self.conjunct_of(c)).collect())
    }
}

/// A positive DNF in arena form: one [`VarSet`] per conjunct. The empty
/// DNF is `false`; a DNF containing the empty conjunct is `true`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitDnf {
    conjuncts: Vec<VarSet>,
}

impl BitDnf {
    /// Build from conjunct bitsets (kept as given; call
    /// [`BitDnf::minimized`] to remove redundancy).
    pub fn new(conjuncts: Vec<VarSet>) -> Self {
        BitDnf { conjuncts }
    }

    /// The conjuncts, in order.
    pub fn conjuncts(&self) -> &[VarSet] {
        &self.conjuncts
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Whether there are no conjuncts (the constant `false`).
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Satisfiability of a positive DNF: at least one conjunct.
    pub fn is_satisfiable(&self) -> bool {
        !self.conjuncts.is_empty()
    }

    /// Whether the DNF is the constant `true` (has an empty conjunct).
    pub fn is_tautology(&self) -> bool {
        self.conjuncts.iter().any(VarSet::is_empty)
    }

    /// All variables mentioned, as one bitset (word-wise OR).
    pub fn variables(&self) -> VarSet {
        let mut all = VarSet::new();
        for c in &self.conjuncts {
            all.union_with(c);
        }
        all
    }

    /// The variables occurring in *every* conjunct (word-wise AND) — the
    /// counterfactual causes of Theorem 3.2. Empty when there are no
    /// conjuncts.
    pub fn common_variables(&self) -> VarSet {
        let Some(first) = self.conjuncts.first() else {
            return VarSet::new();
        };
        let mut common = first.clone();
        for c in &self.conjuncts[1..] {
            common.intersect_with(c);
        }
        common
    }

    /// Whether variable `v` occurs anywhere.
    pub fn mentions(&self, v: u32) -> bool {
        self.conjuncts.iter().any(|c| c.contains(v as usize))
    }

    /// Evaluate under a truth assignment on variable ids.
    pub fn evaluate(&self, truth: impl Fn(usize) -> bool) -> bool {
        self.conjuncts.iter().any(|c| c.iter().all(&truth))
    }

    /// Restriction `Φ[X_v := true, ∀v ∈ set]`: word-wise difference on
    /// every conjunct (possibly creating the empty conjunct = `true`).
    pub fn assign_true(&self, set: &VarSet) -> BitDnf {
        BitDnf {
            conjuncts: self.conjuncts.iter().map(|c| c.without(set)).collect(),
        }
    }

    /// Restriction `Φ[X_v := false, ∀v ∈ set]`: drop every conjunct
    /// intersecting `set` (one word-wise AND test per conjunct).
    pub fn assign_false(&self, set: &VarSet) -> BitDnf {
        BitDnf {
            conjuncts: self
                .conjuncts
                .iter()
                .filter(|c| !c.intersects(set))
                .cloned()
                .collect(),
        }
    }

    /// Remove redundant conjuncts (Sect. 3): duplicates collapse, and a
    /// conjunct strictly containing another is dropped. Result sorted by
    /// element sequence — the same order `Dnf::minimized` produces — so
    /// downstream scans are deterministic.
    ///
    /// The absorption scan sorts by cardinality first and probes a
    /// candidate only against *strictly smaller* kept conjuncts: after
    /// dedup, an equal-cardinality subset would have to be an equal set,
    /// so equal-size probes are skipped entirely. An already-minimal
    /// DNF of same-size conjuncts (every self-join-free lineage) thus
    /// performs **zero** subset tests instead of the seed's n²/2
    /// tree-walking ones; mixed sizes early-exit on the first differing
    /// word.
    pub fn minimized(&self) -> BitDnf {
        // Sort *indices*, not clones: only the surviving conjuncts are
        // ever copied out of `self`.
        let sizes: Vec<usize> = self.conjuncts.iter().map(VarSet::len).collect();
        let mut order: Vec<usize> = (0..self.conjuncts.len()).collect();
        order.sort_by(|&a, &b| {
            sizes[a]
                .cmp(&sizes[b])
                .then_with(|| self.conjuncts[a].cmp_elements(&self.conjuncts[b]))
        });

        let mut kept: Vec<VarSet> = Vec::new();
        let mut kept_sizes: Vec<usize> = Vec::new();
        let mut prev: Option<usize> = None;
        'outer: for &i in &order {
            // Adjacent-equal dedup (duplicates are neighbours in the
            // sorted order).
            if let Some(p) = prev {
                if sizes[p] == sizes[i] && self.conjuncts[p] == self.conjuncts[i] {
                    continue;
                }
            }
            prev = Some(i);
            // Only kept conjuncts with strictly fewer variables can be
            // strict subsets; `partition_point` finds the boundary in
            // the size-sorted kept list.
            let boundary = kept_sizes.partition_point(|&s| s < sizes[i]);
            for k in &kept[..boundary] {
                if k.is_subset(&self.conjuncts[i]) {
                    continue 'outer;
                }
            }
            kept.push(self.conjuncts[i].clone());
            kept_sizes.push(sizes[i]);
        }
        kept.sort_by(|a, b| a.cmp_elements(b));
        BitDnf { conjuncts: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn t(rel: u32, row: u32) -> TupleRef {
        TupleRef::new(rel, row)
    }

    fn c(vars: &[(u32, u32)]) -> Conjunct {
        Conjunct::new(vars.iter().map(|&(r, w)| t(r, w)))
    }

    fn vs(ids: &[usize]) -> VarSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn interning_is_tupleref_ordered_and_idempotent() {
        let phi = Dnf::new(vec![c(&[(1, 5), (0, 2)]), c(&[(0, 9), (0, 2)])]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        assert_eq!(arena.len(), 3);
        // Ids follow TupleRef order: (0,2) < (0,9) < (1,5).
        assert_eq!(arena.id(t(0, 2)), Some(0));
        assert_eq!(arena.id(t(0, 9)), Some(1));
        assert_eq!(arena.id(t(1, 5)), Some(2));
        assert_eq!(arena.resolve(2), t(1, 5));
        assert_eq!(arena.id(t(7, 7)), None);
        assert_eq!(bits.conjuncts()[0], vs(&[0, 2]));
        assert_eq!(bits.conjuncts()[1], vs(&[0, 1]));
        // Round trip preserves the DNF.
        assert_eq!(arena.dnf_of(&bits), phi);
        let mut arena2 = arena.clone();
        assert_eq!(arena2.intern(t(0, 2)), 0, "re-interning returns same id");
    }

    #[test]
    fn paper_redundancy_example_in_bits() {
        // Φ = X1X3 ∨ X1X2X3 ∨ X1X4 minimizes to X1X3 ∨ X1X4.
        let phi = Dnf::new(vec![
            c(&[(0, 1), (0, 3)]),
            c(&[(0, 1), (0, 2), (0, 3)]),
            c(&[(0, 1), (0, 4)]),
        ]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let min = bits.minimized();
        assert_eq!(min.len(), 2);
        assert_eq!(arena.dnf_of(&min), oracle::minimized(&phi));
    }

    #[test]
    fn minimized_matches_oracle_order_exactly() {
        // Mixed sizes, duplicates, an absorbing small conjunct, and the
        // classic sequence-order witness {1,5} vs {2}.
        let phi = Dnf::new(vec![
            c(&[(0, 2)]),
            c(&[(0, 1), (0, 5)]),
            c(&[(0, 2), (0, 7)]),
            c(&[(0, 1), (0, 5)]),
            c(&[(0, 3), (0, 4), (0, 6)]),
        ]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        assert_eq!(arena.dnf_of(&bits.minimized()), oracle::minimized(&phi));
    }

    #[test]
    fn tautology_and_unsatisfiable() {
        let (_, empty) = LineageArena::from_dnf(&Dnf::unsatisfiable());
        assert!(!empty.is_satisfiable());
        assert!(empty.variables().is_empty());
        assert!(empty.common_variables().is_empty());

        let phi = Dnf::new(vec![Conjunct::empty(), c(&[(0, 1)])]);
        let (_, bits) = LineageArena::from_dnf(&phi);
        assert!(bits.is_tautology());
        let min = bits.minimized();
        assert_eq!(min.len(), 1, "empty conjunct subsumes everything");
        assert!(min.is_tautology());
    }

    #[test]
    fn assign_true_and_false_mirror_dnf() {
        let phi = Dnf::new(vec![
            c(&[(0, 1), (1, 0)]),
            c(&[(0, 2), (1, 0)]),
            c(&[(0, 2)]),
        ]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let mask: VarSet = [arena.id(t(1, 0)).unwrap() as usize].into_iter().collect();

        let set: std::collections::BTreeSet<TupleRef> = [t(1, 0)].into_iter().collect();
        assert_eq!(
            arena.dnf_of(&bits.assign_true(&mask)),
            phi.assign_true(&set)
        );
        assert_eq!(
            arena.dnf_of(&bits.assign_false(&mask)),
            phi.assign_false(&set)
        );
    }

    #[test]
    fn variable_queries() {
        let phi = Dnf::new(vec![c(&[(0, 1), (0, 2)]), c(&[(0, 1), (0, 3)])]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let x1 = arena.id(t(0, 1)).unwrap();
        let x3 = arena.id(t(0, 3)).unwrap();
        assert!(bits.mentions(x1) && bits.mentions(x3));
        assert!(!bits.mentions(99));
        assert_eq!(bits.variables().len(), 3);
        let common = bits.common_variables();
        assert!(common.contains(x1 as usize));
        assert_eq!(common.len(), 1, "only X1 is in every conjunct");
        assert!(bits.evaluate(|v| v == x1 as usize || v == x3 as usize));
        assert!(!bits.evaluate(|v| v == x3 as usize));
    }

    #[test]
    fn minimized_same_size_conjuncts_skip_all_probes() {
        // 100 distinct size-2 conjuncts: already minimal; output equals
        // the oracle's (correctness of the zero-probe fast path).
        let phi = Dnf::new((0..100).map(|i| c(&[(0, i), (1, i)])).collect::<Vec<_>>());
        let (arena, bits) = LineageArena::from_dnf(&phi);
        assert_eq!(arena.dnf_of(&bits.minimized()), oracle::minimized(&phi));
    }
}
