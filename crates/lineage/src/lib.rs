//! # causality-lineage — Boolean lineage and provenance
//!
//! Lineage machinery for the causality reproduction (paper Sect. 3):
//!
//! * [`dnf`] — positive Boolean expressions in DNF over tuple variables
//!   `X_t`, with the operations the paper's Theorem 3.2 needs: restriction
//!   `Φ[X := true/false]`, satisfiability (a positive DNF is satisfiable
//!   iff it has at least one conjunct), and **redundant-conjunct removal**
//!   (a conjunct is redundant if another conjunct is a strict subset).
//! * [`whyso`] — the lineage `Φ` of a Boolean query (one conjunct
//!   `c_θ = X_{t1} ∧ … ∧ X_{tm}` per valuation `θ`, Def. 3.1) and the
//!   **n-lineage** `Φⁿ = Φ[X_t := true, ∀t ∈ Dx]`.
//! * [`whyno`] — the non-answer lineage over `Dx ∪ Dn`, where `Dn` holds
//!   the *potentially missing* tuples (Sect. 2's Why-No setting; computing
//!   `Dn` itself is delegated to the data generator / caller, as the paper
//!   delegates it to Huang et al. \[15\]).
//! * [`witness`] — why-provenance (minimal witness basis), for the Sect. 5
//!   comparison between provenance and causality.
//! * [`semiring`] — provenance semirings (Green et al. \[12\]) evaluated
//!   over the same valuation stream: Boolean, counting, tropical and
//!   how-polynomials.
//! * [`arena`] — interned lineage: [`LineageArena`] maps `TupleRef`s to
//!   dense `u32` variable ids and [`BitDnf`]/[`VarSet`] run the hot
//!   kernels (minimize, restrict, subset/intersection) on packed `u64`
//!   bitsets. Every responsibility solver operates on this form; `Dnf`
//!   remains the construction-time API and translates at the boundary.
//! * [`oracle`] — the seed `BTreeSet` kernels, verbatim, for
//!   differential tests and before/after benchmarking only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod dnf;
pub mod oracle;
pub mod semiring;
pub mod whyno;
pub mod whyso;
pub mod witness;

pub use arena::{BitDnf, LineageArena, VarSet};
pub use dnf::{Conjunct, Dnf};
pub use whyno::{non_answer_lineage, non_answer_lineage_cached};
pub use whyso::{lineage, lineage_cached, n_lineage, n_lineage_cached};
pub use witness::why_provenance;
