//! The seed `BTreeSet`-walking DNF kernels, retained as a differential
//! oracle.
//!
//! The production kernels live in [`crate::arena`] (packed bitsets over
//! interned variable ids). This module preserves the original
//! tree-walking implementations **verbatim** so that
//!
//! * differential property tests can assert the bitset kernels are
//!   result-identical on random DNFs, and
//! * the `lineage_kernels` bench can report honest before/after ratios
//!   against the seed implementation across PRs.
//!
//! Nothing on a serving path calls into this module; do not optimise it.

use crate::dnf::{Conjunct, Dnf};

/// Seed redundancy removal: the quadratic sorted-scan from the original
/// `Dnf::minimized`, probing every kept conjunct with a full
/// `BTreeSet::is_subset` walk.
pub fn minimized(phi: &Dnf) -> Dnf {
    // Sort by size so that potential subsets come first; keep a
    // conjunct only if no kept conjunct is a subset of it.
    let mut sorted: Vec<Conjunct> = phi.conjuncts().to_vec();
    sorted.sort_by_key(|c| (c.len(), c.clone()));
    sorted.dedup();
    let mut kept: Vec<Conjunct> = Vec::new();
    'outer: for c in sorted {
        for k in &kept {
            if k.is_subset(&c) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept.sort();
    Dnf::new(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::TupleRef;

    fn c(vars: &[u32]) -> Conjunct {
        Conjunct::new(vars.iter().map(|&v| TupleRef::new(0, v)))
    }

    #[test]
    fn oracle_still_minimizes_the_paper_example() {
        let phi = Dnf::new(vec![c(&[1, 3]), c(&[1, 2, 3]), c(&[1, 4])]);
        let min = minimized(&phi);
        assert_eq!(min.len(), 2);
        assert!(min.conjuncts().contains(&c(&[1, 3])));
        assert!(min.conjuncts().contains(&c(&[1, 4])));
    }

    #[test]
    fn oracle_agrees_with_production_minimized() {
        let phi = Dnf::new(vec![
            c(&[2]),
            c(&[1, 5]),
            c(&[2, 7]),
            c(&[1, 5]),
            Conjunct::empty(),
        ]);
        assert_eq!(minimized(&phi), phi.minimized());
    }
}
