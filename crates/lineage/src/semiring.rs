//! Provenance semirings (Green, Karvounarakis, Tannen \[12\]).
//!
//! Sect. 5 situates causality within the provenance landscape: lineage is
//! the Boolean specialization of semiring provenance. This module
//! generalizes the valuation stream to arbitrary commutative semirings —
//! the annotation of an answer is `Σ_θ Π_{t ∈ θ} ann(t)` — giving, beyond
//! the Boolean lineage, multiplicity counting, minimum-weight derivations
//! (tropical), and the full *how-provenance* polynomial.

use causality_engine::{
    evaluate_masked, ConjunctiveQuery, Database, EndoMask, EngineError, TupleRef,
};
use std::collections::BTreeMap;
use std::fmt;

/// A commutative semiring `(K, ⊕, ⊗, 0, 1)`.
pub trait Semiring {
    /// Element type.
    type Elem: Clone + PartialEq + fmt::Debug;
    /// Additive identity.
    fn zero(&self) -> Self::Elem;
    /// Multiplicative identity.
    fn one(&self) -> Self::Elem;
    /// Addition (alternative derivations).
    fn plus(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplication (joint use within one derivation).
    fn times(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// Evaluate the provenance annotation of a Boolean query: each valuation
/// contributes the product of its tuples' annotations; valuations add up.
///
/// A tuple grounding several atoms of one valuation is multiplied once per
/// occurrence *position* collapse — following \[12\], `Π_{t∈θ}` ranges over
/// the atom positions, so a tuple used twice contributes its annotation
/// squared (how-provenance distinguishes `x²` from `x`).
pub fn annotate<S: Semiring>(
    db: &Database,
    q: &ConjunctiveQuery,
    semiring: &S,
    ann: impl Fn(TupleRef) -> S::Elem,
) -> Result<S::Elem, EngineError> {
    let result = evaluate_masked(db, q, EndoMask::All)?;
    let mut total = semiring.zero();
    for v in &result.valuations {
        let mut prod = semiring.one();
        for &t in &v.atom_tuples {
            prod = semiring.times(&prod, &ann(t));
        }
        total = semiring.plus(&total, &prod);
    }
    Ok(total)
}

/// The Boolean semiring: annotation = query truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;
    fn zero(&self) -> bool {
        false
    }
    fn one(&self) -> bool {
        true
    }
    fn plus(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn times(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// The counting semiring (ℕ, +, ×): annotation = number of derivations
/// under bag semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSemiring;

impl Semiring for CountingSemiring {
    type Elem = u64;
    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1
    }
    fn plus(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn times(&self, a: &u64, b: &u64) -> u64 {
        a * b
    }
}

/// The tropical semiring (ℕ ∪ {∞}, min, +): annotation = cost of the
/// cheapest derivation. `None` is ∞.
#[derive(Clone, Copy, Debug, Default)]
pub struct TropicalSemiring;

impl Semiring for TropicalSemiring {
    type Elem = Option<u64>;
    fn zero(&self) -> Option<u64> {
        None
    }
    fn one(&self) -> Option<u64> {
        Some(0)
    }
    fn plus(&self, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (None, x) | (x, None) => *x,
            (Some(x), Some(y)) => Some(*x.min(y)),
        }
    }
    fn times(&self, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        }
    }
}

/// A how-provenance polynomial: a formal sum of monomials over tuple
/// variables, `Σ coeff · Π X_t^e`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial {
    /// monomial (variable → exponent) → coefficient
    terms: BTreeMap<BTreeMap<TupleRef, u32>, u64>,
}

impl Polynomial {
    /// The single-variable polynomial `X_t`.
    pub fn var(t: TupleRef) -> Self {
        let mut mono = BTreeMap::new();
        mono.insert(t, 1);
        let mut terms = BTreeMap::new();
        terms.insert(mono, 1);
        Polynomial { terms }
    }

    /// Number of monomials.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate the polynomial in another semiring by mapping variables —
    /// the "specialization" homomorphism of \[12\].
    pub fn eval_in<S: Semiring>(&self, semiring: &S, map: impl Fn(TupleRef) -> S::Elem) -> S::Elem {
        let mut total = semiring.zero();
        for (mono, &coeff) in &self.terms {
            let mut prod = semiring.one();
            for (&t, &e) in mono {
                for _ in 0..e {
                    prod = semiring.times(&prod, &map(t));
                }
            }
            let mut scaled = semiring.zero();
            for _ in 0..coeff {
                scaled = semiring.plus(&scaled, &prod);
            }
            total = semiring.plus(&total, &scaled);
        }
        total
    }

    /// Render with a variable naming function.
    pub fn display_with(&self, name: impl Fn(TupleRef) -> String) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        self.terms
            .iter()
            .map(|(mono, coeff)| {
                let vars = mono
                    .iter()
                    .map(|(&t, &e)| {
                        if e == 1 {
                            name(t)
                        } else {
                            format!("{}^{e}", name(t))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("·");
                if mono.is_empty() {
                    coeff.to_string()
                } else if *coeff == 1 {
                    vars
                } else {
                    format!("{coeff}·{vars}")
                }
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// The polynomial (how-provenance) semiring `ℕ[X]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolynomialSemiring;

impl Semiring for PolynomialSemiring {
    type Elem = Polynomial;
    fn zero(&self) -> Polynomial {
        Polynomial::default()
    }
    fn one(&self) -> Polynomial {
        let mut terms = BTreeMap::new();
        terms.insert(BTreeMap::new(), 1);
        Polynomial { terms }
    }
    fn plus(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        let mut out = a.clone();
        for (mono, coeff) in &b.terms {
            *out.terms.entry(mono.clone()).or_insert(0) += coeff;
        }
        out.terms.retain(|_, c| *c > 0);
        out
    }
    fn times(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        let mut out = Polynomial::default();
        for (m1, c1) in &a.terms {
            for (m2, c2) in &b.terms {
                let mut mono = m1.clone();
                for (&t, &e) in m2 {
                    *mono.entry(t).or_insert(0) += e;
                }
                *out.terms.entry(mono).or_insert(0) += c1 * c2;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::Value;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn boolean_annotation_is_query_truth() {
        let db = example_2_2();
        let truth = annotate(&db, &q("q :- R(x, y), S(y)"), &BoolSemiring, |_| true).unwrap();
        assert!(truth);
        let falsity =
            annotate(&db, &q("q :- R(x, 'a6'), S('a6')"), &BoolSemiring, |_| true).unwrap();
        assert!(!falsity);
    }

    #[test]
    fn counting_annotation_counts_valuations() {
        let db = example_2_2();
        // a4 joins twice, a2 and a3 once each → 4 valuations in total.
        let n = annotate(&db, &q("q :- R(x, y), S(y)"), &CountingSemiring, |_| 1).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn tropical_annotation_finds_cheapest_derivation() {
        let db = example_2_2();
        // Cost = 1 per tuple: every derivation uses 2 tuples.
        let cost = annotate(&db, &q("q :- R(x, y), S(y)"), &TropicalSemiring, |_| {
            Some(1)
        })
        .unwrap();
        assert_eq!(cost, Some(2));
        let no = annotate(
            &db,
            &q("q :- R(x, 'a6'), S('a6')"),
            &TropicalSemiring,
            |_| Some(1),
        )
        .unwrap();
        assert_eq!(no, None);
    }

    #[test]
    fn polynomial_annotation_lists_derivations() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let p = annotate(&db, &query, &PolynomialSemiring, Polynomial::var).unwrap();
        assert_eq!(p.term_count(), 2, "a4 has two derivations");
        // Specializing the polynomial to the counting semiring matches the
        // direct counting annotation.
        let direct = annotate(&db, &query, &CountingSemiring, |_| 1).unwrap();
        assert_eq!(p.eval_in(&CountingSemiring, |_| 1), direct);
    }

    #[test]
    fn polynomial_squares_reused_tuples() {
        use causality_engine::{tup, Schema};
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 1]);
        let p = annotate(
            &db,
            &q("q :- R(x, y), R(y, x)"),
            &PolynomialSemiring,
            Polynomial::var,
        )
        .unwrap();
        let shown = p.display_with(|_| "r".to_string());
        assert_eq!(shown, "r^2");
    }

    #[test]
    fn semiring_laws_spot_checks() {
        let s = PolynomialSemiring;
        let a = Polynomial::var(TupleRef::new(0, 0));
        let b = Polynomial::var(TupleRef::new(0, 1));
        let c = Polynomial::var(TupleRef::new(1, 0));
        // Commutativity.
        assert_eq!(s.plus(&a, &b), s.plus(&b, &a));
        assert_eq!(s.times(&a, &b), s.times(&b, &a));
        // Associativity.
        assert_eq!(s.times(&s.times(&a, &b), &c), s.times(&a, &s.times(&b, &c)));
        // Distributivity.
        assert_eq!(
            s.times(&a, &s.plus(&b, &c)),
            s.plus(&s.times(&a, &b), &s.times(&a, &c))
        );
        // Identities.
        assert_eq!(s.plus(&a, &s.zero()), a);
        assert_eq!(s.times(&a, &s.one()), a);
        assert_eq!(s.times(&a, &s.zero()), s.zero());
    }

    #[test]
    fn polynomial_display() {
        let s = PolynomialSemiring;
        assert_eq!(s.zero().display_with(|_| "x".into()), "0");
        assert_eq!(s.one().display_with(|_| "x".into()), "1");
        let a = Polynomial::var(TupleRef::new(0, 0));
        let two_a = s.plus(&a, &a);
        assert_eq!(two_a.display_with(|_| "a".into()), "2·a");
    }
}
