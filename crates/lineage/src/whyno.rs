//! Lineage of non-answers (the Why-No setting, Sect. 2).
//!
//! For Why-No causality "the real database consists entirely of exogenous
//! tuples, Dx. In addition, we are given a set of potentially missing
//! tuples … these form the endogenous tuples, Dn". Conventionally we store
//! `Dn` in the same [`Database`] with the endogenous flag set: exogenous
//! rows are the *real* tuples, endogenous rows the *candidate insertions*.
//!
//! The non-answer lineage is then structurally the n-lineage of the
//! completed database `Dx ∪ Dn`: each conjunct lists the missing tuples
//! whose joint insertion would produce one valuation of the query. The
//! paper does not address computing `Dn` itself (it cites Huang et al.
//! \[15\]); callers provide it.

use crate::dnf::Dnf;
use crate::whyso::{n_lineage_cached, require_boolean};
use causality_engine::ConjunctiveQuery;
use causality_engine::{holds_masked, Database, EndoMask, EngineError, SharedIndexCache};
use std::collections::HashSet;

/// Compute the Why-No lineage of a Boolean non-answer: the n-lineage over
/// `Dx ∪ Dn`, whose conjuncts are the candidate insertion sets.
///
/// # Errors
/// * [`EngineError::NotBoolean`] for non-Boolean queries.
/// * Propagates evaluation errors.
///
/// Following the paper's convention (`Dx ⊭ q`, "otherwise we have no
/// causes"), a query that is already true on `Dx` alone is not an error:
/// the returned DNF is a tautology, which minimizes to zero causes.
/// [`is_non_answer`] lets callers check the precondition explicitly.
pub fn non_answer_lineage(db: &Database, q: &ConjunctiveQuery) -> Result<Dnf, EngineError> {
    non_answer_lineage_cached(db, q, None)
}

/// [`non_answer_lineage`] with an optional [`SharedIndexCache`].
pub fn non_answer_lineage_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<Dnf, EngineError> {
    require_boolean(q)?;
    n_lineage_cached(db, q, cache)
}

/// Whether the Boolean query is indeed false on the real (exogenous-only)
/// database `Dx` — the precondition of the Why-No setting.
pub fn is_non_answer(db: &Database, q: &ConjunctiveQuery) -> Result<bool, EngineError> {
    require_boolean(q)?;
    let none = HashSet::new();
    Ok(!holds_masked(db, q, EndoMask::Only(&none))?)
}

/// Whether the completed database `Dx ∪ Dn` makes the query true — the
/// other precondition (`Dx ∪ Dn ⊨ q`); if even the candidate insertions
/// cannot produce the answer, there are no Why-No causes at all.
pub fn is_recoverable(db: &Database, q: &ConjunctiveQuery) -> Result<bool, EngineError> {
    require_boolean(q)?;
    holds_masked(db, q, EndoMask::All)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::{tup, Schema};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// A small Why-No scenario: real R = {(1,2)}, real S = {}; candidate
    /// insertions S(2) and S(3). Why is q :- R(x,y),S(y) not true? The
    /// lineage over Dx ∪ Dn must list {S(2)} as the single repair.
    #[test]
    fn single_missing_tuple() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);
        db.insert_endo(s, tup![3]);

        let query = q("q :- R(x, y), S(y)");
        assert!(is_non_answer(&db, &query).unwrap());
        assert!(is_recoverable(&db, &query).unwrap());

        let phi = non_answer_lineage(&db, &query).unwrap().minimized();
        assert_eq!(phi.len(), 1);
        assert_eq!(phi.conjuncts()[0].len(), 1);
        assert!(phi.conjuncts()[0].contains(s2));
    }

    /// Two missing tuples must be inserted together: the conjunct has both.
    #[test]
    fn joint_insertion_conjunct() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        let r12 = db.insert_endo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);

        let query = q("q :- R(x, y), S(y)");
        assert!(is_non_answer(&db, &query).unwrap());
        let phi = non_answer_lineage(&db, &query).unwrap().minimized();
        assert_eq!(phi.len(), 1);
        assert_eq!(phi.conjuncts()[0].len(), 2);
        assert!(phi.conjuncts()[0].contains(r12));
        assert!(phi.conjuncts()[0].contains(s2));
    }

    #[test]
    fn already_answer_yields_tautology() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        let query = q("q :- R(x)");
        assert!(!is_non_answer(&db, &query).unwrap());
        let phi = non_answer_lineage(&db, &query).unwrap();
        assert!(phi.is_tautology());
        assert!(phi.minimized().variables().is_empty());
    }

    #[test]
    fn unrecoverable_non_answer_has_no_conjuncts() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        // No candidate S tuples at all.
        let query = q("q :- R(x, y), S(y)");
        assert!(is_non_answer(&db, &query).unwrap());
        assert!(!is_recoverable(&db, &query).unwrap());
        let phi = non_answer_lineage(&db, &query).unwrap();
        assert!(!phi.is_satisfiable());
    }

    #[test]
    fn minimal_repairs_dominate() {
        // q can be recovered via one insertion {S(2)} or via two {R(5,3),
        // S(3)}: both are non-redundant (disjoint), so both survive; but a
        // superset repair {S(2), R(1,2)…} never appears because valuations
        // ground exactly one tuple per atom.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        db.insert_endo(r, tup![5, 3]);
        db.insert_endo(s, tup![3]);

        let phi = non_answer_lineage(&db, &q("q :- R(x, y), S(y)"))
            .unwrap()
            .minimized();
        assert_eq!(phi.len(), 2);
        let mut sizes: Vec<usize> = phi.conjuncts().iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }
}
