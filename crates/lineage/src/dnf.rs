//! Positive Boolean expressions in DNF over tuple variables.
//!
//! The paper (Sect. 3) works with positive DNFs like
//! `Φ = X1X3 ∨ X1X2X3 ∨ X1X4` and relies on three operations:
//!
//! * **restriction** `Φ[X := true]` / `Φ[X := false]`,
//! * **satisfiability** — "a positive DNF is satisfiable if it has at
//!   least one conjunct; otherwise it is equivalent to false",
//! * **redundancy removal** — "a conjunct c is redundant if there exists
//!   another conjunct c′ that is a strict subset of c".
//!
//! One corner case deserves care: restriction with `true` may empty a
//! conjunct, making the whole DNF a tautology. An empty conjunct is kept
//! explicitly; it subsumes every other conjunct during minimization, which
//! is exactly the behaviour Theorem 3.2 needs (a tautological n-lineage has
//! no causes).

use causality_engine::TupleRef;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunct `X_{t1} ∧ … ∧ X_{tk}`: a set of tuple variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Conjunct(BTreeSet<TupleRef>);

impl Conjunct {
    /// Build a conjunct from tuple variables (duplicates collapse).
    pub fn new(vars: impl IntoIterator<Item = TupleRef>) -> Self {
        Conjunct(vars.into_iter().collect())
    }

    /// The empty conjunct (the constant `true`).
    pub fn empty() -> Self {
        Conjunct(BTreeSet::new())
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty conjunct (constant `true`).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the conjunct mentions `t`.
    pub fn contains(&self, t: TupleRef) -> bool {
        self.0.contains(&t)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Conjunct) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Whether `self ⊂ other` strictly.
    pub fn is_strict_subset(&self, other: &Conjunct) -> bool {
        self.0.len() < other.0.len() && self.0.is_subset(&other.0)
    }

    /// Iterate over the variables.
    pub fn vars(&self) -> impl Iterator<Item = TupleRef> + '_ {
        self.0.iter().copied()
    }

    /// Whether the conjunct intersects the given set.
    pub fn intersects(&self, set: &BTreeSet<TupleRef>) -> bool {
        self.0.iter().any(|t| set.contains(t))
    }

    /// Remove all variables in `set` (restriction with `true`).
    pub fn without(&self, set: &BTreeSet<TupleRef>) -> Conjunct {
        Conjunct(
            self.0
                .iter()
                .filter(|t| !set.contains(t))
                .copied()
                .collect(),
        )
    }

    /// The underlying set.
    pub fn as_set(&self) -> &BTreeSet<TupleRef> {
        &self.0
    }
}

impl FromIterator<TupleRef> for Conjunct {
    fn from_iter<I: IntoIterator<Item = TupleRef>>(iter: I) -> Self {
        Conjunct::new(iter)
    }
}

/// A positive DNF `c1 ∨ … ∨ cn`. The empty DNF is `false`; a DNF
/// containing the empty conjunct is `true`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    conjuncts: Vec<Conjunct>,
}

impl Dnf {
    /// The constant `false` (no conjuncts).
    pub fn unsatisfiable() -> Self {
        Dnf::default()
    }

    /// Build a DNF from conjuncts (kept as given; call
    /// [`Dnf::minimized`] to remove redundancy).
    pub fn new(conjuncts: Vec<Conjunct>) -> Self {
        Dnf { conjuncts }
    }

    /// The conjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Add one conjunct.
    pub fn push(&mut self, c: Conjunct) {
        self.conjuncts.push(c);
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Whether there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Satisfiability of a positive DNF: at least one conjunct.
    pub fn is_satisfiable(&self) -> bool {
        !self.conjuncts.is_empty()
    }

    /// Whether the DNF is the constant `true` (contains an empty conjunct).
    pub fn is_tautology(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_empty)
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<TupleRef> {
        self.conjuncts.iter().flat_map(|c| c.vars()).collect()
    }

    /// Whether variable `t` occurs anywhere.
    pub fn mentions(&self, t: TupleRef) -> bool {
        self.conjuncts.iter().any(|c| c.contains(t))
    }

    /// Evaluate under a truth assignment.
    pub fn evaluate(&self, truth: impl Fn(TupleRef) -> bool) -> bool {
        self.conjuncts.iter().any(|c| c.vars().all(&truth))
    }

    /// Restriction `Φ[X_t := true, ∀t ∈ set]`: drop those variables from
    /// every conjunct (possibly creating the empty conjunct = `true`).
    pub fn assign_true(&self, set: &BTreeSet<TupleRef>) -> Dnf {
        Dnf {
            conjuncts: self.conjuncts.iter().map(|c| c.without(set)).collect(),
        }
    }

    /// Restriction `Φ[X_t := false, ∀t ∈ set]`: drop every conjunct that
    /// mentions a falsified variable.
    pub fn assign_false(&self, set: &BTreeSet<TupleRef>) -> Dnf {
        Dnf {
            conjuncts: self
                .conjuncts
                .iter()
                .filter(|c| !c.intersects(set))
                .cloned()
                .collect(),
        }
    }

    /// Remove redundant conjuncts: duplicates collapse and any conjunct
    /// strictly containing another conjunct is dropped (Sect. 3). The
    /// result is the unique minimal positive DNF for this monotone
    /// function, sorted for determinism.
    ///
    /// Internally the variables are interned into a
    /// [`LineageArena`](crate::arena::LineageArena) and the absorption
    /// scan runs on packed bitsets, sorted by cardinality with
    /// equal-size probes skipped — an already-minimal lineage of
    /// same-size conjuncts performs no subset tests at all, where the
    /// seed implementation (retained in [`crate::oracle`]) walked n²/2
    /// full tree comparisons. The output is identical to the seed's:
    /// the minimal form of a monotone DNF is unique, and both sort it
    /// the same way.
    pub fn minimized(&self) -> Dnf {
        let (arena, bits) = crate::arena::LineageArena::from_dnf(self);
        arena.dnf_of(&bits.minimized())
    }

    /// Render with a tuple-variable naming function.
    pub fn display_with(&self, name: impl Fn(TupleRef) -> String) -> String {
        if self.conjuncts.is_empty() {
            return "false".to_string();
        }
        self.conjuncts
            .iter()
            .map(|c| {
                if c.is_empty() {
                    "true".to_string()
                } else {
                    c.vars().map(&name).collect::<Vec<_>>().join("·")
                }
            })
            .collect::<Vec<_>>()
            .join(" ∨ ")
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|t| format!("X{:?}", t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: u32, row: u32) -> TupleRef {
        TupleRef::new(rel, row)
    }

    fn c(vars: &[(u32, u32)]) -> Conjunct {
        Conjunct::new(vars.iter().map(|&(r, w)| t(r, w)))
    }

    #[test]
    fn conjunct_subset_relations() {
        let small = c(&[(0, 1), (0, 3)]);
        let big = c(&[(0, 1), (0, 2), (0, 3)]);
        assert!(small.is_subset(&big));
        assert!(small.is_strict_subset(&big));
        assert!(!big.is_strict_subset(&small));
        assert!(small.is_subset(&small));
        assert!(!small.is_strict_subset(&small));
    }

    /// The paper's running example: Φ = X1X3 ∨ X1X2X3 ∨ X1X4 simplifies to
    /// X1X3 ∨ X1X4 (X1X2X3 strictly contains X1X3).
    #[test]
    fn paper_redundancy_example() {
        let phi = Dnf::new(vec![
            c(&[(0, 1), (0, 3)]),
            c(&[(0, 1), (0, 2), (0, 3)]),
            c(&[(0, 1), (0, 4)]),
        ]);
        let min = phi.minimized();
        assert_eq!(min.len(), 2);
        assert!(min.conjuncts().contains(&c(&[(0, 1), (0, 3)])));
        assert!(min.conjuncts().contains(&c(&[(0, 1), (0, 4)])));
        assert!(
            !min.mentions(t(0, 2)),
            "X2 only occurred in the redundant conjunct"
        );
    }

    #[test]
    fn minimization_dedupes_equal_conjuncts() {
        let phi = Dnf::new(vec![c(&[(0, 1)]), c(&[(0, 1)])]);
        assert_eq!(phi.minimized().len(), 1);
    }

    #[test]
    fn satisfiability_is_nonemptiness() {
        assert!(!Dnf::unsatisfiable().is_satisfiable());
        assert!(Dnf::new(vec![c(&[(0, 0)])]).is_satisfiable());
    }

    #[test]
    fn empty_conjunct_is_tautology_and_subsumes_everything() {
        let phi = Dnf::new(vec![Conjunct::empty(), c(&[(0, 1)]), c(&[(0, 2)])]);
        assert!(phi.is_tautology());
        let min = phi.minimized();
        assert_eq!(min.len(), 1);
        assert!(min.conjuncts()[0].is_empty());
        assert!(min.variables().is_empty(), "a tautology has no causes");
    }

    #[test]
    fn assign_true_removes_variables() {
        let phi = Dnf::new(vec![c(&[(0, 1), (1, 0)]), c(&[(0, 2), (1, 0)])]);
        let exo: BTreeSet<TupleRef> = [t(1, 0)].into_iter().collect();
        let restricted = phi.assign_true(&exo);
        assert_eq!(restricted.conjuncts()[0], c(&[(0, 1)]));
        assert_eq!(restricted.conjuncts()[1], c(&[(0, 2)]));
    }

    #[test]
    fn assign_false_drops_conjuncts() {
        let phi = Dnf::new(vec![c(&[(0, 1), (1, 0)]), c(&[(0, 2)])]);
        let gamma: BTreeSet<TupleRef> = [t(1, 0)].into_iter().collect();
        let restricted = phi.assign_false(&gamma);
        assert_eq!(restricted.len(), 1);
        assert_eq!(restricted.conjuncts()[0], c(&[(0, 2)]));
        // Falsifying everything yields the unsatisfiable DNF.
        let all = phi.variables();
        assert!(!phi.assign_false(&all).is_satisfiable());
    }

    #[test]
    fn evaluate_matches_semantics() {
        let phi = Dnf::new(vec![c(&[(0, 1), (0, 2)]), c(&[(0, 3)])]);
        assert!(phi.evaluate(|v| v == t(0, 3)));
        assert!(phi.evaluate(|v| v == t(0, 1) || v == t(0, 2)));
        assert!(!phi.evaluate(|v| v == t(0, 1)));
        assert!(!Dnf::unsatisfiable().evaluate(|_| true));
        assert!(Dnf::new(vec![Conjunct::empty()]).evaluate(|_| false));
    }

    #[test]
    fn minimization_preserves_semantics_on_all_assignments() {
        // 4 variables, a handful of conjuncts; check 2^4 assignments.
        let vars = [t(0, 0), t(0, 1), t(0, 2), t(0, 3)];
        let phi = Dnf::new(vec![
            c(&[(0, 0), (0, 1)]),
            c(&[(0, 0), (0, 1), (0, 2)]),
            c(&[(0, 2), (0, 3)]),
            c(&[(0, 3), (0, 2)]),
        ]);
        let min = phi.minimized();
        for mask in 0u32..16 {
            let truth = |v: TupleRef| {
                let idx = vars.iter().position(|&x| x == v).unwrap();
                mask & (1 << idx) != 0
            };
            assert_eq!(phi.evaluate(truth), min.evaluate(truth), "mask {mask}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dnf::unsatisfiable().to_string(), "false");
        let phi = Dnf::new(vec![Conjunct::empty()]);
        assert_eq!(phi.to_string(), "true");
        let phi = Dnf::new(vec![c(&[(0, 1), (1, 2)])]);
        assert_eq!(phi.display_with(|t| format!("X{}", t.row.0)), "X1·X2");
    }

    #[test]
    fn variables_collects_all() {
        let phi = Dnf::new(vec![c(&[(0, 1)]), c(&[(1, 5), (0, 1)])]);
        let vars = phi.variables();
        assert_eq!(vars.len(), 2);
        assert!(phi.mentions(t(1, 5)));
        assert!(!phi.mentions(t(2, 0)));
    }
}
