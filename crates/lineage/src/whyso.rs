//! Lineage and n-lineage of Boolean queries (Def. 3.1).
//!
//! The lineage of `q` over `D` is `Φ = ∨_θ c_θ` with one conjunct per
//! valuation. The **n-lineage** substitutes `true` for every exogenous
//! tuple's variable: `Φⁿ = Φ[X_t := true, ∀t ∈ Dx]` — the expression then
//! depends only on endogenous tuples, and Theorem 3.2 reads the actual
//! causes straight off its non-redundant conjuncts.

use crate::dnf::{Conjunct, Dnf};
use causality_engine::{
    evaluate_masked, evaluate_masked_with_cache, Database, EndoMask, EngineError, SharedIndexCache,
};
use causality_engine::{ConjunctiveQuery, TupleRef};
use std::collections::BTreeSet;

/// Compute the full lineage `Φ` of a Boolean query over `D` (exogenous and
/// endogenous variables both appear).
///
/// # Errors
/// Propagates evaluation errors; rejects non-Boolean queries.
pub fn lineage(db: &Database, q: &ConjunctiveQuery) -> Result<Dnf, EngineError> {
    lineage_cached(db, q, None)
}

/// [`lineage`] with an optional [`SharedIndexCache`], so successive
/// lineage computations reuse their join indexes. Cache entries are keyed
/// on per-relation content stamps, so sharing one cache across snapshots
/// (or any databases) is sound: only relations that were actually touched
/// since the index was built miss.
pub fn lineage_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<Dnf, EngineError> {
    require_boolean(q)?;
    let result = match cache {
        Some(c) => evaluate_masked_with_cache(db, q, EndoMask::All, c)?,
        None => evaluate_masked(db, q, EndoMask::All)?,
    };
    let mut dnf = Dnf::unsatisfiable();
    for v in &result.valuations {
        dnf.push(Conjunct::new(v.atom_tuples.iter().copied()));
    }
    Ok(dnf)
}

/// Compute the n-lineage `Φⁿ` (Def. 3.1): the lineage with every exogenous
/// variable set to `true`. **Not** minimized; apply [`Dnf::minimized`] to
/// obtain the cause-revealing form of Theorem 3.2.
pub fn n_lineage(db: &Database, q: &ConjunctiveQuery) -> Result<Dnf, EngineError> {
    n_lineage_cached(db, q, None)
}

/// [`n_lineage`] with an optional [`SharedIndexCache`].
pub fn n_lineage_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<Dnf, EngineError> {
    let phi = lineage_cached(db, q, cache)?;
    let exo: BTreeSet<TupleRef> = phi
        .variables()
        .into_iter()
        .filter(|&t| !db.is_endogenous(t))
        .collect();
    Ok(phi.assign_true(&exo))
}

pub(crate) fn require_boolean(q: &ConjunctiveQuery) -> Result<(), EngineError> {
    if q.is_boolean() {
        Ok(())
    } else {
        Err(EngineError::NotBoolean(q.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn tref(db: &Database, rel: &str, tuple: causality_engine::Tuple) -> TupleRef {
        let rid = db.relation_id(rel).unwrap();
        TupleRef {
            rel: rid,
            row: db.relation(rid).find(&tuple).unwrap(),
        }
    }

    /// Example 3.3: q :- R(x,y), S(y), y = 'a3' has lineage
    /// X_R(a3,a3)·X_S(a3) ∨ X_R(a4,a3)·X_S(a3).
    #[test]
    fn example_3_3_lineage() {
        let db = example_2_2();
        let query = q("q :- R(x, 'a3'), S('a3')");
        let phi = lineage(&db, &query).unwrap();
        assert_eq!(phi.len(), 2);
        let r33 = tref(&db, "R", tup!["a3", "a3"]);
        let r43 = tref(&db, "R", tup!["a4", "a3"]);
        let s3 = tref(&db, "S", tup!["a3"]);
        let expected: Vec<Conjunct> = vec![Conjunct::new([r33, s3]), Conjunct::new([r43, s3])];
        for c in expected {
            assert!(phi.conjuncts().contains(&c), "missing conjunct {c:?}");
        }
    }

    /// Example 3.3 continued: with R(a4,a3) exogenous, the n-lineage is
    /// X_R(a3,a3)·X_S(a3) ∨ X_S(a3), which minimizes to X_S(a3).
    #[test]
    fn example_3_3_n_lineage() {
        let mut db = example_2_2();
        let r = db.relation_id("R").unwrap();
        let row = db.relation(r).find(&tup!["a4", "a3"]).unwrap();
        db.relation_mut(r).set_endogenous(row, false);

        let query = q("q :- R(x, 'a3'), S('a3')");
        let phin = n_lineage(&db, &query).unwrap();
        assert_eq!(phin.len(), 2);
        let min = phin.minimized();
        assert_eq!(min.len(), 1);
        let s3 = tref(&db, "S", tup!["a3"]);
        assert_eq!(min.conjuncts()[0], Conjunct::new([s3]));
    }

    #[test]
    fn false_query_has_unsatisfiable_lineage() {
        let db = example_2_2();
        let query = q("q :- R(x, 'a6'), S('a6')");
        let phi = lineage(&db, &query).unwrap();
        assert!(!phi.is_satisfiable());
    }

    #[test]
    fn non_boolean_query_rejected() {
        let db = example_2_2();
        let err = lineage(&db, &q("q(x) :- R(x, y), S(y)")).unwrap_err();
        assert!(matches!(err, EngineError::NotBoolean(_)));
    }

    #[test]
    fn all_exogenous_lineage_is_tautological() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        let phin = n_lineage(&db, &q("q :- R(x)")).unwrap();
        assert!(phin.is_tautology(), "query already true on Dx");
        assert!(phin.minimized().variables().is_empty(), "no causes");
    }

    #[test]
    fn lineage_of_grounded_answer() {
        // Ground q(x) :- R(x,y),S(y) with answer a4: two valuations
        // (via S(a3) and S(a2)).
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let phi = lineage(&db, &query).unwrap();
        assert_eq!(phi.len(), 2);
        let min = phi.minimized();
        assert_eq!(min.len(), 2, "no redundancy among the two witnesses");
    }

    #[test]
    fn self_join_lineage_uses_distinct_tuples() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(r, tup![2, 3]);
        let phi = lineage(&db, &q("q :- R(x, y), R(y, z)")).unwrap();
        assert_eq!(phi.len(), 1);
        assert_eq!(phi.conjuncts()[0].len(), 2);
    }

    #[test]
    fn repeated_tuple_in_valuation_collapses_in_conjunct() {
        // q :- R(x,y), R(y,x) over R = {(1,1)}: the single tuple grounds
        // both atoms; the conjunct has one variable.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 1]);
        let phi = lineage(&db, &q("q :- R(x, y), R(y, x)")).unwrap();
        assert_eq!(phi.len(), 1);
        assert_eq!(phi.conjuncts()[0].len(), 1);
    }
}
