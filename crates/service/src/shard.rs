//! One serving **shard**: the self-contained execution cell of the tier.
//!
//! A shard owns everything a slice of the traffic needs — its own
//! snapshot stores (one per tenant mapped to it), its own worker pool,
//! its own [`SharedIndexCache`], its own responsibility LRU, and its own
//! `StatsCounters` — so writes to one
//! tenant's relations can never evict another shard's warm caches or
//! queue behind another shard's traffic. The layers above are thin:
//!
//! * [`CausalityService`](crate::CausalityService) wraps exactly one
//!   shard with one tenant (the PR 2 API, unchanged);
//! * [`ShardedService`](crate::ShardedService) routes tenants onto N
//!   shards via the [`dispatch`](crate::dispatch) layer and applies
//!   admission control and deadline budgets at the front end.
//!
//! Within a shard, multiple tenants can coexist soundly because both
//! cache layers are keyed on per-relation `(RelId, RelVersion)` content
//! stamps and `RelVersion` stamps are **process-wide unique** (PR 3):
//! two tenants' relations can never alias a cache entry.

use crate::breaker::{BreakerConfig, BreakerRegistry};
use crate::chaos::FaultAction;
use crate::clock::SystemClock;
use crate::lru::LruCache;
use crate::request::{ExplainRequest, ServiceError};
use crate::stats::StatsCounters;
use crate::supervisor::HealthCell;
use crate::worker::{worker_loop, Job, Msg};
use causality_core::explain::Explanation;
use causality_engine::{Database, RelId, RelVersion, SharedIndexCache, Snapshot, SnapshotStore};
use causality_telemetry::{MetricsRegistry, Telemetry, TelemetryConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Lock a mutex, recovering from poisoning. Workers convert panics into
/// error responses ([`ServiceError::Panicked`]) before they can unwind
/// through a held lock, so poisoning is already unreachable from the
/// serving path — but if a lock is ever poisoned anyway (e.g. by a
/// panicking test hook or a future code path), serving degrades to
/// using the last-written state instead of cascading the panic into
/// every worker that touches the mutex afterwards. All state behind
/// these locks is valid at every step (caches and registries are
/// updated by single self-contained calls), so recovery is safe.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A chaos-testing predicate marking requests that must panic mid-flight.
pub(crate) type FaultHook = Box<dyn Fn(&ExplainRequest) -> bool + Send + Sync>;

/// A chaos/load-testing hook stalling matched requests for the returned
/// duration before they compute (simulates slow computations without
/// burning CPU).
pub(crate) type DelayHook = Box<dyn Fn(&ExplainRequest) -> Option<Duration> + Send + Sync>;

/// The PR 9 plan hook: maps a shard-local request ordinal (the position
/// of the computation in this shard's processing order) to the combined
/// fault action a seeded [`FaultPlan`](crate::FaultPlan) schedules for
/// it. One hook sees one ordinal exactly once, so separate fault kinds
/// scheduled for the same request cannot drift apart the way two
/// independently counting hooks would.
pub(crate) type PlanHook = Box<dyn Fn(u64) -> FaultAction + Send + Sync>;

/// Identifies one tenant's snapshot store within a shard.
pub(crate) type TenantKey = u64;

/// The relation-content fingerprint a cached explanation depends on: the
/// (id, version) stamps of exactly the relations the request's query
/// mentions, sorted and deduplicated. Writes to other relations leave the
/// fingerprint — and therefore the cache entry — intact.
pub(crate) type RelFingerprint = Vec<(RelId, RelVersion)>;

/// Tuning knobs of one shard (and of the single-shard
/// [`CausalityService`](crate::CausalityService)).
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bound of the request queue; `submit` applies backpressure beyond it.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains into one batch.
    pub batch_max: usize,
    /// Entries held by the responsibility LRU cache.
    pub cache_capacity: usize,
    /// How many recent snapshot versions (per tenant) keep their
    /// relations' join indexes alive in the shared index cache; relation
    /// versions reachable from none of them are evicted.
    pub cached_versions: usize,
    /// Threads each fresh [`ExplainKind::RankTopK`](crate::ExplainKind::RankTopK)
    /// computation fans its per-cause responsibility runs over (min 1;
    /// 1 = rank on the worker thread). Total ranking threads can reach
    /// `workers × rank_parallelism`, so size the two together against
    /// the machine.
    pub rank_parallelism: usize,
    /// Request tracing and slow-log configuration (sampling rate, ring
    /// capacities, slow thresholds). Sampling defaults to 1.0 — every
    /// request traced; set `sample_rate: 0.0` to disable tracing
    /// entirely (no per-request allocation).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 128,
            batch_max: 16,
            cache_capacity: 1024,
            cached_versions: 4,
            rank_parallelism: 1,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Clamp every knob to its minimum viable value.
    pub(crate) fn sanitized(self) -> Self {
        ServiceConfig {
            workers: self.workers.max(1),
            queue_capacity: self.queue_capacity.max(1),
            batch_max: self.batch_max.max(1),
            cached_versions: self.cached_versions.max(1),
            rank_parallelism: self.rank_parallelism.max(1),
            telemetry: self.telemetry.sanitized(),
            ..self
        }
    }
}

/// State shared between a shard's handle and its workers.
pub(crate) struct ShardCore {
    pub(crate) cfg: ServiceConfig,
    /// Queue-depth limit enforced by [`Shard::submit_admitted`];
    /// `usize::MAX` disables admission control (the single-shard
    /// [`CausalityService`](crate::CausalityService) compatibility mode).
    pub(crate) admission_limit: usize,
    /// Snapshot stores of the tenants routed to this shard.
    pub(crate) tenants: RwLock<HashMap<TenantKey, Arc<SnapshotStore>>>,
    pub(crate) stats: StatsCounters,
    /// The shard's metric registry: every [`StatsCounters`] entry and the
    /// telemetry bookkeeping counters live here, named, for export.
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Request tracing hub: sampler, trace ring, and slow-log.
    pub(crate) telemetry: Telemetry,
    /// Memoized explanations: (query's relation fingerprint, request) →
    /// explanation. Keyed on relation content, not snapshot version, so
    /// entries survive writes to unrelated relations — including every
    /// write belonging to a *different* tenant.
    pub(crate) resp_cache: Mutex<LruCache<(RelFingerprint, ExplainRequest), Explanation>>,
    /// The one join-index cache serving every snapshot version of every
    /// tenant on this shard — sound because its entries are keyed on
    /// process-wide-unique per-relation content stamps.
    pub(crate) index_cache: Arc<SharedIndexCache>,
    /// Per-tenant relation fingerprints of recently served snapshot
    /// versions, newest last; the union of their stamps is the index
    /// cache's live set, everything else gets evicted.
    pub(crate) live_snapshots: Mutex<HashMap<TenantKey, Vec<(u64, RelFingerprint)>>>,
    /// Chaos-testing hook: requests matching the predicate panic inside
    /// the worker (see [`CausalityService::inject_fault`](crate::CausalityService::inject_fault)).
    pub(crate) fault: Mutex<Option<FaultHook>>,
    /// Chaos/load-testing hook: requests matched by the predicate sleep
    /// for the returned duration before computing.
    pub(crate) delay: Mutex<Option<DelayHook>>,
    /// Seeded chaos-plan hook (PR 9): consulted once per computation
    /// with the shard-local ordinal; supersedes `fault`/`delay` for
    /// schedule-driven soaks because one lookup yields the *combined*
    /// action for the request.
    pub(crate) plan: Mutex<Option<PlanHook>>,
    /// Shard-local computation ordinal feeding the plan hook.
    pub(crate) ordinal: AtomicU64,
    /// True while any of `fault`/`delay`/`plan` is installed. Workers
    /// check this one atomic before touching the hook mutexes, so
    /// chaos-free serving never pays for the injection points.
    pub(crate) chaos_armed: AtomicBool,
    /// Current run of panicking computations without an intervening
    /// completion; the supervisor quarantines past a threshold.
    pub(crate) consecutive_panics: AtomicU64,
    /// Live health classification, written by the supervisor and read by
    /// routing (fallback selection avoids unhealthy shards).
    pub(crate) health: HealthCell,
    /// Worker-pool generation: bumped by [`Shard::restart_pool`]; a
    /// worker retires after its current batch once its spawn generation
    /// is stale.
    pub(crate) generation: AtomicU64,
    /// The tier's per-tenant circuit breakers. Shared across every shard
    /// of a [`ShardedService`](crate::ShardedService) (a tenant's
    /// failures are a property of the tenant, not of the shard its
    /// retries land on); the single-shard
    /// [`CausalityService`](crate::CausalityService) carries a disabled
    /// registry, keeping PR 2 semantics.
    pub(crate) breakers: Arc<BreakerRegistry>,
}

impl ShardCore {
    /// The tenant's snapshot store, if this shard hosts it.
    pub(crate) fn store(&self, tenant: TenantKey) -> Option<Arc<SnapshotStore>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&tenant)
            .cloned()
    }

    /// Highest published snapshot version across this shard's tenants.
    pub(crate) fn max_version(&self) -> u64 {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|store| store.version())
            .max()
            .unwrap_or(0)
    }

    /// Register `snapshot` of `tenant` as served and return the shared
    /// index cache.
    ///
    /// The first time a (tenant, version) pair is seen, its
    /// relation-version fingerprint joins that tenant's retained window
    /// ([`ServiceConfig::cached_versions`] entries); index entries for
    /// relation versions no longer reachable from any tenant's window
    /// are evicted and counted.
    pub(crate) fn index_cache_for(
        &self,
        tenant: TenantKey,
        snapshot: &Snapshot,
    ) -> Arc<SharedIndexCache> {
        let version = snapshot.version();
        let mut live = lock_unpoisoned(&self.live_snapshots);
        let window = live.entry(tenant).or_default();
        let mut window_changed = false;
        if !window.iter().any(|(v, _)| *v == version) {
            window.push((version, snapshot.relation_versions()));
            window.sort_by_key(|(v, _)| *v);
            if window.len() > self.cfg.cached_versions {
                let excess = window.len() - self.cfg.cached_versions;
                window.drain(0..excess);
            }
            window_changed = true;
        }
        // Sweep when a window moved — plus on a periodic cadence: a
        // worker still evaluating an already-dropped older snapshot may
        // re-insert stamps from outside the window *after* the sweep that
        // dropped them, and without the cadence those would linger until
        // the next version arrives (forever, if the write stream stops).
        // The cadence keeps the steady read-only path free of the index
        // cache's write lock.
        let periodic = self.stats.batches.get().is_multiple_of(64);
        if window_changed || periodic {
            let mut retained: RelFingerprint = live
                .values()
                .flat_map(|w| w.iter())
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            retained.sort();
            retained.dedup();
            let evicted = self.index_cache.retain_versions(&retained);
            self.stats.index_evictions.add(evicted as u64);
        }
        Arc::clone(&self.index_cache)
    }

    /// Finalize the trace of a job that never made it into the queue
    /// (admission reject, full queue, or disconnected shard), so rejected
    /// requests show up in the trace ring and slow-log too.
    pub(crate) fn finalize_unqueued(&self, job: Job, outcome: &'static str) {
        if let Some(mut tb) = job.trace {
            tb.set_outcome(outcome);
            self.telemetry.record(tb.finish());
        }
    }

    /// How long a rejected caller should wait before retrying: the time
    /// this shard needs to drain its current queue, estimated from the
    /// observed mean response latency (which already folds in queue
    /// wait) divided across the worker pool. Clamped to `[1ms, 2s]` so
    /// a cold histogram or a pathological backlog still yields a usable
    /// hint.
    pub(crate) fn retry_after_hint(&self) -> Duration {
        let depth = self.stats.queue_depth.get().max(1);
        let samples: u64 = self.stats.latency.counts(false).iter().sum();
        let mean_us = self
            .stats
            .latency
            .sum_us(false)
            .checked_div(samples)
            .map_or(1_000, |mean| mean.max(1));
        let drain_us = depth
            .saturating_mul(mean_us)
            .checked_div(self.cfg.workers as u64)
            .unwrap_or(mean_us);
        Duration::from_micros(drain_us.clamp(1_000, 2_000_000))
    }
}

/// The relation fingerprint a request's answer depends on, or `None` if
/// the query names a relation the snapshot does not have (the computation
/// will surface the error; it just cannot be cached).
pub(crate) fn resp_fingerprint(
    snapshot: &Snapshot,
    request: &ExplainRequest,
) -> Option<RelFingerprint> {
    let mut rels: RelFingerprint = Vec::with_capacity(request.query.atoms().len());
    for atom in request.query.atoms() {
        let id = snapshot.relation_id(&atom.relation)?;
        rels.push((id, snapshot.relation_version(id)));
    }
    rels.sort();
    rels.dedup();
    Some(rels)
}

/// Reject malformed requests at submit time: grounding must succeed, so a
/// worker can never hit an answer/head mismatch mid-computation.
pub(crate) fn validate(request: &ExplainRequest) -> Result<(), ServiceError> {
    request
        .query
        .try_ground(&request.answer)
        .map(|_| ())
        .map_err(|e| ServiceError::InvalidRequest(e.to_string()))
}

/// One running shard: the shared core, the job queue, and the worker
/// pool draining it.
///
/// Since PR 9 the pool is *restartable*: [`Shard::restart_pool`] spawns
/// a fresh generation of workers onto the **same** channel and retires
/// the old generation lazily. Keeping the channel fixed is what makes a
/// restart loss-free by construction — no job ever has to migrate
/// between queues, so there is no window in which a submission can land
/// in a queue nobody will drain. A wedged worker never blocks the
/// restart either: workers release the queue mutex before computing, so
/// fresh workers start draining immediately while the wedged one
/// finishes (and still delivers) its in-flight response, then notices
/// its stale generation and exits.
pub(crate) struct Shard {
    pub(crate) core: Arc<ShardCore>,
    /// `None` once the shard is shut down. Dropping the sender is the
    /// shutdown signal: workers drain every buffered job, then exit on
    /// disconnect.
    tx: RwLock<Option<SyncSender<Msg>>>,
    rx: Arc<Mutex<Receiver<Msg>>>,
    name: String,
    /// Every worker thread ever spawned (all generations); joined at
    /// shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shard {
    /// Spawn a shard with `cfg.workers` threads. `admission_limit` is
    /// the queue-depth bound enforced by [`Shard::submit_admitted`]
    /// (`usize::MAX` = no admission control). `name` labels the worker
    /// threads. `breakers` shares the tier's circuit breakers with the
    /// workers (outcome recording); `None` installs a disabled registry
    /// (single-shard compatibility mode).
    pub(crate) fn spawn(
        cfg: ServiceConfig,
        admission_limit: usize,
        name: &str,
        breakers: Option<Arc<BreakerRegistry>>,
    ) -> Self {
        let cfg = cfg.sanitized();
        let registry = Arc::new(MetricsRegistry::new());
        let breakers = breakers.unwrap_or_else(|| {
            Arc::new(BreakerRegistry::new(
                BreakerConfig::disabled(),
                Arc::new(SystemClock),
                &registry,
            ))
        });
        let core = Arc::new(ShardCore {
            cfg,
            admission_limit,
            tenants: RwLock::new(HashMap::new()),
            stats: StatsCounters::new(&registry),
            telemetry: Telemetry::new(cfg.telemetry, &registry),
            registry,
            resp_cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            index_cache: Arc::new(SharedIndexCache::new()),
            live_snapshots: Mutex::new(HashMap::new()),
            fault: Mutex::new(None),
            delay: Mutex::new(None),
            plan: Mutex::new(None),
            ordinal: AtomicU64::new(0),
            chaos_armed: AtomicBool::new(false),
            consecutive_panics: AtomicU64::new(0),
            health: HealthCell::new(),
            generation: AtomicU64::new(0),
            breakers,
        });
        let (tx, rx) = sync_channel::<Msg>(cfg.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let shard = Shard {
            core,
            tx: RwLock::new(Some(tx)),
            rx,
            name: name.to_owned(),
            handles: Mutex::new(Vec::new()),
        };
        shard.spawn_workers(0);
        shard
    }

    /// Spawn `cfg.workers` threads of `generation` onto the shared
    /// channel.
    fn spawn_workers(&self, generation: u64) {
        let mut handles = lock_unpoisoned(&self.handles);
        for i in 0..self.core.cfg.workers {
            let rx = Arc::clone(&self.rx);
            let core = Arc::clone(&self.core);
            let handle = std::thread::Builder::new()
                .name(format!("{}-g{generation}-worker-{i}", self.name))
                .spawn(move || worker_loop(&rx, &core, generation))
                .expect("spawn worker thread");
            handles.push(handle);
        }
    }

    /// Replace the worker pool with a fresh generation (PR 9 recovery
    /// path, driven by the supervisor on a quarantined shard).
    ///
    /// The queue, its contents, and all counters are untouched: new
    /// workers drain the very jobs the old pool was wedged on. Old
    /// workers retire after at most one more batch; ones stuck in a
    /// computation keep running until it completes, still deliver that
    /// response, and then exit — so a restart can never lose or
    /// double-serve a request.
    pub(crate) fn restart_pool(&self) {
        if self.sender().is_none() {
            return; // shut down; nothing to restart
        }
        let generation = self.core.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.core.stats.shard_restarts.inc();
        self.core.consecutive_panics.store(0, Ordering::Relaxed);
        self.spawn_workers(generation);
    }

    /// Install (or replace) a tenant's snapshot store.
    pub(crate) fn add_tenant(&self, tenant: TenantKey, db: Database) -> Arc<SnapshotStore> {
        let store = Arc::new(SnapshotStore::new(db));
        self.install_store(tenant, Arc::clone(&store));
        store
    }

    /// Install an existing snapshot store under `tenant` — the retry
    /// fallback path (PR 9) uses this to make a tenant servable on a
    /// sibling shard. Sound across shards because both cache layers key
    /// on process-wide-unique relation content stamps.
    pub(crate) fn install_store(&self, tenant: TenantKey, store: Arc<SnapshotStore>) {
        self.core
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tenant, store);
    }

    /// A clone of the queue's sender, or `None` after shutdown.
    fn sender(&self) -> Option<SyncSender<Msg>> {
        self.tx
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Enqueue blocking while the queue is full (backpressure; the PR 2
    /// `submit` semantics). No admission control.
    pub(crate) fn submit_blocking(&self, job: Job) -> Result<(), ServiceError> {
        let Some(tx) = self.sender() else {
            self.core
                .finalize_unqueued(job, ServiceError::Disconnected.outcome_label());
            return Err(ServiceError::Disconnected);
        };
        self.core.stats.queue_depth.inc();
        match tx.send(Msg::Job(Box::new(job))) {
            Ok(()) => {
                self.core.stats.requests.inc();
                Ok(())
            }
            Err(returned) => {
                self.core.stats.queue_depth.dec(1);
                let Msg::Job(job) = returned.0;
                self.core
                    .finalize_unqueued(*job, ServiceError::Disconnected.outcome_label());
                Err(ServiceError::Disconnected)
            }
        }
    }

    /// Enqueue without blocking. On failure the channel hands the job
    /// back, so its trace is finalized with the error's outcome label.
    /// `remap_full` turns a full queue into the admission-control
    /// rejection ([`ServiceError::Overloaded`], counted).
    fn try_enqueue(&self, job: Job, remap_full: bool) -> Result<(), ServiceError> {
        let Some(tx) = self.sender() else {
            self.core
                .finalize_unqueued(job, ServiceError::Disconnected.outcome_label());
            return Err(ServiceError::Disconnected);
        };
        self.core.stats.queue_depth.inc();
        match tx.try_send(Msg::Job(Box::new(job))) {
            Ok(()) => {
                self.core.stats.requests.inc();
                Ok(())
            }
            Err(e) => {
                self.core.stats.queue_depth.dec(1);
                let (err, returned) = match e {
                    TrySendError::Full(msg) => {
                        // With admission on, the channel filling between
                        // the depth check and the send is still "past the
                        // queue-depth limit" to a caller.
                        let err = if remap_full {
                            self.core.stats.admission_rejects.inc();
                            ServiceError::Overloaded {
                                retry_after: self.core.retry_after_hint(),
                            }
                        } else {
                            ServiceError::QueueFull
                        };
                        (err, msg)
                    }
                    TrySendError::Disconnected(msg) => (ServiceError::Disconnected, msg),
                };
                let Msg::Job(job) = returned;
                self.core.finalize_unqueued(*job, err.outcome_label());
                Err(err)
            }
        }
    }

    /// Enqueue without blocking; [`ServiceError::QueueFull`] when the
    /// bounded queue has no room. No admission control.
    pub(crate) fn try_submit(&self, job: Job) -> Result<(), ServiceError> {
        self.try_enqueue(job, false)
    }

    /// Front-end enqueue with **bounded admission**: when the shard's
    /// queue depth has reached `admission_limit`, the request is
    /// rejected with [`ServiceError::Overloaded`] — returned to the
    /// caller, never dropped, and since PR 9 carrying a retry-after
    /// hint — and counted in
    /// [`ServiceStats::admission_rejects`](crate::ServiceStats::admission_rejects).
    pub(crate) fn submit_admitted(&self, job: Job) -> Result<(), ServiceError> {
        let depth = self.core.stats.queue_depth.get();
        if depth as usize >= self.core.admission_limit {
            self.core.stats.admission_rejects.inc();
            let err = ServiceError::Overloaded {
                retry_after: self.core.retry_after_hint(),
            };
            self.core.finalize_unqueued(job, err.outcome_label());
            return Err(err);
        }
        self.try_enqueue(job, true)
    }

    /// Stop accepting work, drain the queue, and join every worker
    /// generation. Idempotent, and callable through a shared reference
    /// (the supervisor holds the shards behind an `Arc`).
    ///
    /// Dropping the sender is the signal: workers finish the buffered
    /// jobs (mpsc delivers everything already queued before reporting
    /// disconnect), then exit.
    pub(crate) fn shutdown(&self) {
        drop(
            self.tx
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = lock_unpoisoned(&self.handles);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}
