//! Per-tenant circuit breakers (PR 9).
//!
//! A tenant whose requests keep failing — panicking payloads, queries
//! that always hit a poisoned relation — burns worker time to produce
//! errors, starving well-behaved tenants on the same shard. The breaker
//! sheds that traffic at admission, before it reaches a queue:
//!
//! ```text
//!            failure_threshold consecutive failures
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │ open_for elapses
//!     │ half_open_probes consecutive successes        ▼
//!     └─────────────────────────────────────────── HalfOpen
//!                (any probe failure reopens)
//! ```
//!
//! Time is injected through the [`Clock`] trait so every transition is
//! testable without sleeping, and a backwards clock skew merely delays
//! the open → half-open edge instead of corrupting the state machine.

use crate::clock::Clock;
use causality_telemetry::metrics::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs of the per-tenant breakers.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open. `0`
    /// disables breakers entirely (every request is admitted).
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting probes.
    pub open_for: Duration,
    /// Consecutive half-open successes required to close again. Any
    /// failure during probing reopens for another `open_for`.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            open_for: Duration::from_millis(250),
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// A config with breakers switched off.
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            ..BreakerConfig::default()
        }
    }
}

/// Observable state of one tenant's breaker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Traffic is shed until the open window elapses.
    Open,
    /// A limited number of probe requests are admitted.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
enum Inner {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { successes: u32 },
}

/// Outcome of a breaker admission check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admit {
    /// The request may proceed.
    Yes,
    /// The breaker is open; retry after the carried duration.
    No(Duration),
}

/// Number of independent lock stripes the tenant → breaker map is
/// spread over. The registry sits on the per-request hot path twice
/// (admission in the front end, outcome recording in the workers); with
/// one global mutex every request of every tenant serializes on the
/// same lock. Striping by tenant key keeps contention to tenants that
/// actually collide.
const STRIPES: usize = 16;

/// All tenants' breakers, shared between the front end (admission) and
/// the workers (outcome recording).
pub struct BreakerRegistry {
    cfg: BreakerConfig,
    clock: Arc<dyn Clock>,
    stripes: [Mutex<HashMap<u64, Inner>>; STRIPES],
    /// Closed → open transitions.
    trips: Arc<Counter>,
    /// Requests shed because a breaker was open.
    rejects: Arc<Counter>,
}

impl std::fmt::Debug for BreakerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BreakerRegistry")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl BreakerRegistry {
    /// A registry publishing its trip/reject counters into `registry`.
    pub fn new(cfg: BreakerConfig, clock: Arc<dyn Clock>, registry: &MetricsRegistry) -> Self {
        BreakerRegistry {
            cfg,
            clock,
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            trips: registry.counter("breaker_trips_total"),
            rejects: registry.counter("breaker_rejects_total"),
        }
    }

    fn lock(&self, tenant: u64) -> std::sync::MutexGuard<'_, HashMap<u64, Inner>> {
        // Fibonacci-hash the key so sequential tenant keys spread across
        // the stripes instead of clustering in one.
        let stripe = (tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % STRIPES;
        self.stripes[stripe]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Should a request from `tenant` be admitted right now?
    ///
    /// Open breakers whose window elapsed transition to half-open here
    /// (admission is the only edge that needs the wall clock), and the
    /// first `half_open_probes` requests of a half-open breaker are
    /// admitted as probes.
    pub fn admit(&self, tenant: u64) -> Admit {
        if self.cfg.failure_threshold == 0 {
            return Admit::Yes;
        }
        let mut states = self.lock(tenant);
        let state = states
            .entry(tenant)
            .or_insert(Inner::Closed { failures: 0 });
        match *state {
            // The common (closed) path never reads the clock.
            Inner::Closed { .. } | Inner::HalfOpen { .. } => Admit::Yes,
            Inner::Open { until } => {
                let now = self.clock.now();
                if now >= until {
                    *state = Inner::HalfOpen { successes: 0 };
                    Admit::Yes
                } else {
                    self.rejects.inc();
                    Admit::No(until - now)
                }
            }
        }
    }

    /// Record the outcome of an admitted request from `tenant`.
    ///
    /// Workers call this when they resolve a response: `success` is
    /// false only for failures that indict the tenant's traffic
    /// (panicked or core-failed computations), not for load shedding.
    pub fn record(&self, tenant: u64, success: bool) {
        if self.cfg.failure_threshold == 0 {
            return;
        }
        let mut states = self.lock(tenant);
        let state = states
            .entry(tenant)
            .or_insert(Inner::Closed { failures: 0 });
        *state = match (*state, success) {
            (Inner::Closed { .. }, true) => Inner::Closed { failures: 0 },
            (Inner::Closed { failures }, false) => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold {
                    self.trips.inc();
                    Inner::Open {
                        until: self.clock.now() + self.cfg.open_for,
                    }
                } else {
                    Inner::Closed { failures }
                }
            }
            (Inner::HalfOpen { successes }, true) => {
                let successes = successes + 1;
                if successes >= self.cfg.half_open_probes {
                    Inner::Closed { failures: 0 }
                } else {
                    Inner::HalfOpen { successes }
                }
            }
            (Inner::HalfOpen { .. }, false) => {
                self.trips.inc();
                Inner::Open {
                    until: self.clock.now() + self.cfg.open_for,
                }
            }
            // A late outcome for a request admitted before the breaker
            // opened; the open window already accounts for the failure
            // burst, so keep the window rather than extending it.
            (open @ Inner::Open { .. }, _) => open,
        };
    }

    /// The observable state of `tenant`'s breaker (elapsed open windows
    /// report as [`BreakerState::HalfOpen`], matching what `admit`
    /// would do).
    pub fn state_of(&self, tenant: u64) -> BreakerState {
        match self.lock(tenant).get(&tenant) {
            None | Some(Inner::Closed { .. }) => BreakerState::Closed,
            Some(Inner::Open { until }) => {
                if self.clock.now() >= *until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            Some(Inner::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// Total closed/half-open → open transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    /// Total requests shed by open breakers so far.
    pub fn rejects(&self) -> u64 {
        self.rejects.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn registry(cfg: BreakerConfig) -> (Arc<ManualClock>, BreakerRegistry, MetricsRegistry) {
        let clock = Arc::new(ManualClock::new());
        let metrics = MetricsRegistry::new();
        let breakers = BreakerRegistry::new(cfg, clock.clone(), &metrics);
        (clock, breakers, metrics)
    }

    fn cfg3() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(100),
            half_open_probes: 2,
        }
    }

    #[test]
    fn closed_admits_and_successes_reset_failures() {
        let (_clock, b, _m) = registry(cfg3());
        assert_eq!(b.admit(1), Admit::Yes);
        b.record(1, false);
        b.record(1, false);
        b.record(1, true); // resets the streak
        b.record(1, false);
        b.record(1, false);
        assert_eq!(b.state_of(1), BreakerState::Closed);
        assert_eq!(b.admit(1), Admit::Yes);
    }

    #[test]
    fn threshold_consecutive_failures_trip_open() {
        let (_clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        assert_eq!(b.state_of(1), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        match b.admit(1) {
            Admit::No(after) => assert!(after <= Duration::from_millis(100)),
            Admit::Yes => panic!("open breaker admitted"),
        }
        assert_eq!(b.rejects(), 1);
    }

    #[test]
    fn open_window_elapses_into_half_open_then_closes() {
        let (clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        clock.advance(Duration::from_millis(100));
        assert_eq!(b.state_of(1), BreakerState::HalfOpen);
        assert_eq!(b.admit(1), Admit::Yes);
        b.record(1, true);
        assert_eq!(
            b.state_of(1),
            BreakerState::HalfOpen,
            "one probe is not enough"
        );
        b.record(1, true);
        assert_eq!(b.state_of(1), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let (clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        clock.advance(Duration::from_millis(100));
        assert_eq!(b.admit(1), Admit::Yes);
        b.record(1, false);
        assert_eq!(b.state_of(1), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn late_outcomes_do_not_extend_the_open_window() {
        let (clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        clock.advance(Duration::from_millis(60));
        b.record(1, false); // straggler from before the trip
        clock.advance(Duration::from_millis(40));
        assert_eq!(b.state_of(1), BreakerState::HalfOpen);
    }

    #[test]
    fn tenants_are_independent() {
        let (_clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        assert_eq!(b.state_of(1), BreakerState::Open);
        assert_eq!(b.state_of(2), BreakerState::Closed);
        assert_eq!(b.admit(2), Admit::Yes);
    }

    #[test]
    fn zero_threshold_disables_breakers() {
        let (_clock, b, _m) = registry(BreakerConfig::disabled());
        for _ in 0..100 {
            b.record(1, false);
        }
        assert_eq!(b.admit(1), Admit::Yes);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn backwards_clock_skew_delays_but_does_not_corrupt() {
        let (clock, b, _m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        clock.rewind(Duration::from_millis(50));
        // Still open — the window end is fixed; skew merely lengthens it.
        assert!(matches!(b.admit(1), Admit::No(_)));
        clock.advance(Duration::from_millis(150));
        assert_eq!(b.admit(1), Admit::Yes);
    }

    #[test]
    fn counters_surface_in_metrics_registry() {
        let (_clock, b, m) = registry(cfg3());
        for _ in 0..3 {
            b.record(1, false);
        }
        let _ = b.admit(1);
        let samples = m.samples();
        let trip = samples
            .iter()
            .find(|s| s.name == "breaker_trips_total")
            .expect("trip counter registered");
        assert_eq!(trip.value, 1);
    }
}
