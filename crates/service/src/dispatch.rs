//! The dispatch layer: stable tenant → shard routing.
//!
//! Routing must be a pure function of the tenant's *identity*, never of
//! its data: the shard holds the tenant's snapshot store, index cache
//! entries, and responsibility LRU, so a route that moved under writes
//! would orphan every warm cache line. The dispatcher therefore hashes
//! the tenant **name** (FNV-1a) onto a shard once, at registration, and
//! the assignment never changes — requests for untouched relations keep
//! hitting their warm shard no matter how much write traffic other
//! tenants generate. Within the shard, cache entries are keyed by the
//! `(RelId, RelVersion)` content fingerprints of PR 3, which is what
//! makes the per-shard caches sound across that shard's own writes.

use crate::shard::TenantKey;
use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

/// Handle to one registered tenant: which shard hosts it, and its key
/// within that shard. Obtained from
/// [`ShardedService::add_tenant`](crate::ShardedService::add_tenant);
/// `Copy`, cheap to pass around, and stable for the tenant's lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TenantId {
    shard: u32,
    key: TenantKey,
}

impl TenantId {
    /// Index of the shard hosting this tenant.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// The tenant's key within its shard.
    pub(crate) fn key(&self) -> TenantKey {
        self.key
    }
}

/// FNV-1a over the tenant name: deterministic across processes and
/// runs, so a tenant lands on the same shard every time the tier is
/// built with the same shard count.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The tenant registry and routing table of a
/// [`ShardedService`](crate::ShardedService).
pub(crate) struct Dispatcher {
    shards: u32,
    registry: RwLock<HashMap<String, TenantId>>,
    next_key: std::sync::atomic::AtomicU64,
}

impl Dispatcher {
    pub(crate) fn new(shards: usize) -> Self {
        Dispatcher {
            shards: shards.max(1) as u32,
            registry: RwLock::new(HashMap::new()),
            next_key: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shard a tenant name routes to — stable under everything
    /// except a change of shard count.
    pub(crate) fn route(&self, name: &str) -> usize {
        (fnv1a(name) % u64::from(self.shards)) as usize
    }

    /// Register `name`, returning its new id, or `None` if the name is
    /// already taken.
    pub(crate) fn register(&self, name: &str) -> Option<TenantId> {
        let mut registry = self
            .registry
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if registry.contains_key(name) {
            return None;
        }
        let id = TenantId {
            shard: self.route(name) as u32,
            key: self
                .next_key
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        };
        registry.insert(name.to_string(), id);
        Some(id)
    }

    /// Look up a registered tenant by name.
    pub(crate) fn lookup(&self, name: &str) -> Option<TenantId> {
        self.registry
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .copied()
    }

    /// Number of registered tenants.
    pub(crate) fn tenant_count(&self) -> usize {
        self.registry
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The fallback shard for a retry or hedge whose home shard is
    /// unhealthy (PR 9): the first shard after `home` (wrapping, home
    /// itself excluded) that `healthy` accepts, or `None` when no other
    /// shard qualifies. Deterministic, so retries of the same request
    /// keep landing on the same fallback and its warmed caches.
    pub(crate) fn fallback_route(
        &self,
        home: usize,
        healthy: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let shards = self.shards as usize;
        (1..shards)
            .map(|offset| (home + offset) % shards)
            .find(|&candidate| healthy(candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let d = Dispatcher::new(4);
        for name in ["alice", "bob", "carol", "dave", "erin"] {
            let shard = d.route(name);
            assert!(shard < 4);
            assert_eq!(shard, d.route(name), "same name, same shard");
            let fresh = Dispatcher::new(4);
            assert_eq!(shard, fresh.route(name), "stable across dispatchers");
        }
    }

    #[test]
    fn names_spread_across_shards() {
        let d = Dispatcher::new(4);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[d.route(&format!("tenant-{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 names cover all 4 shards");
    }

    #[test]
    fn register_rejects_duplicates_and_assigns_unique_keys() {
        let d = Dispatcher::new(2);
        let a = d.register("a").unwrap();
        let b = d.register("b").unwrap();
        assert!(d.register("a").is_none(), "duplicate name rejected");
        assert_ne!(a.key(), b.key());
        assert_eq!(d.lookup("a"), Some(a));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.tenant_count(), 2);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let d = Dispatcher::new(1);
        assert_eq!(d.route("anything"), 0);
        assert_eq!(d.register("anything").unwrap().shard(), 0);
    }

    #[test]
    fn fallback_skips_unhealthy_shards_and_wraps() {
        let d = Dispatcher::new(4);
        // Shards 2 and 3 unhealthy: fallback from 1 wraps past them to 0.
        let healthy = |s: usize| s == 0 || s == 1;
        assert_eq!(d.fallback_route(1, healthy), Some(0));
        assert_eq!(d.fallback_route(0, healthy), Some(1));
    }

    #[test]
    fn fallback_never_returns_home_and_handles_no_healthy_sibling() {
        let d = Dispatcher::new(3);
        assert_eq!(d.fallback_route(1, |_| true), Some(2));
        assert_eq!(d.fallback_route(1, |s| s == 1), None, "home is excluded");
        let single = Dispatcher::new(1);
        assert_eq!(single.fallback_route(0, |_| true), None);
    }
}
