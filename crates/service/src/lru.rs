//! A small least-recently-used cache (std-only).
//!
//! Recency is tracked with a monotone tick per entry plus a
//! `BTreeMap<tick, key>` recency index, giving `O(log n)` get/insert and
//! exact LRU eviction without a hand-rolled linked list.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `k`, marking it most recently used on a hit. A miss is
    /// side-effect-free: no tick is consumed and no recency key is
    /// cloned or reinserted, so a scan of absent keys can never perturb
    /// recency bookkeeping (or burn through the tick space).
    pub fn get(&mut self, k: &K) -> Option<&V> {
        let (v, last) = self.map.get_mut(k)?;
        self.tick += 1;
        self.recency.remove(&*last);
        *last = self.tick;
        self.recency.insert(self.tick, k.clone());
        Some(v)
    }

    /// Insert (or refresh) an entry, evicting the LRU one if over capacity.
    pub fn insert(&mut self, k: K, v: V) {
        self.tick += 1;
        if let Some((_, last)) = self.map.remove(&k) {
            self.recency.remove(&last);
        }
        self.map.insert(k.clone(), (v, self.tick));
        self.recency.insert(self.tick, k);
        while self.map.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("non-empty recency index");
            let victim = self.recency.remove(&oldest).expect("victim key");
            self.map.remove(&victim);
        }
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// The recency tick (test-only: observing miss side-effect freedom).
    #[cfg(test)]
    fn current_tick(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // a is now fresher than b
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_refreshes_recency_and_value() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh a, b is now LRU
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), None);
    }

    #[test]
    fn get_miss_is_side_effect_free() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        let tick = lru.current_tick();
        for _ in 0..100 {
            assert_eq!(lru.get(&"zzz"), None);
        }
        assert_eq!(lru.current_tick(), tick, "misses consume no ticks");
        // Recency is untouched: "a" is still the LRU entry, so the next
        // insert evicts it — not "b".
        lru.insert("c", 3);
        assert_eq!(lru.get(&"a"), None);
        assert_eq!(lru.get(&"b"), Some(&2));
        assert_eq!(lru.get(&"c"), Some(&3));
    }

    #[test]
    fn get_hit_refreshes_recency_exactly_once() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        let before = lru.current_tick();
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.current_tick(), before + 1, "one tick per hit");
        // "b" is now the LRU entry and gets evicted next.
        lru.insert("c", 3);
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
    }

    #[test]
    fn reinsert_keeps_one_recency_entry_per_key() {
        let mut lru = LruCache::new(4);
        for _ in 0..10 {
            lru.insert("a", 1);
        }
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.recency.len(), 1, "stale recency keys are removed");
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.recency.len(), 1);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut lru = LruCache::new(0);
        lru.insert(1, "x");
        assert_eq!(lru.get(&1), Some(&"x"));
        lru.insert(2, "y");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn clear_empties() {
        let mut lru = LruCache::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        assert!(!lru.is_empty());
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&0), None);
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut lru = LruCache::new(8);
        for i in 0..1000u32 {
            lru.insert(i, i * 2);
            if i >= 8 {
                assert_eq!(lru.len(), 8);
            }
        }
        // The last 8 inserted survive.
        for i in 992..1000 {
            assert_eq!(lru.get(&i), Some(&(i * 2)));
        }
    }
}
