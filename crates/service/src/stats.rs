//! Service observability: cheap atomic counters, snapshotted on demand.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counters bumped by workers and the submit path.
#[derive(Debug, Default)]
pub(crate) struct StatsCounters {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub coalesced: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub index_evictions: AtomicU64,
    pub rank_tasks: AtomicU64,
    pub topk_pruned: AtomicU64,
    pub panics_caught: AtomicU64,
}

impl StatsCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
    ) -> ServiceStats {
        ServiceStats {
            workers,
            snapshot_version,
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            index_entries,
            index_evictions: self.index_evictions.load(Ordering::Relaxed),
            rank_tasks: self.rank_tasks.load(Ordering::Relaxed),
            topk_pruned: self.topk_pruned.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of the service's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Version of the currently published snapshot.
    pub snapshot_version: u64,
    /// Requests accepted by `submit`/`try_submit`.
    pub requests: u64,
    /// Batches pulled off the queue by workers.
    pub batches: u64,
    /// Requests processed inside those batches.
    pub batched_requests: u64,
    /// Requests answered by riding on a batch-mate's identical fresh
    /// computation (neither a cache hit nor a separate miss).
    pub coalesced: u64,
    /// Responsibility-cache hits.
    pub cache_hits: u64,
    /// Responsibility-cache misses (fresh computations).
    pub cache_misses: u64,
    /// Join indexes currently held by the shared index cache — one per
    /// (relation, content version, binding pattern) served so far.
    pub index_entries: u64,
    /// Join indexes evicted because their relation's content version fell
    /// out of the retained snapshot window. With per-relation keying this
    /// counts only indexes of *touched* relations; untouched relations
    /// keep their stamps and are never evicted by a write elsewhere.
    pub index_evictions: u64,
    /// Freshly computed [`RankTopK`](crate::ExplainKind::RankTopK)
    /// rankings (cache hits and coalesced riders are not re-ranked).
    pub rank_tasks: u64,
    /// Candidate causes the top-k screen skipped across all rank tasks:
    /// their cheap responsibility upper bound proved they could no
    /// longer enter the top k, so no full Algorithm-1 / branch-and-bound
    /// solve was spent on them.
    pub topk_pruned: u64,
    /// Worker panics caught and converted into
    /// [`ServiceError::Panicked`](crate::ServiceError::Panicked)
    /// responses. Nonzero means a job blew up but the pool survived it.
    pub panics_caught: u64,
}

impl ServiceStats {
    /// Responsibility-cache hit rate in `[0, 1]` (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean batch size (requests per queue pull).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = StatsCounters::default();
        StatsCounters::bump(&c.requests);
        StatsCounters::add(&c.cache_hits, 3);
        StatsCounters::bump(&c.cache_misses);
        StatsCounters::add(&c.index_evictions, 2);
        StatsCounters::bump(&c.rank_tasks);
        StatsCounters::add(&c.topk_pruned, 7);
        StatsCounters::bump(&c.panics_caught);
        let s = c.snapshot(4, 7, 5);
        assert_eq!(s.workers, 4);
        assert_eq!(s.snapshot_version, 7);
        assert_eq!(s.requests, 1);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.index_entries, 5);
        assert_eq!(s.index_evictions, 2);
        assert_eq!(s.rank_tasks, 1);
        assert_eq!(s.topk_pruned, 7);
        assert_eq!(s.panics_caught, 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = StatsCounters::default().snapshot(1, 1, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
    }
}
