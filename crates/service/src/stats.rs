//! Service observability: the per-shard metric set, snapshotted (and
//! optionally reset) on demand.
//!
//! Since PR 7 the counters live in a [`causality_telemetry`]
//! [`MetricsRegistry`]: every counter, gauge, and histogram is a named
//! registry entry, so the same atomics that feed [`ServiceStats`] are
//! exported — full histogram buckets included — through
//! [`ShardedService::export_metrics`](crate::ShardedService::export_metrics)
//! in Prometheus text or JSONL form. Recording stays lock-free: workers
//! bump relaxed atomics through shared handles; the registry is only
//! locked at registration and export time.
//!
//! `snapshot_and_reset` reads each counter with a single atomic `swap`,
//! so a concurrent in-flight increment lands either in the returned
//! snapshot or in the next epoch — never both, never neither (see the
//! conservation test below).

use causality_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

pub use causality_telemetry::{quantile_us, LATENCY_BUCKETS};

/// The canonical metric names a shard registers, in registration order.
/// `trace-report` and dashboards key off these.
const COUNTER_NAMES: [&str; 16] = [
    "requests_total",
    "batches_total",
    "batched_requests_total",
    "coalesced_total",
    "cache_hits_total",
    "cache_misses_total",
    "index_evictions_total",
    "rank_tasks_total",
    "topk_pruned_total",
    "panics_caught_total",
    "admission_rejects_total",
    "deadline_misses_total",
    "approx_requests_total",
    "approx_refinements_total",
    "shard_restarts_total",
    "shard_quarantines_total",
];

/// Internal counters bumped by workers and the submit path — shared
/// handles into the shard's [`MetricsRegistry`].
///
/// All entries except `queue_depth` are monotone counters;
/// `queue_depth` is a live gauge (incremented on admission, decremented
/// when a worker drains the job) and is therefore never reset.
#[derive(Debug)]
pub(crate) struct StatsCounters {
    pub requests: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub batched_requests: Arc<Counter>,
    pub coalesced: Arc<Counter>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub index_evictions: Arc<Counter>,
    pub rank_tasks: Arc<Counter>,
    pub topk_pruned: Arc<Counter>,
    pub panics_caught: Arc<Counter>,
    pub admission_rejects: Arc<Counter>,
    pub deadline_misses: Arc<Counter>,
    pub approx_requests: Arc<Counter>,
    pub approx_refinements: Arc<Counter>,
    pub shard_restarts: Arc<Counter>,
    pub shard_quarantines: Arc<Counter>,
    pub queue_depth: Arc<Gauge>,
    pub latency: Arc<Histogram>,
    /// Width of the certified ρ bracket each anytime answer shipped
    /// with, in parts-per-million of the full `[0, 1]` range (0 = the
    /// bounds collapsed to the exact ρ within budget).
    pub bound_width: Arc<Histogram>,
}

impl StatsCounters {
    /// Registers the canonical service metrics in `registry` and keeps
    /// shared handles for the hot path.
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        let c = |i: usize| registry.counter(COUNTER_NAMES[i]);
        StatsCounters {
            requests: c(0),
            batches: c(1),
            batched_requests: c(2),
            coalesced: c(3),
            cache_hits: c(4),
            cache_misses: c(5),
            index_evictions: c(6),
            rank_tasks: c(7),
            topk_pruned: c(8),
            panics_caught: c(9),
            admission_rejects: c(10),
            deadline_misses: c(11),
            approx_requests: c(12),
            approx_refinements: c(13),
            shard_restarts: c(14),
            shard_quarantines: c(15),
            queue_depth: registry.gauge("queue_depth"),
            latency: registry.histogram("latency_us"),
            bound_width: registry.histogram("bound_width_ppm"),
        }
    }

    fn read(counter: &Counter, reset: bool) -> u64 {
        if reset {
            counter.take()
        } else {
            counter.get()
        }
    }

    fn assemble(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
        reset: bool,
    ) -> ServiceStats {
        if reset {
            // Not surfaced in `ServiceStats` (it is exported through the
            // registry), but phase-isolated like every other histogram.
            let _ = self.bound_width.counts(true);
        }
        ServiceStats {
            workers,
            snapshot_version,
            requests: Self::read(&self.requests, reset),
            batches: Self::read(&self.batches, reset),
            batched_requests: Self::read(&self.batched_requests, reset),
            coalesced: Self::read(&self.coalesced, reset),
            cache_hits: Self::read(&self.cache_hits, reset),
            cache_misses: Self::read(&self.cache_misses, reset),
            index_entries,
            index_evictions: Self::read(&self.index_evictions, reset),
            rank_tasks: Self::read(&self.rank_tasks, reset),
            topk_pruned: Self::read(&self.topk_pruned, reset),
            panics_caught: Self::read(&self.panics_caught, reset),
            admission_rejects: Self::read(&self.admission_rejects, reset),
            deadline_misses: Self::read(&self.deadline_misses, reset),
            approx_requests: Self::read(&self.approx_requests, reset),
            approx_refinements: Self::read(&self.approx_refinements, reset),
            // Lifecycle counters, never reset: a phase boundary does not
            // undo a restart or a quarantine.
            shard_restarts: self.shard_restarts.get(),
            shard_quarantines: self.shard_quarantines.get(),
            // A gauge, not a counter: resetting it would lie about the
            // jobs still sitting in the queue.
            queue_depth: self.queue_depth.get(),
            latency_buckets: self.latency.counts(reset),
        }
    }

    /// A point-in-time view; counters keep accumulating.
    pub(crate) fn snapshot(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
    ) -> ServiceStats {
        self.assemble(workers, snapshot_version, index_entries, false)
    }

    /// A point-in-time view that also zeroes every monotone counter and
    /// the latency histogram (the `queue_depth` gauge is left live), so
    /// successive measurement phases — e.g. the load harness's warmup vs
    /// timed window — never bleed into each other.
    ///
    /// Each counter is reset with one atomic `swap(0)`, so per counter a
    /// concurrent increment is either observed in this snapshot or
    /// carried into the next phase — jobs are never double-counted or
    /// lost across the boundary. (Different counters are swapped at
    /// slightly different instants, so *cross*-counter invariants like
    /// `hits + misses == requests` may be off by in-flight requests in
    /// any single snapshot; summing phases restores them.)
    pub(crate) fn snapshot_and_reset(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
    ) -> ServiceStats {
        self.assemble(workers, snapshot_version, index_entries, true)
    }
}

/// A point-in-time view of a service's (or one shard's) counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Version of the currently published snapshot (highest tenant
    /// version on a multi-tenant shard).
    pub snapshot_version: u64,
    /// Requests accepted by `submit`/`try_submit`.
    pub requests: u64,
    /// Batches pulled off the queue by workers.
    pub batches: u64,
    /// Requests processed inside those batches.
    pub batched_requests: u64,
    /// Requests answered by riding on a batch-mate's identical fresh
    /// computation (neither a cache hit nor a separate miss).
    pub coalesced: u64,
    /// Responsibility-cache hits.
    pub cache_hits: u64,
    /// Responsibility-cache misses (fresh computations).
    pub cache_misses: u64,
    /// Join indexes currently held by the shared index cache — one per
    /// (relation, content version, binding pattern) served so far.
    pub index_entries: u64,
    /// Join indexes evicted because their relation's content version fell
    /// out of the retained snapshot window. With per-relation keying this
    /// counts only indexes of *touched* relations; untouched relations
    /// keep their stamps and are never evicted by a write elsewhere.
    pub index_evictions: u64,
    /// Freshly computed [`RankTopK`](crate::ExplainKind::RankTopK)
    /// rankings (cache hits and coalesced riders are not re-ranked).
    pub rank_tasks: u64,
    /// Candidate causes the top-k screen skipped across all rank tasks:
    /// their cheap responsibility upper bound proved they could no
    /// longer enter the top k, so no full Algorithm-1 / branch-and-bound
    /// solve was spent on them.
    pub topk_pruned: u64,
    /// Worker panics caught and converted into
    /// [`ServiceError::Panicked`](crate::ServiceError::Panicked)
    /// responses. Nonzero means a job blew up but the pool survived it.
    pub panics_caught: u64,
    /// Requests rejected at admission
    /// ([`ServiceError::Overloaded`](crate::ServiceError::Overloaded))
    /// because the shard's queue depth had reached its limit. Rejected
    /// requests are returned to the caller, never silently dropped.
    pub admission_rejects: u64,
    /// Requests whose deadline budget had already expired when a worker
    /// drained them; each resolved to
    /// [`ServiceError::DeadlineExceeded`](crate::ServiceError::DeadlineExceeded)
    /// without occupying the worker.
    pub deadline_misses: u64,
    /// Fresh computations the hardness router sent down the anytime
    /// approximation path (NP-hard Why-So under a deadline); their
    /// responses carry [`ExplainMode::Approximate`](crate::ExplainMode)
    /// with certified `[lower, upper]` ρ bounds.
    pub approx_requests: u64,
    /// Completed anytime refinement levels across all approx requests —
    /// each one provably tightened a ρ bracket before the budget ran
    /// out.
    pub approx_refinements: u64,
    /// Worker-pool restarts performed by the supervisor (PR 9). A
    /// lifecycle counter: never reset by `snapshot_and_reset`.
    pub shard_restarts: u64,
    /// Healthy/Degraded → Quarantined transitions the supervisor took
    /// (PR 9). A lifecycle counter: never reset by `snapshot_and_reset`.
    pub shard_quarantines: u64,
    /// Jobs currently admitted but not yet drained by a worker (a live
    /// gauge — not reset by `snapshot_and_reset`).
    pub queue_depth: u64,
    /// Response-latency histogram counts (submit → response), bucket `i`
    /// covering `[2^i, 2^(i+1))` µs. Query with [`ServiceStats::p50_us`]
    /// / [`ServiceStats::p99_us`] / [`ServiceStats::latency_quantile_us`].
    pub latency_buckets: [u64; LATENCY_BUCKETS],
}

impl ServiceStats {
    /// The all-zero stats view (0 workers, no samples) — the identity
    /// element of [`ServiceStats::merge`].
    pub fn empty() -> Self {
        ServiceStats {
            workers: 0,
            snapshot_version: 0,
            requests: 0,
            batches: 0,
            batched_requests: 0,
            coalesced: 0,
            cache_hits: 0,
            cache_misses: 0,
            index_entries: 0,
            index_evictions: 0,
            rank_tasks: 0,
            topk_pruned: 0,
            panics_caught: 0,
            admission_rejects: 0,
            deadline_misses: 0,
            approx_requests: 0,
            approx_refinements: 0,
            shard_restarts: 0,
            shard_quarantines: 0,
            queue_depth: 0,
            latency_buckets: [0; LATENCY_BUCKETS],
        }
    }

    /// Responsibility-cache hit rate in `[0, 1]` (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean batch size (requests per queue pull).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Number of latency samples recorded.
    pub fn latency_samples(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Latency quantile in microseconds (bucket lower bound; 0 with no
    /// samples). Monotone in `q`, so `p99_us() >= p50_us()` always.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        quantile_us(&self.latency_buckets, q)
    }

    /// Median response latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile response latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.latency_quantile_us(0.99)
    }

    /// Fold another stats view into this one (used to aggregate shards):
    /// counters, gauges, and histograms add; `workers` adds;
    /// `snapshot_version` and `index_entries` take the max / sum
    /// respectively.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.workers += other.workers;
        self.snapshot_version = self.snapshot_version.max(other.snapshot_version);
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.coalesced += other.coalesced;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.index_entries += other.index_entries;
        self.index_evictions += other.index_evictions;
        self.rank_tasks += other.rank_tasks;
        self.topk_pruned += other.topk_pruned;
        self.panics_caught += other.panics_caught;
        self.admission_rejects += other.admission_rejects;
        self.deadline_misses += other.deadline_misses;
        self.approx_requests += other.approx_requests;
        self.approx_refinements += other.approx_refinements;
        self.shard_restarts += other.shard_restarts;
        self.shard_quarantines += other.shard_quarantines;
        self.queue_depth += other.queue_depth;
        for (mine, theirs) in self
            .latency_buckets
            .iter_mut()
            .zip(other.latency_buckets.iter())
        {
            *mine += theirs;
        }
    }
}

/// Tier-level (front-end) resilience counters (PR 9): everything the
/// self-healing layer does *between* the shards — retries, hedges,
/// breaker activity, brownout — rather than inside one of them. Sourced
/// from the tier registry alongside the per-shard [`ServiceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Re-submissions after a retryable failure (excludes first attempts).
    pub retries: u64,
    /// Hedge requests launched against a sibling shard because the first
    /// attempt was still unanswered after `hedge_after`.
    pub hedges: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Requests shed at admission because a tenant's breaker was open.
    pub breaker_rejects: u64,
    /// Requests served inline with the zero-budget greedy bracket while
    /// the tier was browned out.
    pub brownout_served: u64,
    /// Cumulative microseconds the tier spent in brownout mode.
    pub brownout_us: u64,
    /// Retries re-routed to a fallback shard because the home shard was
    /// quarantined or degraded.
    pub reroutes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn counters() -> StatsCounters {
        StatsCounters::new(&MetricsRegistry::new())
    }

    #[test]
    fn snapshot_reflects_counters() {
        let c = counters();
        c.requests.inc();
        c.cache_hits.add(3);
        c.cache_misses.inc();
        c.index_evictions.add(2);
        c.rank_tasks.inc();
        c.topk_pruned.add(7);
        c.panics_caught.inc();
        c.admission_rejects.inc();
        c.deadline_misses.add(4);
        c.approx_requests.add(2);
        c.approx_refinements.add(6);
        let s = c.snapshot(4, 7, 5);
        assert_eq!(s.workers, 4);
        assert_eq!(s.snapshot_version, 7);
        assert_eq!(s.requests, 1);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.index_entries, 5);
        assert_eq!(s.index_evictions, 2);
        assert_eq!(s.rank_tasks, 1);
        assert_eq!(s.topk_pruned, 7);
        assert_eq!(s.panics_caught, 1);
        assert_eq!(s.admission_rejects, 1);
        assert_eq!(s.deadline_misses, 4);
        assert_eq!(s.approx_requests, 2);
        assert_eq!(s.approx_refinements, 6);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = counters().snapshot(1, 1, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p99_us(), 0);
    }

    #[test]
    fn snapshot_and_reset_zeroes_counters_but_not_the_gauge() {
        let c = counters();
        c.requests.add(10);
        c.queue_depth.add(3);
        c.latency.record(Duration::from_micros(100));
        let phase1 = c.snapshot_and_reset(1, 1, 0);
        assert_eq!(phase1.requests, 10);
        assert_eq!(phase1.latency_samples(), 1);
        assert_eq!(phase1.queue_depth, 3, "gauge is reported");
        let phase2 = c.snapshot(1, 1, 0);
        assert_eq!(phase2.requests, 0, "counter was reset");
        assert_eq!(phase2.latency_samples(), 0, "histogram was reset");
        assert_eq!(phase2.queue_depth, 3, "gauge is not reset");
    }

    #[test]
    fn snapshot_and_reset_conserves_concurrent_increments() {
        // Regression for the reset-atomicity audit: with writers bumping
        // a counter and the histogram while a reader repeatedly calls
        // snapshot_and_reset, every increment must appear in exactly one
        // phase — the sum of the phase snapshots plus the final snapshot
        // equals the number of increments, with no loss or double count.
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        let c = std::sync::Arc::new(counters());
        let mut phase_requests = 0u64;
        let mut phase_samples = 0u64;
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..PER_WRITER {
                        c.requests.inc();
                        c.latency.record_us(100);
                    }
                });
            }
            for _ in 0..50 {
                let phase = c.snapshot_and_reset(1, 0, 0);
                phase_requests += phase.requests;
                phase_samples += phase.latency_samples();
                std::thread::yield_now();
            }
        });
        let last = c.snapshot_and_reset(1, 0, 0);
        phase_requests += last.requests;
        phase_samples += last.latency_samples();
        let expected = WRITERS as u64 * PER_WRITER;
        assert_eq!(phase_requests, expected, "requests conserved");
        assert_eq!(phase_samples, expected, "histogram samples conserved");
    }

    #[test]
    fn gauge_dec_saturates() {
        let c = counters();
        c.queue_depth.add(2);
        c.queue_depth.dec(5);
        assert_eq!(c.queue_depth.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let c = counters();
        let h = &c.latency;
        h.record(Duration::from_micros(0)); // clamps into bucket 0
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        h.record(Duration::from_secs(3600)); // clamps into the last bucket
        let counts = h.counts(false);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 1, "1000 µs lands in [512, 1024)");
        assert_eq!(counts[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn bucket_boundaries_split_at_powers_of_two() {
        let c = counters();
        c.latency.record(Duration::from_micros(1023));
        c.latency.record(Duration::from_micros(1024));
        let counts = c.latency.counts(false);
        assert_eq!(counts[9], 1, "1023 µs stays in [512, 1024)");
        assert_eq!(counts[10], 1, "1024 µs opens [1024, 2048)");
    }

    #[test]
    fn single_sample_p50_equals_p99() {
        let c = counters();
        c.latency.record(Duration::from_micros(300));
        let s = c.snapshot(1, 0, 0);
        assert_eq!(s.p50_us(), s.p99_us());
        assert_eq!(s.p50_us(), 256, "bucket lower bound of [256, 512)");
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_exact() {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[3] = 50; // 50 samples in [8, 16) µs
        buckets[10] = 49; // 49 samples in [1024, 2048) µs
        buckets[20] = 1; // 1 outlier
        assert_eq!(quantile_us(&buckets, 0.5), 8);
        assert_eq!(quantile_us(&buckets, 0.99), 1024);
        assert_eq!(quantile_us(&buckets, 1.0), 1 << 20);
        let mut last = 0;
        for i in 0..=100 {
            let q = quantile_us(&buckets, f64::from(i) / 100.0);
            assert!(q >= last, "quantiles are monotone");
            last = q;
        }
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = counters();
        a.requests.add(5);
        a.latency.record(Duration::from_micros(10));
        let b = counters();
        b.requests.add(7);
        b.queue_depth.add(2);
        b.latency.record(Duration::from_micros(5000));
        let mut m = a.snapshot(2, 3, 1);
        m.merge(&b.snapshot(4, 9, 2));
        assert_eq!(m.workers, 6);
        assert_eq!(m.snapshot_version, 9);
        assert_eq!(m.requests, 12);
        assert_eq!(m.index_entries, 3);
        assert_eq!(m.queue_depth, 2);
        assert_eq!(m.latency_samples(), 2, "merge preserves total count");
    }
}
