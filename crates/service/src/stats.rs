//! Service observability: cheap atomic counters plus a fixed-bucket
//! latency histogram, snapshotted (and optionally reset) on demand.
//!
//! Everything here is std-only and lock-free on the record path: workers
//! bump relaxed atomics, and `StatsCounters::snapshot` /
//! `StatsCounters::snapshot_and_reset` assemble a [`ServiceStats`]
//! point-in-time view. The histogram uses power-of-two microsecond
//! buckets, so p50/p99 are exact to within a factor of two — plenty for
//! spotting a queueing collapse, and cheap enough to keep on 24/7.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds, so the histogram spans 1 µs up to
/// ~2.2 minutes (`2^27` µs) with the last bucket absorbing the tail.
pub const LATENCY_BUCKETS: usize = 28;

/// A fixed-bucket, atomically-updated latency histogram (microseconds,
/// power-of-two buckets). Recording is one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Bucket index of a duration: `floor(log2(µs))`, clamped.
    fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().max(1) as u64;
        (us.ilog2() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// Load all bucket counts (optionally swapping them back to zero).
    fn counts(&self, reset: bool) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = if reset {
                bucket.swap(0, Ordering::Relaxed)
            } else {
                bucket.load(Ordering::Relaxed)
            };
        }
        out
    }
}

/// The quantile `q` (in `[0, 1]`) of a bucket-count array, reported as
/// the lower bound of the bucket holding that rank — exact to within the
/// bucket's factor-of-two width, and monotone in `q` by construction
/// (so p99 ≥ p50 always holds). `0` when no samples were recorded.
pub fn quantile_us(buckets: &[u64; LATENCY_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << i;
        }
    }
    1u64 << (LATENCY_BUCKETS - 1)
}

/// Internal counters bumped by workers and the submit path.
///
/// All fields except `queue_depth` are monotone counters;
/// `queue_depth` is a live gauge (incremented on admission, decremented
/// when a worker drains the job) and is therefore never reset.
#[derive(Debug, Default)]
pub(crate) struct StatsCounters {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub coalesced: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub index_evictions: AtomicU64,
    pub rank_tasks: AtomicU64,
    pub topk_pruned: AtomicU64,
    pub panics_caught: AtomicU64,
    pub admission_rejects: AtomicU64,
    pub deadline_misses: AtomicU64,
    pub queue_depth: AtomicU64,
    pub latency: LatencyHistogram,
}

impl StatsCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement a gauge, saturating at zero.
    pub(crate) fn gauge_dec(gauge: &AtomicU64, n: u64) {
        let mut cur = gauge.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match gauge.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn read(counter: &AtomicU64, reset: bool) -> u64 {
        if reset {
            counter.swap(0, Ordering::Relaxed)
        } else {
            counter.load(Ordering::Relaxed)
        }
    }

    fn assemble(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
        reset: bool,
    ) -> ServiceStats {
        ServiceStats {
            workers,
            snapshot_version,
            requests: Self::read(&self.requests, reset),
            batches: Self::read(&self.batches, reset),
            batched_requests: Self::read(&self.batched_requests, reset),
            coalesced: Self::read(&self.coalesced, reset),
            cache_hits: Self::read(&self.cache_hits, reset),
            cache_misses: Self::read(&self.cache_misses, reset),
            index_entries,
            index_evictions: Self::read(&self.index_evictions, reset),
            rank_tasks: Self::read(&self.rank_tasks, reset),
            topk_pruned: Self::read(&self.topk_pruned, reset),
            panics_caught: Self::read(&self.panics_caught, reset),
            admission_rejects: Self::read(&self.admission_rejects, reset),
            deadline_misses: Self::read(&self.deadline_misses, reset),
            // A gauge, not a counter: resetting it would lie about the
            // jobs still sitting in the queue.
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            latency_buckets: self.latency.counts(reset),
        }
    }

    /// A point-in-time view; counters keep accumulating.
    pub(crate) fn snapshot(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
    ) -> ServiceStats {
        self.assemble(workers, snapshot_version, index_entries, false)
    }

    /// A point-in-time view that also zeroes every monotone counter and
    /// the latency histogram (the `queue_depth` gauge is left live), so
    /// successive measurement phases — e.g. the load harness's warmup vs
    /// timed window — never bleed into each other.
    pub(crate) fn snapshot_and_reset(
        &self,
        workers: usize,
        snapshot_version: u64,
        index_entries: u64,
    ) -> ServiceStats {
        self.assemble(workers, snapshot_version, index_entries, true)
    }
}

/// A point-in-time view of a service's (or one shard's) counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Version of the currently published snapshot (highest tenant
    /// version on a multi-tenant shard).
    pub snapshot_version: u64,
    /// Requests accepted by `submit`/`try_submit`.
    pub requests: u64,
    /// Batches pulled off the queue by workers.
    pub batches: u64,
    /// Requests processed inside those batches.
    pub batched_requests: u64,
    /// Requests answered by riding on a batch-mate's identical fresh
    /// computation (neither a cache hit nor a separate miss).
    pub coalesced: u64,
    /// Responsibility-cache hits.
    pub cache_hits: u64,
    /// Responsibility-cache misses (fresh computations).
    pub cache_misses: u64,
    /// Join indexes currently held by the shared index cache — one per
    /// (relation, content version, binding pattern) served so far.
    pub index_entries: u64,
    /// Join indexes evicted because their relation's content version fell
    /// out of the retained snapshot window. With per-relation keying this
    /// counts only indexes of *touched* relations; untouched relations
    /// keep their stamps and are never evicted by a write elsewhere.
    pub index_evictions: u64,
    /// Freshly computed [`RankTopK`](crate::ExplainKind::RankTopK)
    /// rankings (cache hits and coalesced riders are not re-ranked).
    pub rank_tasks: u64,
    /// Candidate causes the top-k screen skipped across all rank tasks:
    /// their cheap responsibility upper bound proved they could no
    /// longer enter the top k, so no full Algorithm-1 / branch-and-bound
    /// solve was spent on them.
    pub topk_pruned: u64,
    /// Worker panics caught and converted into
    /// [`ServiceError::Panicked`](crate::ServiceError::Panicked)
    /// responses. Nonzero means a job blew up but the pool survived it.
    pub panics_caught: u64,
    /// Requests rejected at admission
    /// ([`ServiceError::Overloaded`](crate::ServiceError::Overloaded))
    /// because the shard's queue depth had reached its limit. Rejected
    /// requests are returned to the caller, never silently dropped.
    pub admission_rejects: u64,
    /// Requests whose deadline budget had already expired when a worker
    /// drained them; each resolved to
    /// [`ServiceError::DeadlineExceeded`](crate::ServiceError::DeadlineExceeded)
    /// without occupying the worker.
    pub deadline_misses: u64,
    /// Jobs currently admitted but not yet drained by a worker (a live
    /// gauge — not reset by `snapshot_and_reset`).
    pub queue_depth: u64,
    /// Response-latency histogram counts (submit → response), bucket `i`
    /// covering `[2^i, 2^(i+1))` µs. Query with [`ServiceStats::p50_us`]
    /// / [`ServiceStats::p99_us`] / [`ServiceStats::latency_quantile_us`].
    pub latency_buckets: [u64; LATENCY_BUCKETS],
}

impl ServiceStats {
    /// Responsibility-cache hit rate in `[0, 1]` (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean batch size (requests per queue pull).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Number of latency samples recorded.
    pub fn latency_samples(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Latency quantile in microseconds (bucket lower bound; 0 with no
    /// samples). Monotone in `q`, so `p99_us() >= p50_us()` always.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        quantile_us(&self.latency_buckets, q)
    }

    /// Median response latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile response latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.latency_quantile_us(0.99)
    }

    /// Fold another stats view into this one (used to aggregate shards):
    /// counters, gauges, and histograms add; `workers` adds;
    /// `snapshot_version` and `index_entries` take the max / sum
    /// respectively.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.workers += other.workers;
        self.snapshot_version = self.snapshot_version.max(other.snapshot_version);
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.coalesced += other.coalesced;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.index_entries += other.index_entries;
        self.index_evictions += other.index_evictions;
        self.rank_tasks += other.rank_tasks;
        self.topk_pruned += other.topk_pruned;
        self.panics_caught += other.panics_caught;
        self.admission_rejects += other.admission_rejects;
        self.deadline_misses += other.deadline_misses;
        self.queue_depth += other.queue_depth;
        for (mine, theirs) in self
            .latency_buckets
            .iter_mut()
            .zip(other.latency_buckets.iter())
        {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = StatsCounters::default();
        StatsCounters::bump(&c.requests);
        StatsCounters::add(&c.cache_hits, 3);
        StatsCounters::bump(&c.cache_misses);
        StatsCounters::add(&c.index_evictions, 2);
        StatsCounters::bump(&c.rank_tasks);
        StatsCounters::add(&c.topk_pruned, 7);
        StatsCounters::bump(&c.panics_caught);
        StatsCounters::bump(&c.admission_rejects);
        StatsCounters::add(&c.deadline_misses, 4);
        let s = c.snapshot(4, 7, 5);
        assert_eq!(s.workers, 4);
        assert_eq!(s.snapshot_version, 7);
        assert_eq!(s.requests, 1);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.index_entries, 5);
        assert_eq!(s.index_evictions, 2);
        assert_eq!(s.rank_tasks, 1);
        assert_eq!(s.topk_pruned, 7);
        assert_eq!(s.panics_caught, 1);
        assert_eq!(s.admission_rejects, 1);
        assert_eq!(s.deadline_misses, 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = StatsCounters::default().snapshot(1, 1, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p99_us(), 0);
    }

    #[test]
    fn snapshot_and_reset_zeroes_counters_but_not_the_gauge() {
        let c = StatsCounters::default();
        StatsCounters::add(&c.requests, 10);
        StatsCounters::add(&c.queue_depth, 3);
        c.latency.record(Duration::from_micros(100));
        let phase1 = c.snapshot_and_reset(1, 1, 0);
        assert_eq!(phase1.requests, 10);
        assert_eq!(phase1.latency_samples(), 1);
        assert_eq!(phase1.queue_depth, 3, "gauge is reported");
        let phase2 = c.snapshot(1, 1, 0);
        assert_eq!(phase2.requests, 0, "counter was reset");
        assert_eq!(phase2.latency_samples(), 0, "histogram was reset");
        assert_eq!(phase2.queue_depth, 3, "gauge is not reset");
    }

    #[test]
    fn gauge_dec_saturates() {
        let g = AtomicU64::new(2);
        StatsCounters::gauge_dec(&g, 5);
        assert_eq!(g.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0)); // clamps into bucket 0
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        h.record(Duration::from_secs(3600)); // clamps into the last bucket
        let counts = h.counts(false);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[9], 1, "1000 µs lands in [512, 1024)");
        assert_eq!(counts[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_exact() {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[3] = 50; // 50 samples in [8, 16) µs
        buckets[10] = 49; // 49 samples in [1024, 2048) µs
        buckets[20] = 1; // 1 outlier
        assert_eq!(quantile_us(&buckets, 0.5), 8);
        assert_eq!(quantile_us(&buckets, 0.99), 1024);
        assert_eq!(quantile_us(&buckets, 1.0), 1 << 20);
        let mut last = 0;
        for i in 0..=100 {
            let q = quantile_us(&buckets, f64::from(i) / 100.0);
            assert!(q >= last, "quantiles are monotone");
            last = q;
        }
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = StatsCounters::default();
        StatsCounters::add(&a.requests, 5);
        a.latency.record(Duration::from_micros(10));
        let b = StatsCounters::default();
        StatsCounters::add(&b.requests, 7);
        StatsCounters::add(&b.queue_depth, 2);
        b.latency.record(Duration::from_micros(5000));
        let mut m = a.snapshot(2, 3, 1);
        m.merge(&b.snapshot(4, 9, 2));
        assert_eq!(m.workers, 6);
        assert_eq!(m.snapshot_version, 9);
        assert_eq!(m.requests, 12);
        assert_eq!(m.index_entries, 3);
        assert_eq!(m.queue_depth, 2);
        assert_eq!(m.latency_samples(), 2);
    }
}
