//! The concurrent explanation service.
//!
//! Architecture (std-only, no async runtime):
//!
//! * **Snapshots** — a [`SnapshotStore`] holds the current immutable
//!   [`Snapshot`]; writers publish new versions without blocking readers.
//!   Snapshots share structure: publishing an update clones only the
//!   relations it touches (`Arc` per relation, copy-on-write).
//! * **Worker pool** — N threads pull [`ExplainRequest`]s off one bounded
//!   channel. Each pull drains up to `batch_max` queued requests into a
//!   **batch** evaluated against a single pinned snapshot.
//! * **Index reuse** — one [`SharedIndexCache`] serves *every* snapshot
//!   version: its entries are keyed on per-relation content stamps
//!   (`(RelId, RelVersion, pattern)`), so a write to one relation leaves
//!   the join indexes of every other relation warm. Entries whose
//!   relation versions fall out of the retained snapshot window are
//!   evicted (counted in [`ServiceStats::index_evictions`]).
//! * **Responsibility cache** — finished explanations are memoized in an
//!   LRU keyed on (the query's relations' content stamps, request), so a
//!   cached answer survives writes to relations the query never mentions;
//!   duplicate requests within a batch are **coalesced** into one
//!   computation.

use crate::lru::LruCache;
use crate::request::{ExplainKind, ExplainRequest, ExplainResponse, PendingExplain, ServiceError};
use crate::stats::{ServiceStats, StatsCounters};
use causality_core::explain::{Explainer, Explanation};
use causality_engine::{Database, RelId, RelVersion, SharedIndexCache, Snapshot, SnapshotStore};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Lock a mutex, recovering from poisoning. Workers convert panics into
/// error responses ([`ServiceError::Panicked`]) before they can unwind
/// through a held lock, so poisoning is already unreachable from the
/// serving path — but if a lock is ever poisoned anyway (e.g. by a
/// panicking test hook or a future code path), serving degrades to
/// using the last-written state instead of cascading the panic into
/// every worker that touches the mutex afterwards. All state behind
/// these locks is valid at every step (caches and registries are
/// updated by single self-contained calls), so recovery is safe.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A chaos-testing predicate marking requests that must panic mid-flight.
type FaultHook = Box<dyn Fn(&ExplainRequest) -> bool + Send + Sync>;

/// The relation-content fingerprint a cached explanation depends on: the
/// (id, version) stamps of exactly the relations the request's query
/// mentions, sorted and deduplicated. Writes to other relations leave the
/// fingerprint — and therefore the cache entry — intact.
type RelFingerprint = Vec<(RelId, RelVersion)>;

/// Tuning knobs of the service.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bound of the request queue; `submit` applies backpressure beyond it.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains into one batch.
    pub batch_max: usize,
    /// Entries held by the responsibility LRU cache.
    pub cache_capacity: usize,
    /// How many recent snapshot versions keep their relations' join
    /// indexes alive in the shared index cache; relation versions
    /// reachable from none of them are evicted.
    pub cached_versions: usize,
    /// Threads each fresh [`ExplainKind::RankTopK`] computation fans its
    /// per-cause responsibility runs over (min 1; 1 = rank on the worker
    /// thread). Total ranking threads can reach `workers ×
    /// rank_parallelism`, so size the two together against the machine.
    pub rank_parallelism: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 128,
            batch_max: 16,
            cache_capacity: 1024,
            cached_versions: 4,
            rank_parallelism: 1,
        }
    }
}

/// State shared between the handle and the workers.
struct Shared {
    cfg: ServiceConfig,
    store: SnapshotStore,
    stats: StatsCounters,
    /// Memoized explanations: (query's relation fingerprint, request) →
    /// explanation. Keyed on relation content, not snapshot version, so
    /// entries survive writes to unrelated relations.
    resp_cache: Mutex<LruCache<(RelFingerprint, ExplainRequest), Explanation>>,
    /// The one join-index cache serving every snapshot version — sound
    /// because its entries are keyed on per-relation content stamps.
    index_cache: Arc<SharedIndexCache>,
    /// Relation fingerprints of recently served snapshot versions,
    /// newest last; the union of their stamps is the index cache's live
    /// set, everything else gets evicted.
    live_snapshots: Mutex<Vec<(u64, RelFingerprint)>>,
    /// Chaos-testing hook: requests matching the predicate panic inside
    /// the worker (see [`CausalityService::inject_fault`]).
    fault: Mutex<Option<FaultHook>>,
}

impl Shared {
    /// Register `snapshot` as served and return the shared index cache.
    ///
    /// The first time a snapshot version is seen, its relation-version
    /// fingerprint joins the retained window ([`ServiceConfig::cached_versions`]
    /// entries); index entries for relation versions no longer reachable
    /// from the window are evicted and counted.
    fn index_cache_for(&self, snapshot: &Snapshot) -> Arc<SharedIndexCache> {
        let version = snapshot.version();
        let mut live = lock_unpoisoned(&self.live_snapshots);
        let mut window_changed = false;
        if !live.iter().any(|(v, _)| *v == version) {
            live.push((version, snapshot.relation_versions()));
            live.sort_by_key(|(v, _)| *v);
            if live.len() > self.cfg.cached_versions {
                let excess = live.len() - self.cfg.cached_versions;
                live.drain(0..excess);
            }
            window_changed = true;
        }
        // Sweep when the window moved — plus on a periodic cadence: a
        // worker still evaluating an already-dropped older snapshot may
        // re-insert stamps from outside the window *after* the sweep that
        // dropped them, and without the cadence those would linger until
        // the next version arrives (forever, if the write stream stops).
        // The cadence keeps the steady read-only path free of the index
        // cache's write lock.
        let periodic = self
            .stats
            .batches
            .load(std::sync::atomic::Ordering::Relaxed)
            .is_multiple_of(64);
        if window_changed || periodic {
            let mut retained: RelFingerprint =
                live.iter().flat_map(|(_, f)| f.iter().copied()).collect();
            retained.sort();
            retained.dedup();
            let evicted = self.index_cache.retain_versions(&retained);
            StatsCounters::add(&self.stats.index_evictions, evicted as u64);
        }
        Arc::clone(&self.index_cache)
    }
}

/// The relation fingerprint a request's answer depends on, or `None` if
/// the query names a relation the snapshot does not have (the computation
/// will surface the error; it just cannot be cached).
fn resp_fingerprint(snapshot: &Snapshot, request: &ExplainRequest) -> Option<RelFingerprint> {
    let mut rels: RelFingerprint = Vec::with_capacity(request.query.atoms().len());
    for atom in request.query.atoms() {
        let id = snapshot.relation_id(&atom.relation)?;
        rels.push((id, snapshot.relation_version(id)));
    }
    rels.sort();
    rels.dedup();
    Some(rels)
}

enum Job {
    Request(Box<ExplainRequest>, Sender<ExplainResponse>),
    Shutdown,
}

/// A concurrent explanation service over one logical database.
///
/// ```
/// use causality_service::{CausalityService, ExplainRequest};
/// use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
///
/// let svc = CausalityService::new(example_2_2());
/// let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
/// let resp = svc
///     .explain(ExplainRequest::why_so(q, vec![Value::str("a2")]))
///     .unwrap();
/// assert_eq!(resp.expect_explanation().causes.len(), 2);
/// ```
pub struct CausalityService {
    shared: Arc<Shared>,
    tx: SyncSender<Job>,
    handles: Vec<JoinHandle<()>>,
}

impl CausalityService {
    /// Start a service over `db` with the default configuration.
    pub fn new(db: Database) -> Self {
        CausalityService::with_config(db, ServiceConfig::default())
    }

    /// Start a service with explicit tuning knobs.
    pub fn with_config(db: Database, cfg: ServiceConfig) -> Self {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            batch_max: cfg.batch_max.max(1),
            cached_versions: cfg.cached_versions.max(1),
            rank_parallelism: cfg.rank_parallelism.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            cfg,
            store: SnapshotStore::new(db),
            stats: StatsCounters::default(),
            resp_cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            index_cache: Arc::new(SharedIndexCache::new()),
            live_snapshots: Mutex::new(Vec::new()),
            fault: Mutex::new(None),
        });
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..cfg.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("causality-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        CausalityService {
            shared,
            tx,
            handles,
        }
    }

    /// Enqueue a request, blocking while the queue is full (backpressure).
    pub fn submit(&self, request: ExplainRequest) -> Result<PendingExplain, ServiceError> {
        validate(&request)?;
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Job::Request(Box::new(request), tx))
            .map_err(|_| ServiceError::Disconnected)?;
        StatsCounters::bump(&self.shared.stats.requests);
        Ok(PendingExplain { rx })
    }

    /// Enqueue a request without blocking; [`ServiceError::QueueFull`]
    /// when the bounded queue has no room.
    pub fn try_submit(&self, request: ExplainRequest) -> Result<PendingExplain, ServiceError> {
        validate(&request)?;
        let (tx, rx) = mpsc::channel();
        match self.tx.try_send(Job::Request(Box::new(request), tx)) {
            Ok(()) => {
                StatsCounters::bump(&self.shared.stats.requests);
                Ok(PendingExplain { rx })
            }
            Err(TrySendError::Full(_)) => Err(ServiceError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Submit and wait: the blocking convenience call.
    pub fn explain(&self, request: ExplainRequest) -> Result<ExplainResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Pin the current snapshot (for ad-hoc reads outside the pool).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.store.current()
    }

    /// Publish a whole new database as the next snapshot version.
    pub fn publish(&self, db: Database) -> u64 {
        self.shared.store.publish(db).version()
    }

    /// Copy-on-write update of the current snapshot; returns the new
    /// version. In-flight requests keep their pinned older snapshots.
    pub fn update(&self, f: impl FnOnce(&mut Database)) -> u64 {
        self.shared.store.update(f).version()
    }

    /// Install a chaos-testing fault: every request the predicate
    /// matches **panics** inside the worker that computes it. The pool
    /// must isolate the blast radius — the matched request resolves to
    /// [`ServiceError::Panicked`], the panic is counted in
    /// [`ServiceStats::panics_caught`], and every worker keeps serving.
    /// Used by the panic-isolation regression tests; also handy for
    /// game-day drills against a staging deployment.
    pub fn inject_fault(&self, hook: impl Fn(&ExplainRequest) -> bool + Send + Sync + 'static) {
        *lock_unpoisoned(&self.shared.fault) = Some(Box::new(hook));
    }

    /// Remove the fault installed by [`CausalityService::inject_fault`].
    pub fn clear_faults(&self) {
        *lock_unpoisoned(&self.shared.fault) = None;
    }

    /// A point-in-time view of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot(
            self.shared.cfg.workers,
            self.shared.store.version(),
            self.shared.index_cache.len() as u64,
        )
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for _ in 0..self.handles.len() {
            // Blocks while the queue is full; workers are draining it.
            let _ = self.tx.send(Job::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CausalityService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Reject malformed requests at submit time: grounding must succeed, so a
/// worker can never hit an answer/head mismatch mid-computation.
fn validate(request: &ExplainRequest) -> Result<(), ServiceError> {
    request
        .query
        .try_ground(&request.answer)
        .map(|_| ())
        .map_err(|e| ServiceError::InvalidRequest(e.to_string()))
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        let mut saw_shutdown = false;
        let mut batch: Vec<(ExplainRequest, Sender<ExplainResponse>)> = Vec::new();
        {
            let rx = lock_unpoisoned(rx);
            match rx.recv() {
                Ok(Job::Request(req, tx)) => batch.push((*req, tx)),
                Ok(Job::Shutdown) | Err(_) => return,
            }
            while batch.len() < shared.cfg.batch_max {
                match rx.try_recv() {
                    Ok(Job::Request(req, tx)) => batch.push((*req, tx)),
                    Ok(Job::Shutdown) => {
                        saw_shutdown = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        process_batch(shared, batch);
        if saw_shutdown {
            return;
        }
    }
}

/// Evaluate one batch against a single pinned snapshot: group identical
/// requests, serve them from the responsibility cache when possible, and
/// compute each distinct miss exactly once.
fn process_batch(shared: &Shared, batch: Vec<(ExplainRequest, Sender<ExplainResponse>)>) {
    StatsCounters::bump(&shared.stats.batches);
    StatsCounters::add(&shared.stats.batched_requests, batch.len() as u64);

    let snapshot = shared.store.current();
    let version = snapshot.version();
    let index_cache = shared.index_cache_for(&snapshot);

    // Coalesce identical requests, preserving first-seen order.
    let mut order: Vec<ExplainRequest> = Vec::new();
    let mut groups: HashMap<ExplainRequest, Vec<Sender<ExplainResponse>>> = HashMap::new();
    for (request, tx) in batch {
        let entry = groups.entry(request.clone()).or_default();
        if entry.is_empty() {
            order.push(request);
        }
        entry.push(tx);
    }

    for request in order {
        let senders = groups.remove(&request).expect("grouped senders");
        // Key on the content stamps of exactly the relations the query
        // reads: a hit may have been computed under an older snapshot
        // version — sound as long as those relations are untouched.
        let key = resp_fingerprint(&snapshot, &request).map(|f| (f, request.clone()));
        let cached = key.as_ref().and_then(|key| {
            let mut cache = lock_unpoisoned(&shared.resp_cache);
            cache.get(key).cloned()
        });
        // Per-request accounting: a hit group is all hits; a miss group is
        // one fresh computation plus coalesced riders.
        let (result, cache_hit) = match cached {
            Some(explanation) => {
                StatsCounters::add(&shared.stats.cache_hits, senders.len() as u64);
                (Ok(explanation), true)
            }
            None => {
                StatsCounters::bump(&shared.stats.cache_misses);
                StatsCounters::add(&shared.stats.coalesced, senders.len() as u64 - 1);
                let computed = compute_isolated(shared, &snapshot, &index_cache, &request);
                if let (Some(key), Ok(explanation)) = (key, &computed) {
                    lock_unpoisoned(&shared.resp_cache).insert(key, explanation.clone());
                }
                (computed, false)
            }
        };
        for tx in senders {
            // A requester that dropped its handle is not an error.
            let _ = tx.send(ExplainResponse {
                result: result.clone(),
                snapshot_version: version,
                cache_hit,
            });
        }
    }
}

/// [`compute`] behind a panic boundary. A panicking job must cost
/// exactly one response, not the worker (and with it the whole pool —
/// every worker shares the queue mutex a dying thread would poison):
/// the panic is caught, counted, and converted into
/// [`ServiceError::Panicked`] for the requester.
fn compute_isolated(
    shared: &Shared,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
) -> Result<Explanation, ServiceError> {
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        // Evaluate the chaos hook before panicking so the fault lock is
        // released by the time the unwind starts.
        let inject = lock_unpoisoned(&shared.fault)
            .as_ref()
            .is_some_and(|hook| hook(request));
        if inject {
            panic!("fault injected by chaos hook");
        }
        compute(shared, snapshot, index_cache, request)
    }));
    guarded.unwrap_or_else(|payload| {
        StatsCounters::bump(&shared.stats.panics_caught);
        Err(ServiceError::Panicked(panic_message(payload.as_ref())))
    })
}

/// Best-effort rendering of a caught panic payload (panics carry a
/// `&str` or `String` unless raised with a custom payload).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn compute(
    shared: &Shared,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
) -> Result<Explanation, ServiceError> {
    let explainer = Explainer::new(snapshot.database(), &request.query)
        .with_method(request.method)
        .with_index_cache(Arc::clone(index_cache));
    match request.kind {
        ExplainKind::WhySo => Ok(explainer.why(&request.answer)?),
        ExplainKind::WhyNo => Ok(explainer.why_not(&request.answer)?),
        ExplainKind::RankTopK(k) => {
            // The top-k path: upper-bound screening skips candidates
            // that can no longer enter the top k, and the surviving
            // solves fan out over `rank_parallelism` threads.
            let (explanation, rank_stats) = explainer
                .with_parallelism(shared.cfg.rank_parallelism)
                .why_top_k(&request.answer, k)?;
            StatsCounters::bump(&shared.stats.rank_tasks);
            StatsCounters::add(&shared.stats.topk_pruned, rank_stats.pruned as u64);
            Ok(explanation)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, ConjunctiveQuery, Schema, Value};

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
    }

    #[test]
    fn service_matches_direct_explainer() {
        let svc = CausalityService::new(example_2_2());
        let q = query();
        let resp = svc
            .explain(ExplainRequest::why_so(q.clone(), vec![Value::str("a4")]))
            .unwrap();
        assert_eq!(resp.snapshot_version, 1);
        assert!(!resp.cache_hit);
        let served = resp.expect_explanation();

        let db = example_2_2();
        let direct = Explainer::new(&db, &q).why(&[Value::str("a4")]).unwrap();
        assert_eq!(served, direct, "service output is bit-identical");
        svc.shutdown();
    }

    #[test]
    fn responsibility_cache_hits_are_identical() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        let cold = svc.explain(req.clone()).unwrap();
        let warm = svc.explain(req).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(
            cold.expect_explanation(),
            warm.expect_explanation(),
            "cache hit is bit-identical to the cold answer"
        );
        let stats = svc.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn why_no_and_top_k_kinds() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        let svc = CausalityService::new(db);
        let q = query();

        let whyno = svc
            .explain(ExplainRequest::why_no(q.clone(), vec![Value::int(1)]))
            .unwrap()
            .expect_explanation();
        assert_eq!(whyno.causes.len(), 1);
        assert_eq!(whyno.causes[0].rho, 1.0);

        let svc2 = CausalityService::new(example_2_2());
        let top1 = svc2
            .explain(ExplainRequest::rank_top_k(q, vec![Value::str("a4")], 1))
            .unwrap()
            .expect_explanation();
        assert_eq!(top1.causes.len(), 1, "truncated to k");
    }

    #[test]
    fn publish_serves_new_version_and_keys_cache_by_version() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let v1 = svc.explain(req.clone()).unwrap();
        assert_eq!(v1.snapshot_version, 1);

        // Remove S(a1): answer a2 loses its only witness.
        let version = svc.update(|db| {
            let s = db.relation_id("S").unwrap();
            let row = db.relation(s).find(&tup!["a1"]).unwrap();
            db.relation_mut(s).set_endogenous(row, false);
        });
        assert_eq!(version, 2);

        let v2 = svc.explain(req).unwrap();
        assert_eq!(v2.snapshot_version, 2);
        assert!(!v2.cache_hit, "the write touched S, so the key moved");
        // S(a1) now exogenous: it can no longer be a cause; only R(a2,a1)
        // remains, and with S(a1) always present it is counterfactual.
        let explanation = v2.expect_explanation();
        assert_eq!(explanation.causes.len(), 1);
        assert_eq!(explanation.causes[0].relation, "R");
    }

    #[test]
    fn invalid_requests_are_rejected_without_killing_workers() {
        let svc = CausalityService::new(example_2_2());
        let q = query();
        let bad = ExplainRequest::why_so(q.clone(), Vec::<Value>::new());
        assert!(matches!(
            svc.submit(bad),
            Err(ServiceError::InvalidRequest(_))
        ));
        // Head constants must agree with the answer.
        let qc = ConjunctiveQuery::parse("p('fixed') :- S(y)").unwrap();
        let bad = ExplainRequest::why_so(qc, vec![Value::str("other")]);
        assert!(matches!(
            svc.submit(bad),
            Err(ServiceError::InvalidRequest(_))
        ));
        // The pool is still alive and serving.
        let ok = svc
            .explain(ExplainRequest::why_so(q, vec![Value::str("a2")]))
            .unwrap();
        assert_eq!(ok.expect_explanation().causes.len(), 2);
    }

    #[test]
    fn many_concurrent_submitters_all_get_answers() {
        let svc = Arc::new(CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                workers: 4,
                queue_capacity: 8,
                batch_max: 4,
                ..ServiceConfig::default()
            },
        ));
        let answers = ["a2", "a3", "a4"];
        std::thread::scope(|scope| {
            for i in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for j in 0..10 {
                        let a = answers[(i + j) % answers.len()];
                        let resp = svc
                            .explain(ExplainRequest::why_so(query(), vec![Value::str(a)]))
                            .unwrap();
                        let explanation = resp.expect_explanation();
                        assert!(!explanation.causes.is_empty(), "answer {a}");
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 80);
        assert_eq!(stats.batched_requests, 80, "every request was served");
        assert_eq!(
            stats.cache_hits + stats.cache_misses + stats.coalesced,
            80,
            "every request is a hit, a fresh computation, or a rider"
        );
        assert!(stats.cache_misses >= 3, "three distinct keys computed");
        assert!(
            stats.cache_hits + stats.coalesced >= 80 - stats.cache_misses,
            "the rest were served without recomputation"
        );
    }

    #[test]
    fn cache_hits_survive_writes_to_unrelated_relations() {
        // The query reads R and S; T is unrelated write traffic.
        let mut db = example_2_2();
        let t = db.add_relation(Schema::new("T", &["z"]));
        db.insert_endo(t, tup![0]);
        let svc = CausalityService::new(db);
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);

        let cold = svc.explain(req.clone()).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.snapshot_version, 1);

        let version = svc.update(|db| {
            let t = db.relation_id("T").unwrap();
            db.insert_endo(t, tup![1]);
        });
        assert_eq!(version, 2);

        // New snapshot version — but R and S kept their content stamps,
        // so both cache layers stay warm.
        let warm = svc.explain(req).unwrap();
        assert_eq!(warm.snapshot_version, 2);
        assert!(warm.cache_hit, "unrelated write must not evict the answer");
        assert_eq!(cold.expect_explanation(), warm.expect_explanation());
        let stats = svc.stats();
        assert_eq!(
            stats.index_evictions, 0,
            "no touched relation left the window, nothing to evict"
        );
    }

    #[test]
    fn index_retention_evicts_only_stale_relation_versions() {
        let svc = CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                cached_versions: 2,
                ..ServiceConfig::default()
            },
        );
        let req = |a: &str| ExplainRequest::why_so(query(), vec![Value::str(a)]);
        svc.explain(req("a2")).unwrap();
        let baseline = svc.stats().index_entries;
        assert!(baseline > 0, "cold call built indexes");

        // Each round rewrites S, pushing its previous content stamp out
        // of the 2-version retention window; R is never touched.
        for i in 0..3 {
            svc.update(|db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, tup![format!("b{i}")]);
            });
            svc.explain(req("a2")).unwrap();
        }
        let stats = svc.stats();
        assert!(stats.index_evictions > 0, "stale S indexes were evicted");
        assert!(
            stats.index_entries <= baseline + 2,
            "cache holds R's one live index plus at most the retained S versions, \
             got {} entries",
            stats.index_entries
        );
    }

    #[test]
    fn panicking_job_gets_an_error_and_the_pool_survives() {
        let svc = CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        svc.inject_fault(|req| req.answer == vec![Value::str("a3")]);
        let poisoned = svc
            .explain(ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        match poisoned.result {
            Err(ServiceError::Panicked(msg)) => {
                assert!(msg.contains("fault injected"), "got: {msg}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Every worker still serves, including the one that caught the
        // panic (more requests than workers).
        svc.clear_faults();
        for _ in 0..4 {
            let ok = svc
                .explain(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
                .unwrap();
            assert!(ok.result.is_ok());
        }
        assert_eq!(svc.stats().panics_caught, 1);
    }

    #[test]
    fn panicked_results_are_not_cached() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        svc.inject_fault(|_| true);
        assert!(matches!(
            svc.explain(req.clone()).unwrap().result,
            Err(ServiceError::Panicked(_))
        ));
        svc.clear_faults();
        let healed = svc.explain(req).unwrap();
        assert!(healed.result.is_ok(), "the request recomputes cleanly");
        assert!(!healed.cache_hit, "the panicked attempt left no entry");
    }

    #[test]
    fn poisoned_caches_are_recovered_not_fatal() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        svc.explain(req.clone()).unwrap();
        // Poison resp_cache and live_snapshots by panicking mid-hold.
        let shared = Arc::clone(&svc.shared);
        let _ = std::thread::spawn(move || {
            let _cache = shared.resp_cache.lock().unwrap();
            let _live = shared.live_snapshots.lock().unwrap();
            panic!("poison the service mutexes");
        })
        .join();
        assert!(svc.shared.resp_cache.lock().is_err(), "cache is poisoned");
        // Serving continues: lock recovery hands back the intact state.
        let warm = svc.explain(req).unwrap();
        assert!(warm.result.is_ok());
        assert!(warm.cache_hit, "recovered cache still serves its entries");
    }

    #[test]
    fn rank_top_k_reports_pruning_stats() {
        // q :- A(x), B(y): A(1) is counterfactual; B(1), B(2) are ρ =
        // 1/2 and provably out of the top 1 once A(1) is computed.
        let mut db = Database::new();
        let a = db.add_relation(Schema::new("A", &["x"]));
        let b = db.add_relation(Schema::new("B", &["y"]));
        db.insert_endo(a, tup![1]);
        db.insert_endo(b, tup![1]);
        db.insert_endo(b, tup![2]);
        // rank_parallelism: 1 keeps the pruned count deterministic —
        // with concurrent solvers a B candidate can finish before A(1)
        // and legitimately escape the screen (tests/ covers the
        // parallel-served path; the output is identical either way).
        let svc = CausalityService::with_config(
            db,
            ServiceConfig {
                rank_parallelism: 1,
                ..ServiceConfig::default()
            },
        );
        let q = ConjunctiveQuery::parse("q :- A(x), B(y)").unwrap();
        let top1 = svc
            .explain(ExplainRequest::rank_top_k(q, Vec::<Value>::new(), 1))
            .unwrap()
            .expect_explanation();
        assert_eq!(top1.causes.len(), 1);
        assert_eq!(top1.causes[0].rho, 1.0);
        let stats = svc.stats();
        assert_eq!(stats.rank_tasks, 1);
        assert!(stats.topk_pruned >= 1, "stats: {stats:?}");
    }

    #[test]
    fn try_submit_and_pending_timeout() {
        let svc = CausalityService::new(example_2_2());
        let pending = svc
            .try_submit(ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        let resp = pending
            .wait_timeout(std::time::Duration::from_secs(30))
            .unwrap();
        assert!(resp.result.is_ok());
    }
}
