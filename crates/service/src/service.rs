//! The single-shard concurrent explanation service (the PR 2 API).
//!
//! [`CausalityService`] wraps exactly one `Shard`
//! hosting exactly one tenant: the worker pool, batching, coalescing,
//! snapshot store, index cache, and responsibility LRU all live in the
//! shard/worker layers shared with the multi-tenant
//! [`ShardedService`](crate::ShardedService). What this facade adds is
//! the original single-database ergonomics: `submit` blocks for
//! backpressure (no admission control), `try_submit` reports
//! [`ServiceError::QueueFull`], and writes go straight to the one store.

use crate::request::{ExplainRequest, ExplainResponse, PendingExplain, ServiceError};
use crate::shard::{lock_unpoisoned, validate, Shard, TenantKey};
use crate::stats::ServiceStats;
use crate::worker::Job;
use causality_engine::{Database, Snapshot, SnapshotStore};
use causality_telemetry::{metrics_jsonl, prometheus_text, traces_jsonl, RequestTrace, Stage};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub use crate::shard::ServiceConfig;

/// The one tenant a single-shard service hosts.
const SOLE_TENANT: TenantKey = 0;

/// A concurrent explanation service over one logical database.
///
/// ```
/// use causality_service::{CausalityService, ExplainRequest};
/// use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
///
/// let svc = CausalityService::new(example_2_2());
/// let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
/// let resp = svc
///     .explain(ExplainRequest::why_so(q, vec![Value::str("a2")]))
///     .unwrap();
/// assert_eq!(resp.expect_explanation().causes.len(), 2);
/// ```
pub struct CausalityService {
    pub(crate) shard: Shard,
    store: Arc<SnapshotStore>,
}

impl CausalityService {
    /// Start a service over `db` with the default configuration.
    pub fn new(db: Database) -> Self {
        CausalityService::with_config(db, ServiceConfig::default())
    }

    /// Start a service with explicit tuning knobs.
    pub fn with_config(db: Database, cfg: ServiceConfig) -> Self {
        // No tier-shared breaker registry: the single-shard facade keeps
        // the PR 2 semantics (no admission control, no traffic shedding).
        let shard = Shard::spawn(cfg, usize::MAX, "causality", None);
        let store = shard.add_tenant(SOLE_TENANT, db);
        CausalityService { shard, store }
    }

    /// Validate, build the job, and (when sampled) open its trace through
    /// the Admission → Dispatch → ShardQueue stages.
    fn prepare(
        &self,
        request: ExplainRequest,
        budget: Option<Duration>,
    ) -> Result<(Job, PendingExplain), ServiceError> {
        let t0 = Instant::now();
        validate(&request)?;
        let mut trace = self.shard.core.telemetry.start(t0);
        if let Some(tb) = trace.as_deref_mut() {
            tb.set_request(
                0,
                SOLE_TENANT,
                request.kind.label(),
                request.query.atoms().len(),
            );
            tb.begin(Stage::Dispatch);
        }
        let (tx, rx) = mpsc::channel();
        let enqueued = Instant::now();
        let deadline = budget.map(|budget| enqueued + budget);
        if let Some(tb) = trace.as_deref_mut() {
            if let Some(deadline) = deadline {
                tb.set_deadline(deadline);
            }
            tb.begin(Stage::ShardQueue);
        }
        Ok((
            Job {
                tenant: SOLE_TENANT,
                request,
                deadline,
                enqueued,
                tx,
                trace,
            },
            PendingExplain { rx },
        ))
    }

    /// Enqueue a request, blocking while the queue is full (backpressure).
    pub fn submit(&self, request: ExplainRequest) -> Result<PendingExplain, ServiceError> {
        let (job, pending) = self.prepare(request, None)?;
        self.shard.submit_blocking(job)?;
        Ok(pending)
    }

    /// Enqueue a request without blocking; [`ServiceError::QueueFull`]
    /// when the bounded queue has no room.
    pub fn try_submit(&self, request: ExplainRequest) -> Result<PendingExplain, ServiceError> {
        let (job, pending) = self.prepare(request, None)?;
        self.shard.try_submit(job)?;
        Ok(pending)
    }

    /// Enqueue a request with a per-request **deadline budget**: if the
    /// budget expires before a worker picks the job up, it resolves to
    /// [`ServiceError::DeadlineExceeded`] (counted in
    /// [`ServiceStats::deadline_misses`]) instead of occupying a worker.
    pub fn submit_with_deadline(
        &self,
        request: ExplainRequest,
        budget: Duration,
    ) -> Result<PendingExplain, ServiceError> {
        let (job, pending) = self.prepare(request, Some(budget))?;
        self.shard.submit_blocking(job)?;
        Ok(pending)
    }

    /// Submit and wait: the blocking convenience call.
    pub fn explain(&self, request: ExplainRequest) -> Result<ExplainResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Pin the current snapshot (for ad-hoc reads outside the pool).
    pub fn snapshot(&self) -> Snapshot {
        self.store.current()
    }

    /// Publish a whole new database as the next snapshot version.
    pub fn publish(&self, db: Database) -> u64 {
        self.store.publish(db).version()
    }

    /// Copy-on-write update of the current snapshot; returns the new
    /// version. In-flight requests keep their pinned older snapshots.
    pub fn update(&self, f: impl FnOnce(&mut Database)) -> u64 {
        self.store.update(f).version()
    }

    /// Install a chaos-testing fault: every request the predicate
    /// matches **panics** inside the worker that computes it. The pool
    /// must isolate the blast radius — the matched request resolves to
    /// [`ServiceError::Panicked`], the panic is counted in
    /// [`ServiceStats::panics_caught`], and every worker keeps serving.
    /// Used by the panic-isolation regression tests; also handy for
    /// game-day drills against a staging deployment.
    pub fn inject_fault(&self, hook: impl Fn(&ExplainRequest) -> bool + Send + Sync + 'static) {
        *lock_unpoisoned(&self.shard.core.fault) = Some(Box::new(hook));
        self.shard.core.chaos_armed.store(true, Ordering::Release);
    }

    /// Install a chaos/load-testing stall: every request the hook
    /// matches sleeps for the returned duration inside its worker before
    /// computing — simulating slow computations (to fill queues, expire
    /// deadlines, or exercise admission control) without burning CPU.
    pub fn inject_delay(
        &self,
        hook: impl Fn(&ExplainRequest) -> Option<Duration> + Send + Sync + 'static,
    ) {
        *lock_unpoisoned(&self.shard.core.delay) = Some(Box::new(hook));
        self.shard.core.chaos_armed.store(true, Ordering::Release);
    }

    /// Remove the hooks installed by [`CausalityService::inject_fault`]
    /// and [`CausalityService::inject_delay`].
    pub fn clear_faults(&self) {
        *lock_unpoisoned(&self.shard.core.fault) = None;
        *lock_unpoisoned(&self.shard.core.delay) = None;
        self.shard.core.chaos_armed.store(false, Ordering::Release);
    }

    /// A point-in-time view of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shard.core.stats.snapshot(
            self.shard.core.cfg.workers,
            self.store.version(),
            self.shard.core.index_cache.len() as u64,
        )
    }

    /// Like [`CausalityService::stats`], but also zeroes every monotone
    /// counter and the latency histogram (the queue-depth gauge stays
    /// live), so successive measurement phases — warmup vs timed window
    /// in the load harness — never bleed together.
    pub fn snapshot_and_reset(&self) -> ServiceStats {
        self.shard.core.stats.snapshot_and_reset(
            self.shard.core.cfg.workers,
            self.store.version(),
            self.shard.core.index_cache.len() as u64,
        )
    }

    /// Prometheus text exposition of the service's metrics registry
    /// (single shard, labelled `shard="0"`).
    pub fn export_metrics(&self) -> String {
        prometheus_text(&[self.shard.core.registry.as_ref()], "causality_")
    }

    /// The same metric samples as [`CausalityService::export_metrics`],
    /// rendered as JSONL.
    pub fn export_metrics_jsonl(&self) -> String {
        metrics_jsonl(&[self.shard.core.registry.as_ref()])
    }

    /// The sampled traces currently retained in the ring, oldest first.
    /// Non-draining: exporting twice returns the same traces.
    pub fn recent_traces(&self) -> Vec<RequestTrace> {
        self.shard.core.telemetry.traces()
    }

    /// [`CausalityService::recent_traces`] rendered as JSONL.
    pub fn export_traces(&self) -> String {
        traces_jsonl(&self.recent_traces())
    }

    /// The explanation slow-log: traces whose total latency or deadline
    /// slack crossed the configured thresholds.
    pub fn slow_log_records(&self) -> Vec<RequestTrace> {
        self.shard.core.telemetry.slow_log()
    }

    /// [`CausalityService::slow_log_records`] rendered as JSONL.
    pub fn export_slow_log(&self) -> String {
        traces_jsonl(&self.slow_log_records())
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(self) {
        self.shard.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, ConjunctiveQuery, Schema, Value};

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
    }

    #[test]
    fn service_matches_direct_explainer() {
        use causality_core::explain::Explainer;
        let svc = CausalityService::new(example_2_2());
        let q = query();
        let resp = svc
            .explain(ExplainRequest::why_so(q.clone(), vec![Value::str("a4")]))
            .unwrap();
        assert_eq!(resp.snapshot_version, 1);
        assert!(!resp.cache_hit);
        let served = resp.expect_explanation();

        let db = example_2_2();
        let direct = Explainer::new(&db, &q).why(&[Value::str("a4")]).unwrap();
        assert_eq!(served, direct, "service output is bit-identical");
        svc.shutdown();
    }

    #[test]
    fn responsibility_cache_hits_are_identical() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        let cold = svc.explain(req.clone()).unwrap();
        let warm = svc.explain(req).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(
            cold.expect_explanation(),
            warm.expect_explanation(),
            "cache hit is bit-identical to the cold answer"
        );
        let stats = svc.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(
            stats.latency_samples(),
            2,
            "every response is a latency sample"
        );
        assert!(stats.p99_us() >= stats.p50_us());
    }

    #[test]
    fn why_no_and_top_k_kinds() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        let svc = CausalityService::new(db);
        let q = query();

        let whyno = svc
            .explain(ExplainRequest::why_no(q.clone(), vec![Value::int(1)]))
            .unwrap()
            .expect_explanation();
        assert_eq!(whyno.causes.len(), 1);
        assert_eq!(whyno.causes[0].rho, 1.0);

        let svc2 = CausalityService::new(example_2_2());
        let top1 = svc2
            .explain(ExplainRequest::rank_top_k(q, vec![Value::str("a4")], 1))
            .unwrap()
            .expect_explanation();
        assert_eq!(top1.causes.len(), 1, "truncated to k");
    }

    #[test]
    fn publish_serves_new_version_and_keys_cache_by_version() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let v1 = svc.explain(req.clone()).unwrap();
        assert_eq!(v1.snapshot_version, 1);

        // Remove S(a1): answer a2 loses its only witness.
        let version = svc.update(|db| {
            let s = db.relation_id("S").unwrap();
            let row = db.relation(s).find(&tup!["a1"]).unwrap();
            db.relation_mut(s).set_endogenous(row, false);
        });
        assert_eq!(version, 2);

        let v2 = svc.explain(req).unwrap();
        assert_eq!(v2.snapshot_version, 2);
        assert!(!v2.cache_hit, "the write touched S, so the key moved");
        // S(a1) now exogenous: it can no longer be a cause; only R(a2,a1)
        // remains, and with S(a1) always present it is counterfactual.
        let explanation = v2.expect_explanation();
        assert_eq!(explanation.causes.len(), 1);
        assert_eq!(explanation.causes[0].relation, "R");
    }

    #[test]
    fn invalid_requests_are_rejected_without_killing_workers() {
        let svc = CausalityService::new(example_2_2());
        let q = query();
        let bad = ExplainRequest::why_so(q.clone(), Vec::<Value>::new());
        assert!(matches!(
            svc.submit(bad),
            Err(ServiceError::InvalidRequest(_))
        ));
        // Head constants must agree with the answer.
        let qc = ConjunctiveQuery::parse("p('fixed') :- S(y)").unwrap();
        let bad = ExplainRequest::why_so(qc, vec![Value::str("other")]);
        assert!(matches!(
            svc.submit(bad),
            Err(ServiceError::InvalidRequest(_))
        ));
        // The pool is still alive and serving.
        let ok = svc
            .explain(ExplainRequest::why_so(q, vec![Value::str("a2")]))
            .unwrap();
        assert_eq!(ok.expect_explanation().causes.len(), 2);
    }

    #[test]
    fn many_concurrent_submitters_all_get_answers() {
        let svc = Arc::new(CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                workers: 4,
                queue_capacity: 8,
                batch_max: 4,
                ..ServiceConfig::default()
            },
        ));
        let answers = ["a2", "a3", "a4"];
        std::thread::scope(|scope| {
            for i in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for j in 0..10 {
                        let a = answers[(i + j) % answers.len()];
                        let resp = svc
                            .explain(ExplainRequest::why_so(query(), vec![Value::str(a)]))
                            .unwrap();
                        let explanation = resp.expect_explanation();
                        assert!(!explanation.causes.is_empty(), "answer {a}");
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 80);
        assert_eq!(stats.batched_requests, 80, "every request was served");
        assert_eq!(
            stats.cache_hits + stats.cache_misses + stats.coalesced,
            80,
            "every request is a hit, a fresh computation, or a rider"
        );
        assert!(stats.cache_misses >= 3, "three distinct keys computed");
        assert!(
            stats.cache_hits + stats.coalesced >= 80 - stats.cache_misses,
            "the rest were served without recomputation"
        );
        assert_eq!(stats.latency_samples(), 80, "one sample per response");
        assert_eq!(stats.queue_depth, 0, "nothing left enqueued");
    }

    #[test]
    fn cache_hits_survive_writes_to_unrelated_relations() {
        // The query reads R and S; T is unrelated write traffic.
        let mut db = example_2_2();
        let t = db.add_relation(Schema::new("T", &["z"]));
        db.insert_endo(t, tup![0]);
        let svc = CausalityService::new(db);
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);

        let cold = svc.explain(req.clone()).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.snapshot_version, 1);

        let version = svc.update(|db| {
            let t = db.relation_id("T").unwrap();
            db.insert_endo(t, tup![1]);
        });
        assert_eq!(version, 2);

        // New snapshot version — but R and S kept their content stamps,
        // so both cache layers stay warm.
        let warm = svc.explain(req).unwrap();
        assert_eq!(warm.snapshot_version, 2);
        assert!(warm.cache_hit, "unrelated write must not evict the answer");
        assert_eq!(cold.expect_explanation(), warm.expect_explanation());
        let stats = svc.stats();
        assert_eq!(
            stats.index_evictions, 0,
            "no touched relation left the window, nothing to evict"
        );
    }

    #[test]
    fn index_retention_evicts_only_stale_relation_versions() {
        let svc = CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                cached_versions: 2,
                ..ServiceConfig::default()
            },
        );
        let req = |a: &str| ExplainRequest::why_so(query(), vec![Value::str(a)]);
        svc.explain(req("a2")).unwrap();
        let baseline = svc.stats().index_entries;
        assert!(baseline > 0, "cold call built indexes");

        // Each round rewrites S, pushing its previous content stamp out
        // of the 2-version retention window; R is never touched.
        for i in 0..3 {
            svc.update(|db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, tup![format!("b{i}")]);
            });
            svc.explain(req("a2")).unwrap();
        }
        let stats = svc.stats();
        assert!(stats.index_evictions > 0, "stale S indexes were evicted");
        assert!(
            stats.index_entries <= baseline + 2,
            "cache holds R's one live index plus at most the retained S versions, \
             got {} entries",
            stats.index_entries
        );
    }

    #[test]
    fn panicking_job_gets_an_error_and_the_pool_survives() {
        let svc = CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        svc.inject_fault(|req| req.answer == vec![Value::str("a3")]);
        let poisoned = svc
            .explain(ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        match poisoned.result {
            Err(ServiceError::Panicked(msg)) => {
                assert!(msg.contains("fault injected"), "got: {msg}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Every worker still serves, including the one that caught the
        // panic (more requests than workers).
        svc.clear_faults();
        for _ in 0..4 {
            let ok = svc
                .explain(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
                .unwrap();
            assert!(ok.result.is_ok());
        }
        assert_eq!(svc.stats().panics_caught, 1);
    }

    #[test]
    fn panicked_results_are_not_cached() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        svc.inject_fault(|_| true);
        assert!(matches!(
            svc.explain(req.clone()).unwrap().result,
            Err(ServiceError::Panicked(_))
        ));
        svc.clear_faults();
        let healed = svc.explain(req).unwrap();
        assert!(healed.result.is_ok(), "the request recomputes cleanly");
        assert!(!healed.cache_hit, "the panicked attempt left no entry");
    }

    #[test]
    fn poisoned_caches_are_recovered_not_fatal() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        svc.explain(req.clone()).unwrap();
        // Poison resp_cache and live_snapshots by panicking mid-hold.
        let core = Arc::clone(&svc.shard.core);
        let _ = std::thread::spawn(move || {
            let _cache = core.resp_cache.lock().unwrap();
            let _live = core.live_snapshots.lock().unwrap();
            panic!("poison the service mutexes");
        })
        .join();
        assert!(
            svc.shard.core.resp_cache.lock().is_err(),
            "cache is poisoned"
        );
        // Serving continues: lock recovery hands back the intact state.
        let warm = svc.explain(req).unwrap();
        assert!(warm.result.is_ok());
        assert!(warm.cache_hit, "recovered cache still serves its entries");
    }

    #[test]
    fn rank_top_k_reports_pruning_stats() {
        // q :- A(x), B(y): A(1) is counterfactual; B(1), B(2) are ρ =
        // 1/2 and provably out of the top 1 once A(1) is computed.
        let mut db = Database::new();
        let a = db.add_relation(Schema::new("A", &["x"]));
        let b = db.add_relation(Schema::new("B", &["y"]));
        db.insert_endo(a, tup![1]);
        db.insert_endo(b, tup![1]);
        db.insert_endo(b, tup![2]);
        // rank_parallelism: 1 keeps the pruned count deterministic —
        // with concurrent solvers a B candidate can finish before A(1)
        // and legitimately escape the screen (tests/ covers the
        // parallel-served path; the output is identical either way).
        let svc = CausalityService::with_config(
            db,
            ServiceConfig {
                rank_parallelism: 1,
                ..ServiceConfig::default()
            },
        );
        let q = ConjunctiveQuery::parse("q :- A(x), B(y)").unwrap();
        let top1 = svc
            .explain(ExplainRequest::rank_top_k(q, Vec::<Value>::new(), 1))
            .unwrap()
            .expect_explanation();
        assert_eq!(top1.causes.len(), 1);
        assert_eq!(top1.causes[0].rho, 1.0);
        let stats = svc.stats();
        assert_eq!(stats.rank_tasks, 1);
        assert!(stats.topk_pruned >= 1, "stats: {stats:?}");
    }

    #[test]
    fn try_submit_and_pending_timeout() {
        let svc = CausalityService::new(example_2_2());
        let pending = svc
            .try_submit(ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        let resp = pending
            .wait_timeout(std::time::Duration::from_secs(30))
            .unwrap();
        assert!(resp.result.is_ok());
    }

    #[test]
    fn expired_deadline_yields_an_error_not_a_computation() {
        let svc = CausalityService::with_config(
            example_2_2(),
            ServiceConfig {
                workers: 1,
                // One job per pull: the blocker is drained (and stalls
                // the sole worker) strictly before the doomed request is
                // even looked at, making the expiry deterministic.
                batch_max: 1,
                ..ServiceConfig::default()
            },
        );
        // Stall the worker on a blocker request so the deadlined request
        // sits in the queue past its budget.
        svc.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(120))
        });
        let blocker = svc
            .submit(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
        let doomed = svc
            .submit_with_deadline(
                ExplainRequest::why_so(query(), vec![Value::str("a3")]),
                Duration::from_millis(10),
            )
            .unwrap();
        assert!(matches!(
            doomed.wait().unwrap().result,
            Err(ServiceError::DeadlineExceeded)
        ));
        assert!(blocker.wait().unwrap().result.is_ok());
        let stats = svc.stats();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(
            stats.cache_misses, 1,
            "the expired request never reached a computation"
        );
        // A generous budget is met.
        svc.clear_faults();
        let fine = svc
            .submit_with_deadline(
                ExplainRequest::why_so(query(), vec![Value::str("a3")]),
                Duration::from_secs(30),
            )
            .unwrap();
        assert!(fine.wait().unwrap().result.is_ok());
    }

    #[test]
    fn snapshot_and_reset_separates_phases() {
        let svc = CausalityService::new(example_2_2());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        svc.explain(req.clone()).unwrap();
        let warmup = svc.snapshot_and_reset();
        assert_eq!(warmup.requests, 1);
        assert_eq!(warmup.cache_misses, 1);
        assert_eq!(warmup.latency_samples(), 1);

        // The measurement phase starts from zero — but the *caches* are
        // still warm: resetting counters must not cool the service.
        svc.explain(req).unwrap();
        let measured = svc.stats();
        assert_eq!(measured.requests, 1);
        assert_eq!(measured.cache_hits, 1, "cache survived the reset");
        assert_eq!(measured.cache_misses, 0);
        assert_eq!(measured.latency_samples(), 1);
    }
}
