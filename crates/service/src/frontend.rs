//! The front end of the sharded serving tier: bounded admission,
//! per-request deadline budgets, tenant-routed dispatch over N
//! independent [`shard`](crate::shard)s — and, since PR 9, the tier's
//! self-healing machinery (supervision, retries, circuit breakers, and
//! brownout degradation).
//!
//! ```text
//!        submit(tenant, request [, deadline budget])
//!                        │
//!              ┌─────────▼─────────┐
//!              │     front end     │  validate · breaker admit ·
//!              │                   │  brownout check · deadline stamp ·
//!              │                   │  admission (queue depth < limit,
//!              │                   │  else ServiceError::Overloaded)
//!              └─────────┬─────────┘
//!              ┌─────────▼─────────┐     ┌──────────────┐
//!              │     dispatch      │◀────│  supervisor  │ health ticks,
//!              └──┬───────┬───────┬┘     └──────────────┘ pool restarts
//!            ┌────▼──┐ ┌──▼────┐ ┌▼──────┐
//!            │shard 0│ │shard 1│ │shard N│   each: snapshot stores,
//!            │       │ │       │ │       │   worker pool, index cache,
//!            └───────┘ └───────┘ └───────┘   responsibility LRU, stats
//! ```
//!
//! Every shard is failure- and performance-isolated: a write burst, a
//! cache-evicting workload, or even a panicking job on one shard cannot
//! queue ahead of, evict, or crash another shard's traffic. The
//! supervisor closes the recovery loop on top of that isolation: a shard
//! whose workers wedge is quarantined, its pool restarted on the same
//! queue (loss-free by construction), and probed back to
//! [`HealthState::Healthy`]; retries and hedges route around it in the
//! meantime.

use crate::breaker::{Admit, BreakerConfig, BreakerRegistry};
use crate::chaos::FaultPlan;
use crate::clock::{Clock, SystemClock};
use crate::dispatch::{Dispatcher, TenantId};
use crate::request::{ExplainRequest, ExplainResponse, PendingExplain, ServiceError};
use crate::retry::{backoff, JitterRng, RetryPolicy};
use crate::shard::{lock_unpoisoned, validate, ServiceConfig, Shard};
use crate::stats::{FrontendStats, ServiceStats};
use crate::supervisor::{
    assess, HealthState, ShardSignals, ShardTracker, SupervisorConfig, Verdict,
};
use crate::worker::{anytime_routable, Job};
use causality_core::explain::Explainer;
use causality_core::resp::approx::ApproxBudget;
use causality_engine::{Database, Snapshot};
use causality_telemetry::{
    metrics_jsonl, prometheus_text, traces_jsonl, Counter, MetricsRegistry, RequestTrace, Stage,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the sharded tier.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Number of independent shards (min 1). Tenants are hashed onto
    /// shards by name; each shard runs its own worker pool of
    /// `shard.workers` threads, so total workers = `shards × shard.workers`.
    pub shards: usize,
    /// Per-shard queue-depth limit: a submit finding the target shard's
    /// queue at (or beyond) this depth is rejected with
    /// [`ServiceError::Overloaded`] instead of queueing — bounded
    /// admission keeps tail latency flat when an open-loop client
    /// outruns the tier.
    pub admission_limit: usize,
    /// Deadline budget stamped on every request submitted without an
    /// explicit one ([`None`] = no deadline).
    pub default_deadline: Option<Duration>,
    /// Retry/backoff/hedging policy used by
    /// [`ShardedService::explain_with_retry`]. Plain
    /// [`ShardedService::submit`]/[`ShardedService::explain`] never
    /// retry, so existing single-shot semantics are unchanged.
    pub retry: RetryPolicy,
    /// Per-tenant circuit breakers, shared across the tier's shards.
    /// [`BreakerConfig::disabled`] switches them off.
    pub breaker: BreakerConfig,
    /// Supervision-loop thresholds; `supervisor.tick == 0` disables the
    /// background health thread entirely.
    pub supervisor: SupervisorConfig,
    /// Tier-wide queued-request count at (or above) which the tier
    /// enters **brownout**: routable NP-hard requests are served inline
    /// with the zero-budget greedy bracket instead of queueing — a
    /// certified (if coarse) answer, never [`ServiceError::Overloaded`].
    /// `usize::MAX` (the default) disables brownout.
    pub brownout_high_water: usize,
    /// Tier-wide queued-request count at (or below) which an active
    /// brownout ends. Must sit below `brownout_high_water`; the gap is
    /// the hysteresis band that keeps the mode from flapping.
    pub brownout_low_water: usize,
    /// Per-shard tuning (worker count, queue bound, batch size, caches).
    pub shard: ServiceConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        let shard = ServiceConfig::default();
        TierConfig {
            shards: 4,
            admission_limit: shard.queue_capacity,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            supervisor: SupervisorConfig::default(),
            brownout_high_water: usize::MAX,
            brownout_low_water: 0,
            shard,
        }
    }
}

/// Per-shard plus aggregate stats of a [`ShardedService`].
#[derive(Clone, Debug)]
pub struct TierStats {
    /// One [`ServiceStats`] per shard, indexed by shard number.
    pub shards: Vec<ServiceStats>,
    /// Tier-level resilience counters (retries, hedges, breaker and
    /// brownout activity) that live in the front end, not in any shard.
    pub frontend: FrontendStats,
}

impl TierStats {
    /// The tier-wide roll-up: counters, queue depths, and latency
    /// histograms summed across shards (so `p50_us`/`p99_us` on the
    /// result are tier-wide percentiles, not averages of per-shard ones).
    /// An empty shard list aggregates to the all-zero identity rather
    /// than panicking.
    pub fn aggregate(&self) -> ServiceStats {
        let mut total = ServiceStats::empty();
        for shard in &self.shards {
            total.merge(shard);
        }
        total
    }
}

/// The front end's own metric counters, registered in the tier-level
/// registry (shard registries hold per-shard serving metrics only).
struct FrontendCounters {
    retries: Arc<Counter>,
    hedges: Arc<Counter>,
    reroutes: Arc<Counter>,
    brownout_served: Arc<Counter>,
    brownout_us: Arc<Counter>,
}

impl FrontendCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        FrontendCounters {
            retries: registry.counter("frontend_retries_total"),
            hedges: registry.counter("frontend_hedges_total"),
            reroutes: registry.counter("frontend_reroutes_total"),
            brownout_served: registry.counter("brownout_served_total"),
            brownout_us: registry.counter("brownout_us_total"),
        }
    }
}

/// A multi-tenant, sharded, admission-controlled explanation service.
///
/// Tenants register a database each and are routed (stably, by name) to
/// one of N shards; each shard owns its snapshot stores, worker pool,
/// join-index cache, and responsibility LRU, so one tenant's write or
/// traffic burst never evicts another shard's warm state.
///
/// ```
/// use causality_service::{ExplainRequest, ShardedService, TierConfig};
/// use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
///
/// let tier = ShardedService::new(TierConfig::default());
/// let alice = tier.add_tenant("alice", example_2_2()).unwrap();
/// let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
/// let resp = tier
///     .explain(alice, ExplainRequest::why_so(q, vec![Value::str("a2")]))
///     .unwrap();
/// assert_eq!(resp.expect_explanation().causes.len(), 2);
/// ```
pub struct ShardedService {
    shards: Arc<Vec<Shard>>,
    dispatcher: Dispatcher,
    cfg: TierConfig,
    breakers: Arc<BreakerRegistry>,
    tier_registry: Arc<MetricsRegistry>,
    fe: FrontendCounters,
    brownout: AtomicBool,
    brownout_entered: Mutex<Option<Instant>>,
    supervisor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl ShardedService {
    /// Start a tier with `cfg.shards` shards (each a full worker pool).
    pub fn new(cfg: TierConfig) -> Self {
        Self::with_clock(cfg, Arc::new(SystemClock))
    }

    /// [`ShardedService::new`] with an injected [`Clock`] driving the
    /// circuit breakers' open-window timing — the hook the transition
    /// tests use to step time manually instead of sleeping.
    pub fn with_clock(cfg: TierConfig, clock: Arc<dyn Clock>) -> Self {
        let shard_count = cfg.shards.max(1);
        let cfg = TierConfig {
            shards: shard_count,
            admission_limit: cfg.admission_limit.max(1),
            ..cfg
        };
        let tier_registry = Arc::new(MetricsRegistry::new());
        let breakers = Arc::new(BreakerRegistry::new(cfg.breaker, clock, &tier_registry));
        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..shard_count)
                .map(|i| {
                    Shard::spawn(
                        cfg.shard,
                        cfg.admission_limit,
                        &format!("shard{i}"),
                        Some(Arc::clone(&breakers)),
                    )
                })
                .collect(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = (cfg.supervisor.tick > Duration::ZERO)
            .then(|| spawn_supervisor(Arc::clone(&shards), cfg.supervisor, Arc::clone(&stop)));
        ShardedService {
            shards,
            dispatcher: Dispatcher::new(shard_count),
            cfg,
            breakers,
            fe: FrontendCounters::new(&tier_registry),
            tier_registry,
            brownout: AtomicBool::new(false),
            brownout_entered: Mutex::new(None),
            supervisor,
            stop,
        }
    }

    /// Register a tenant and install its database on the shard its name
    /// routes to. Fails with [`ServiceError::InvalidRequest`] if the
    /// name is already registered.
    pub fn add_tenant(&self, name: &str, db: Database) -> Result<TenantId, ServiceError> {
        let id = self.dispatcher.register(name).ok_or_else(|| {
            ServiceError::InvalidRequest(format!("tenant {name:?} is already registered"))
        })?;
        self.shards[id.shard()].add_tenant(id.key(), db);
        Ok(id)
    }

    /// Look up a registered tenant by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.dispatcher.lookup(name)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.dispatcher.tenant_count()
    }

    /// Live health classification of shard `i` (as last written by the
    /// supervisor), or `None` for an out-of-range index.
    pub fn shard_health(&self, shard: usize) -> Option<HealthState> {
        self.shards.get(shard).map(|s| s.core.health.get())
    }

    /// Submit through admission control with the tier's default deadline.
    ///
    /// Never blocks: past the shard's queue-depth limit the request is
    /// rejected with [`ServiceError::Overloaded`] (and counted), which
    /// is the backpressure signal of an open-loop front end. No retries:
    /// transient rejects surface to the caller, who can use
    /// [`ServiceError::retry_after_hint`] or switch to
    /// [`ShardedService::explain_with_retry`].
    pub fn submit(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
    ) -> Result<PendingExplain, ServiceError> {
        self.submit_inner(tenant, request, self.cfg.default_deadline)
    }

    /// Submit with an explicit per-request deadline budget: if the
    /// budget expires before a worker starts the job, it resolves to
    /// [`ServiceError::DeadlineExceeded`] instead of occupying a worker.
    pub fn submit_with_deadline(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        budget: Duration,
    ) -> Result<PendingExplain, ServiceError> {
        self.submit_inner(tenant, request, Some(budget))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        deadline: Option<Duration>,
    ) -> Result<PendingExplain, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.submit_routed(tenant, request, deadline, tenant.shard(), tx, None)?;
        Ok(PendingExplain { rx })
    }

    /// The one submission path every entry point funnels through:
    /// validation, breaker admission, the brownout check, trace start
    /// (with the PR 9 `retry` span when this is a backed-off retry), and
    /// the admitted enqueue onto shard `shard_idx`.
    fn submit_routed(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        deadline: Option<Duration>,
        shard_idx: usize,
        tx: mpsc::Sender<ExplainResponse>,
        retry_span: Option<(Instant, Duration)>,
    ) -> Result<(), ServiceError> {
        validate(&request)?;
        let shard = self
            .shards
            .get(shard_idx)
            .ok_or_else(|| ServiceError::InvalidRequest("foreign tenant id".to_string()))?;
        // Per-tenant circuit breaker: an open breaker sheds the request
        // before it can touch a queue (and before tracing — like an
        // invalid request, it never reaches a shard).
        if let Admit::No(retry_after) = self.breakers.admit(tenant.key()) {
            return Err(ServiceError::CircuitOpen { retry_after });
        }
        // Brownout: with the tier past its high-water mark, a routable
        // NP-hard request takes the certified zero-budget bracket inline
        // instead of joining a backlogged queue. The caller still gets a
        // response through its normal channel.
        if self.brownout_active() && anytime_routable(&request) {
            let response = self.brownout_response(shard, tenant, &request)?;
            let _ = tx.send(response);
            return Ok(());
        }
        // A retried submission's trace starts at the backoff wait so the
        // `retry` span (the wait itself) fits inside the trace window.
        let t0 = retry_span.map_or_else(Instant::now, |(start, _)| start);
        // The sampling decision (and the trace's Admission stage) belong
        // to the target shard; an invalid request never reaches one and
        // is never traced.
        let mut trace = shard.core.telemetry.start(t0);
        if let Some(tb) = trace.as_deref_mut() {
            tb.set_request(
                shard_idx,
                tenant.key(),
                request.kind.label(),
                request.query.atoms().len(),
            );
            if let Some((start, waited)) = retry_span {
                tb.record_span(Stage::Retry, start, waited);
            }
            tb.begin(Stage::Dispatch);
        }
        let enqueued = Instant::now();
        let mut job = Job {
            tenant: tenant.key(),
            request,
            deadline: deadline.map(|budget| enqueued + budget),
            enqueued,
            tx,
            trace: None,
        };
        if let Some(tb) = trace.as_deref_mut() {
            if let Some(deadline) = job.deadline {
                tb.set_deadline(deadline);
            }
            tb.begin(Stage::ShardQueue);
        }
        job.trace = trace;
        shard.submit_admitted(job)
    }

    /// Update and read the brownout state from the tier-wide queued
    /// total, with hysteresis: enter at `high_water`, leave at
    /// `low_water`. Time spent in the mode accrues to the
    /// `brownout_us_total` counter on exit.
    fn brownout_active(&self) -> bool {
        // Brownout off (the default): skip the per-submit gauge sweep.
        if self.cfg.brownout_high_water == usize::MAX {
            return false;
        }
        let depth: u64 = self
            .shards
            .iter()
            .map(|shard| shard.core.stats.queue_depth.get())
            .sum();
        let active = self.brownout.load(Ordering::Relaxed);
        if active && depth as usize <= self.cfg.brownout_low_water {
            self.brownout.store(false, Ordering::Relaxed);
            if let Some(entered) = lock_unpoisoned(&self.brownout_entered).take() {
                self.fe
                    .brownout_us
                    .add(entered.elapsed().as_micros() as u64);
            }
            return false;
        }
        if !active && depth as usize >= self.cfg.brownout_high_water {
            self.brownout.store(true, Ordering::Relaxed);
            *lock_unpoisoned(&self.brownout_entered) = Some(Instant::now());
            return true;
        }
        active
    }

    /// Serve a routable request inline on the caller's thread with the
    /// zero-budget anytime bracket — the brownout degradation path.
    fn brownout_response(
        &self,
        shard: &Shard,
        tenant: TenantId,
        request: &ExplainRequest,
    ) -> Result<ExplainResponse, ServiceError> {
        let store = shard
            .core
            .store(tenant.key())
            .ok_or_else(|| ServiceError::InvalidRequest("foreign tenant id".to_string()))?;
        let snapshot = store.current();
        let index_cache = shard.core.index_cache_for(tenant.key(), &snapshot);
        let explainer = Explainer::new(snapshot.database(), &request.query)
            .with_method(request.method)
            .with_index_cache(index_cache);
        let (explanation, _timing) =
            explainer.why_anytime(&request.answer, ApproxBudget::zero())?;
        self.fe.brownout_served.inc();
        Ok(ExplainResponse {
            result: Ok(explanation),
            snapshot_version: snapshot.version(),
            cache_hit: false,
        })
    }

    /// Submit and wait: the blocking convenience call. Single-shot — see
    /// [`ShardedService::explain_with_retry`] for the resilient variant.
    pub fn explain(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
    ) -> Result<ExplainResponse, ServiceError> {
        self.submit(tenant, request)?.wait()
    }

    /// Submit and wait with the tier's [`RetryPolicy`]: transient
    /// failures ([`ServiceError::is_retryable`]) are retried up to
    /// `max_attempts` times under seeded full-jitter exponential backoff
    /// (an [`ServiceError::Overloaded`] hint floors the wait), retries
    /// re-route away from unhealthy shards, and — when
    /// [`RetryPolicy::hedge_after`] is set — a response outstanding past
    /// that budget is hedged onto a healthy sibling shard, first answer
    /// wins. Terminal errors surface immediately.
    pub fn explain_with_retry(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
    ) -> Result<ExplainResponse, ServiceError> {
        let policy = self.cfg.retry;
        let attempts = policy.max_attempts.max(1);
        // Deterministic per (seed, tenant): replaying the same traffic
        // replays the same backoff schedule.
        let mut rng = JitterRng::new(policy.jitter_seed ^ tenant.key().rotate_left(17));
        let mut retry_span: Option<(Instant, Duration)> = None;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.attempt(tenant, request.clone(), retry_span.take()) {
                Ok(response) => match &response.result {
                    Err(e) if e.is_retryable() && attempt < attempts => e.clone(),
                    _ => return Ok(response),
                },
                Err(e) if e.is_retryable() && attempt < attempts => e,
                Err(e) => return Err(e),
            };
            let wait_start = Instant::now();
            let wait = backoff(&policy, &mut rng, attempt, err.retry_after_hint());
            std::thread::sleep(wait);
            self.fe.retries.inc();
            retry_span = Some((wait_start, wait));
        }
    }

    /// One submit-and-wait attempt of [`ShardedService::explain_with_retry`]:
    /// route (away from an unhealthy home on retries), submit, and wait —
    /// hedging onto a sibling if the response is slower than
    /// [`RetryPolicy::hedge_after`].
    fn attempt(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        retry_span: Option<(Instant, Duration)>,
    ) -> Result<ExplainResponse, ServiceError> {
        let home = tenant.shard();
        let mut target = home;
        if retry_span.is_some() && self.shard_health(home) != Some(HealthState::Healthy) {
            if let Some(fallback) = self.reroute_target(tenant, home) {
                target = fallback;
                self.fe.reroutes.inc();
            }
        }
        let (tx, rx) = mpsc::channel();
        self.submit_routed(
            tenant,
            request.clone(),
            self.cfg.default_deadline,
            target,
            tx.clone(),
            retry_span,
        )?;
        let Some(hedge_after) = self.cfg.retry.hedge_after else {
            return rx.recv().map_err(|_| ServiceError::Disconnected);
        };
        match rx.recv_timeout(hedge_after) {
            Ok(response) => Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Tail hedge: mirror the request onto a healthy sibling
                // sharing the same response channel; first answer wins,
                // the loser's send lands in a dropped receiver.
                if let Some(sibling) = self.reroute_target(tenant, target) {
                    if self
                        .submit_routed(
                            tenant,
                            request,
                            self.cfg.default_deadline,
                            sibling,
                            tx,
                            None,
                        )
                        .is_ok()
                    {
                        self.fe.hedges.inc();
                    }
                }
                rx.recv().map_err(|_| ServiceError::Disconnected)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Disconnected),
        }
    }

    /// Pick a healthy shard other than `avoid` for a retry or hedge of
    /// `tenant`'s traffic, installing the tenant's snapshot store there
    /// on first use. Sound across shards because both cache layers key
    /// on process-wide-unique relation content stamps (PR 3).
    fn reroute_target(&self, tenant: TenantId, avoid: usize) -> Option<usize> {
        let fallback = self.dispatcher.fallback_route(avoid, |candidate| {
            self.shards[candidate].core.health.get() == HealthState::Healthy
        })?;
        let store = self.shards[tenant.shard()].core.store(tenant.key())?;
        if self.shards[fallback].core.store(tenant.key()).is_none() {
            self.shards[fallback].install_store(tenant.key(), store);
        }
        Some(fallback)
    }

    /// Pin the tenant's current snapshot (for ad-hoc reads outside the
    /// pools).
    pub fn snapshot(&self, tenant: TenantId) -> Result<Snapshot, ServiceError> {
        Ok(self.store(tenant)?.current())
    }

    /// Publish a whole new database as the tenant's next snapshot
    /// version.
    pub fn publish(&self, tenant: TenantId, db: Database) -> Result<u64, ServiceError> {
        Ok(self.store(tenant)?.publish(db).version())
    }

    /// Copy-on-write update of the tenant's current snapshot; returns
    /// the new version. Only the touched relations are cloned, only the
    /// tenant's shard sees any cache movement, and in-flight requests
    /// keep their pinned older snapshots.
    pub fn update(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut Database),
    ) -> Result<u64, ServiceError> {
        Ok(self.store(tenant)?.update(f).version())
    }

    fn store(
        &self,
        tenant: TenantId,
    ) -> Result<std::sync::Arc<causality_engine::SnapshotStore>, ServiceError> {
        self.shards
            .get(tenant.shard())
            .and_then(|shard| shard.core.store(tenant.key()))
            .ok_or_else(|| ServiceError::InvalidRequest("foreign tenant id".to_string()))
    }

    /// Install a chaos-testing fault on **every** shard: matched
    /// requests panic inside their worker (each shard must contain the
    /// blast radius — see
    /// [`CausalityService::inject_fault`](crate::CausalityService::inject_fault)).
    /// To take down a single shard, match on something only that
    /// shard's tenants send.
    pub fn inject_fault(
        &self,
        hook: impl Fn(&ExplainRequest) -> bool + Send + Sync + Clone + 'static,
    ) {
        for shard in self.shards.iter() {
            *lock_unpoisoned(&shard.core.fault) = Some(Box::new(hook.clone()));
            shard.core.chaos_armed.store(true, Ordering::Release);
        }
    }

    /// Install a chaos/load-testing stall on every shard: matched
    /// requests sleep for the returned duration before computing.
    pub fn inject_delay(
        &self,
        hook: impl Fn(&ExplainRequest) -> Option<Duration> + Send + Sync + Clone + 'static,
    ) {
        for shard in self.shards.iter() {
            *lock_unpoisoned(&shard.core.delay) = Some(Box::new(hook.clone()));
            shard.core.chaos_armed.store(true, Ordering::Release);
        }
    }

    /// Arm a seeded [`FaultPlan`]: each shard consults the plan with its
    /// own computation ordinal, so one generated schedule drives every
    /// worker-side fault (panics, stalls, lock poisoning) of a chaos
    /// soak deterministically. Supersedes any hooks from
    /// [`ShardedService::inject_fault`] / [`ShardedService::inject_delay`]
    /// for ordinals the plan covers; disarm via
    /// [`ShardedService::clear_faults`].
    pub fn install_fault_plan(&self, plan: &FaultPlan) {
        for (i, shard) in self.shards.iter().enumerate() {
            let plan = plan.clone();
            *lock_unpoisoned(&shard.core.plan) =
                Some(Box::new(move |ordinal| plan.action_for(i, ordinal)));
            shard.core.chaos_armed.store(true, Ordering::Release);
        }
    }

    /// How many computations shard `i` has started — the ordinal clock a
    /// chaos harness reads to synchronize plan-external events (bursts,
    /// clock skew) with the plan's worker-side schedule.
    pub fn shard_progress(&self, shard: usize) -> u64 {
        self.shards
            .get(shard)
            .map(|s| s.core.ordinal.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Remove every hook installed by [`ShardedService::inject_fault`] /
    /// [`ShardedService::inject_delay`] /
    /// [`ShardedService::install_fault_plan`].
    pub fn clear_faults(&self) {
        for shard in self.shards.iter() {
            *lock_unpoisoned(&shard.core.fault) = None;
            *lock_unpoisoned(&shard.core.delay) = None;
            *lock_unpoisoned(&shard.core.plan) = None;
            shard.core.chaos_armed.store(false, Ordering::Release);
        }
    }

    fn frontend_stats(&self) -> FrontendStats {
        // An in-progress brownout reports its live elapsed time without
        // consuming it (the counter is only advanced at mode exit).
        let live_brownout_us = lock_unpoisoned(&self.brownout_entered)
            .as_ref()
            .map(|entered| entered.elapsed().as_micros() as u64)
            .unwrap_or(0);
        FrontendStats {
            retries: self.fe.retries.get(),
            hedges: self.fe.hedges.get(),
            breaker_trips: self.breakers.trips(),
            breaker_rejects: self.breakers.rejects(),
            brownout_served: self.fe.brownout_served.get(),
            brownout_us: self.fe.brownout_us.get() + live_brownout_us,
            reroutes: self.fe.reroutes.get(),
        }
    }

    /// Point-in-time per-shard stats (aggregate via
    /// [`TierStats::aggregate`]) plus the front end's resilience
    /// counters.
    pub fn stats(&self) -> TierStats {
        TierStats {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    shard.core.stats.snapshot(
                        shard.core.cfg.workers,
                        shard.core.max_version(),
                        shard.core.index_cache.len() as u64,
                    )
                })
                .collect(),
            frontend: self.frontend_stats(),
        }
    }

    /// Like [`ShardedService::stats`], but zeroes every shard's monotone
    /// counters and latency histogram (queue-depth gauges stay live) —
    /// the phase separator the load harness uses between warmup and the
    /// timed window. Front-end resilience counters and the lifecycle
    /// counters (`shard_restarts`, `shard_quarantines`) are reported but
    /// **not** reset: a phase boundary does not undo a restart.
    pub fn snapshot_and_reset(&self) -> TierStats {
        TierStats {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    shard.core.stats.snapshot_and_reset(
                        shard.core.cfg.workers,
                        shard.core.max_version(),
                        shard.core.index_cache.len() as u64,
                    )
                })
                .collect(),
            frontend: self.frontend_stats(),
        }
    }

    /// Prometheus text exposition of every shard's metrics registry:
    /// one `# TYPE` line per metric, per-shard series labelled
    /// `shard="i"`, histograms with cumulative `_bucket` / `_sum` /
    /// `_count` series.
    pub fn export_metrics(&self) -> String {
        let registries: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.core.registry.as_ref())
            .collect();
        prometheus_text(&registries, "causality_")
    }

    /// Prometheus text exposition of the **tier-level** registry — the
    /// front end's retry/hedge/brownout counters and the shared circuit
    /// breakers — under the `causality_tier_` prefix (one series each;
    /// the `shard="0"` label is an artifact of the exporter's per-slice
    /// labelling).
    pub fn export_frontend_metrics(&self) -> String {
        prometheus_text(&[self.tier_registry.as_ref()], "causality_tier_")
    }

    /// The same metric samples as [`ShardedService::export_metrics`],
    /// rendered as JSONL (one `{"shard":…,"metric":…}` object per line).
    pub fn export_metrics_jsonl(&self) -> String {
        let registries: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.core.registry.as_ref())
            .collect();
        metrics_jsonl(&registries)
    }

    /// The sampled traces currently retained across all shard rings,
    /// oldest-first within each shard. Non-draining: exporting twice
    /// returns the same traces.
    pub fn recent_traces(&self) -> Vec<RequestTrace> {
        self.shards
            .iter()
            .flat_map(|shard| shard.core.telemetry.traces())
            .collect()
    }

    /// [`ShardedService::recent_traces`] rendered as JSONL.
    pub fn export_traces(&self) -> String {
        traces_jsonl(&self.recent_traces())
    }

    /// The explanation slow-log across all shards: traces whose total
    /// latency or deadline slack crossed the configured thresholds.
    pub fn slow_log_records(&self) -> Vec<RequestTrace> {
        self.shards
            .iter()
            .flat_map(|shard| shard.core.telemetry.slow_log())
            .collect()
    }

    /// [`ShardedService::slow_log_records`] rendered as JSONL.
    pub fn export_slow_log(&self) -> String {
        traces_jsonl(&self.slow_log_records())
    }

    fn stop_supervisor(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }

    /// Stop the supervisor, stop accepting work, drain every shard's
    /// queue, and join all worker pools.
    pub fn shutdown(mut self) {
        self.stop_supervisor();
        for shard in self.shards.iter() {
            shard.shutdown();
        }
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        // Without this, a dropped-but-not-shut-down tier would leak its
        // supervisor thread (which holds the shards alive through its
        // `Arc`). Shard drops then drain and join the pools as usual.
        self.stop_supervisor();
    }
}

/// The supervision loop: every `cfg.tick`, sample each shard's live
/// signals, run the pure [`assess`] transition, and act on the verdict
/// (publish the new health state, or quarantine + restart the pool).
fn spawn_supervisor(
    shards: Arc<Vec<Shard>>,
    cfg: SupervisorConfig,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("tier-supervisor".to_string())
        .spawn(move || {
            let mut trackers = vec![ShardTracker::default(); shards.len()];
            let mut last_completed = vec![0u64; shards.len()];
            let mut last_misses = vec![0u64; shards.len()];
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(cfg.tick);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                for (i, shard) in shards.iter().enumerate() {
                    let core = &shard.core;
                    let completed_total: u64 = core.stats.latency.counts(false).iter().sum();
                    let signals = ShardSignals {
                        consecutive_panics: core.consecutive_panics.load(Ordering::Relaxed),
                        queue_depth: core.stats.queue_depth.get(),
                        completed: tick_delta(&mut last_completed[i], completed_total),
                        deadline_misses: tick_delta(
                            &mut last_misses[i],
                            core.stats.deadline_misses.get(),
                        ),
                    };
                    let state = core.health.get();
                    match assess(state, signals, &mut trackers[i], &cfg) {
                        Verdict::Observe(next) => core.health.set(next),
                        Verdict::Restart => {
                            if state != HealthState::Quarantined {
                                core.stats.shard_quarantines.inc();
                            }
                            core.health.set(HealthState::Quarantined);
                            shard.restart_pool();
                            trackers[i].restarted = true;
                        }
                    }
                }
            }
        })
        .expect("spawn supervisor thread")
}

/// Delta of a monotone counter between supervisor ticks, tolerating the
/// counter being reset underneath us (`snapshot_and_reset` phase
/// boundaries): a total below the last observation restarts the baseline
/// and charges the post-reset total to this tick.
fn tick_delta(last: &mut u64, total: u64) -> u64 {
    let delta = total.checked_sub(*last).unwrap_or(total);
    *last = total;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use crate::clock::ManualClock;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, ConjunctiveQuery, Value};
    use std::sync::atomic::AtomicBool;

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
    }

    fn small_tier() -> ShardedService {
        ShardedService::new(TierConfig {
            shards: 2,
            shard: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        })
    }

    #[test]
    fn tenants_are_isolated_by_content() {
        let tier = small_tier();
        let alice = tier.add_tenant("alice", example_2_2()).unwrap();
        // Bob's S(a1) is exogenous: same query, different answer set.
        let mut bobs = example_2_2();
        let s = bobs.relation_id("S").unwrap();
        let row = bobs.relation(s).find(&tup!["a1"]).unwrap();
        bobs.relation_mut(s).set_endogenous(row, false);
        let bob = tier.add_tenant("bob", bobs).unwrap();

        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let a = tier
            .explain(alice, req.clone())
            .unwrap()
            .expect_explanation();
        let b = tier.explain(bob, req).unwrap().expect_explanation();
        assert_eq!(a.causes.len(), 2);
        assert_eq!(b.causes.len(), 1, "bob's S(a1) cannot be a cause");
        tier.shutdown();
    }

    #[test]
    fn identical_requests_of_different_tenants_never_coalesce() {
        let tier = ShardedService::new(TierConfig {
            shards: 1, // force both tenants onto one shard
            ..TierConfig::default()
        });
        let a = tier.add_tenant("a", example_2_2()).unwrap();
        let b = tier.add_tenant("b", example_2_2()).unwrap();
        assert_eq!(a.shard(), b.shard());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        let ra = tier.explain(a, req.clone()).unwrap();
        let rb = tier.explain(b, req).unwrap();
        // Same query text, same answer — but different databases, so
        // the second must be a fresh computation, not a cache hit (the
        // content fingerprints differ because RelVersion stamps are
        // process-wide unique).
        assert!(!ra.cache_hit);
        assert!(!rb.cache_hit);
        assert_eq!(
            ra.expect_explanation(),
            rb.expect_explanation(),
            "identical content computes identical explanations"
        );
        let stats = tier.stats().aggregate();
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let tier = small_tier();
        tier.add_tenant("dup", example_2_2()).unwrap();
        assert!(matches!(
            tier.add_tenant("dup", example_2_2()),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert_eq!(tier.tenant_count(), 1);
        assert!(tier.tenant_id("dup").is_some());
        assert!(tier.tenant_id("other").is_none());
    }

    #[test]
    fn admission_rejects_past_queue_depth_limit() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            admission_limit: 2,
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let t = tier.add_tenant("hot", example_2_2()).unwrap();
        // Stall every computation so submissions pile up in the queue.
        tier.inject_delay(|_| Some(Duration::from_millis(80)));
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        // Greatly overrun the limit; everything past depth 2 must be
        // rejected-with-Overloaded, not silently dropped or blocked.
        for _ in 0..32 {
            match tier.submit(t, req.clone()) {
                Ok(pending) => accepted.push(pending),
                Err(ServiceError::Overloaded { retry_after }) => {
                    assert!(retry_after >= Duration::from_millis(1), "usable hint");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "open loop overran the limit");
        // Every accepted request still resolves.
        for pending in accepted {
            assert!(pending.wait().unwrap().result.is_ok());
        }
        let stats = tier.stats().aggregate();
        assert_eq!(stats.admission_rejects, rejected);
        assert_eq!(stats.queue_depth, 0, "queue fully drained");
        tier.shutdown();
    }

    #[test]
    fn default_deadline_is_stamped() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            default_deadline: Some(Duration::from_millis(5)),
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let t = tier.add_tenant("t", example_2_2()).unwrap();
        tier.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(60))
        });
        let blocker = tier
            .submit(t, ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
        let doomed = tier
            .submit(t, ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        assert!(matches!(
            doomed.wait().unwrap().result,
            Err(ServiceError::DeadlineExceeded)
        ));
        assert!(blocker.wait().unwrap().result.is_ok());
        assert_eq!(tier.stats().aggregate().deadline_misses, 1);
    }

    #[test]
    fn writes_to_one_tenant_leave_the_other_shard_warm() {
        let tier = small_tier();
        // Find two tenant names on *different* shards.
        let mut names = (0..16).map(|i| format!("tenant-{i}"));
        let first = names.next().unwrap();
        let alice = tier.add_tenant(&first, example_2_2()).unwrap();
        let second = names
            .find(|n| Dispatcher::new(2).route(n) != alice.shard())
            .expect("some name routes elsewhere");
        let bob = tier.add_tenant(&second, example_2_2()).unwrap();
        assert_ne!(alice.shard(), bob.shard());

        // Warm bob's caches.
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        assert!(!tier.explain(bob, req.clone()).unwrap().cache_hit);
        assert!(tier.explain(bob, req.clone()).unwrap().cache_hit);

        // Hammer alice with writes.
        for i in 0..10 {
            tier.update(alice, |db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, tup![format!("w{i}")]);
            })
            .unwrap();
        }
        // Bob's warm entry survived: different shard, different caches.
        let warm = tier.explain(bob, req).unwrap();
        assert!(warm.cache_hit, "alice's writes cannot cool bob's shard");
        let stats = tier.stats();
        assert_eq!(stats.shards[bob.shard()].index_evictions, 0);
    }

    #[test]
    fn tier_stats_aggregate_sums_shards() {
        let tier = small_tier();
        let a = tier.add_tenant("agg-a", example_2_2()).unwrap();
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        tier.explain(a, req.clone()).unwrap();
        tier.explain(a, req).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.shards.len(), 2);
        let total = stats.aggregate();
        assert_eq!(total.requests, 2);
        assert_eq!(total.cache_hits, 1);
        assert_eq!(total.cache_misses, 1);
        assert_eq!(total.workers, 2, "1 worker per shard");
        assert!(total.p99_us() >= total.p50_us());
        // Reset separates phases tier-wide.
        let reset = tier.snapshot_and_reset();
        assert_eq!(reset.aggregate().requests, 2);
        assert_eq!(tier.stats().aggregate().requests, 0);
    }

    #[test]
    fn aggregate_of_no_shards_is_the_zero_identity() {
        let stats = TierStats {
            shards: Vec::new(),
            frontend: FrontendStats::default(),
        };
        let total = stats.aggregate();
        assert_eq!(total.requests, 0);
        assert_eq!(total.workers, 0);
        assert_eq!(total.p99_us(), 0);
    }

    #[test]
    fn aggregate_merges_two_nonempty_latency_histograms() {
        let mut a = ServiceStats::empty();
        let mut b = ServiceStats::empty();
        // Two samples on one shard, one on the other: the merged
        // histogram must preserve the total count, not average it away.
        a.latency_buckets[3] = 2;
        b.latency_buckets[7] = 1;
        let stats = TierStats {
            shards: vec![a, b],
            frontend: FrontendStats::default(),
        };
        let total = stats.aggregate();
        assert_eq!(total.latency_samples(), 3);
        assert_eq!(total.p50_us(), 8, "p50 comes from the two-sample bucket");
        assert_eq!(total.p99_us(), 128, "p99 reaches the other shard's bucket");
    }

    #[test]
    fn circuit_breaker_opens_sheds_then_recovers() {
        let clock = Arc::new(ManualClock::new());
        let tier = ShardedService::with_clock(
            TierConfig {
                shards: 1,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    open_for: Duration::from_millis(100),
                    half_open_probes: 1,
                },
                ..TierConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let t = tier.add_tenant("flaky", example_2_2()).unwrap();
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);

        // Two consecutive panics trip the tenant's breaker.
        tier.inject_fault(|_| true);
        for _ in 0..2 {
            let resp = tier.explain(t, req.clone()).unwrap();
            assert!(matches!(resp.result, Err(ServiceError::Panicked(_))));
        }
        let shed = tier.explain(t, req.clone());
        match shed {
            Err(ServiceError::CircuitOpen { retry_after }) => {
                assert!(retry_after <= Duration::from_millis(100));
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        let fe = tier.stats().frontend;
        assert_eq!(fe.breaker_trips, 1);
        assert_eq!(fe.breaker_rejects, 1);

        // Open window elapses → half-open probe succeeds → closed again.
        tier.clear_faults();
        clock.advance(Duration::from_millis(150));
        let probe = tier.explain(t, req.clone()).unwrap();
        assert!(probe.result.is_ok(), "half-open probe admitted and served");
        // The probe's success closes the breaker (half_open_probes = 1);
        // wait for the worker's outcome recording via the response above.
        assert_eq!(tier.breakers.state_of(t.key()), BreakerState::Closed);
        assert!(tier.explain(t, req).unwrap().result.is_ok());
        tier.shutdown();
    }

    #[test]
    fn explain_with_retry_survives_a_transient_panic() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                ..RetryPolicy::default()
            },
            shard: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let t = tier.add_tenant("retry-me", example_2_2()).unwrap();
        // Panic exactly once: the first computation dies, the retry lands.
        let armed = Arc::new(AtomicBool::new(true));
        let hook_armed = Arc::clone(&armed);
        tier.inject_fault(move |_| hook_armed.swap(false, Ordering::Relaxed));
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let resp = tier.explain_with_retry(t, req).unwrap();
        assert!(resp.result.is_ok(), "retry recovered the answer");
        let fe = tier.stats().frontend;
        assert_eq!(fe.retries, 1, "exactly one backoff-retry");
        tier.shutdown();
    }

    #[test]
    fn single_shot_explain_never_retries() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            ..TierConfig::default()
        });
        let t = tier.add_tenant("one-shot", example_2_2()).unwrap();
        tier.inject_fault(|_| true);
        let resp = tier
            .explain(t, ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
        assert!(matches!(resp.result, Err(ServiceError::Panicked(_))));
        assert_eq!(tier.stats().frontend.retries, 0);
        tier.shutdown();
    }

    #[test]
    fn shard_health_is_visible_and_starts_healthy() {
        let tier = small_tier();
        assert_eq!(tier.shard_health(0), Some(HealthState::Healthy));
        assert_eq!(tier.shard_health(1), Some(HealthState::Healthy));
        assert_eq!(tier.shard_health(2), None);
        tier.shutdown();
    }

    #[test]
    fn frontend_metrics_export_under_tier_prefix() {
        let tier = small_tier();
        let text = tier.export_frontend_metrics();
        assert!(text.contains("causality_tier_frontend_retries_total"));
        assert!(text.contains("causality_tier_breaker_trips_total"));
        assert!(text.contains("causality_tier_brownout_served_total"));
        tier.shutdown();
    }
}
