//! The front end of the sharded serving tier: bounded admission,
//! per-request deadline budgets, and tenant-routed dispatch over N
//! independent [`shard`](crate::shard)s.
//!
//! ```text
//!        submit(tenant, request [, deadline budget])
//!                        │
//!              ┌─────────▼─────────┐
//!              │     front end     │  validate · deadline stamp ·
//!              │                   │  admission (queue depth < limit,
//!              │                   │  else ServiceError::Overloaded)
//!              └─────────┬─────────┘
//!              ┌─────────▼─────────┐
//!              │     dispatch      │  tenant name ──FNV-1a──▶ shard
//!              └──┬───────┬───────┬┘
//!            ┌────▼──┐ ┌──▼────┐ ┌▼──────┐
//!            │shard 0│ │shard 1│ │shard N│   each: snapshot stores,
//!            │       │ │       │ │       │   worker pool, index cache,
//!            └───────┘ └───────┘ └───────┘   responsibility LRU, stats
//! ```
//!
//! Every shard is failure- and performance-isolated: a write burst, a
//! cache-evicting workload, or even a panicking job on one shard cannot
//! queue ahead of, evict, or crash another shard's traffic.

use crate::dispatch::{Dispatcher, TenantId};
use crate::request::{ExplainRequest, ExplainResponse, PendingExplain, ServiceError};
use crate::shard::{lock_unpoisoned, validate, ServiceConfig, Shard};
use crate::stats::ServiceStats;
use crate::worker::Job;
use causality_engine::{Database, Snapshot};
use causality_telemetry::{metrics_jsonl, prometheus_text, traces_jsonl, RequestTrace, Stage};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tuning knobs of the sharded tier.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Number of independent shards (min 1). Tenants are hashed onto
    /// shards by name; each shard runs its own worker pool of
    /// `shard.workers` threads, so total workers = `shards × shard.workers`.
    pub shards: usize,
    /// Per-shard queue-depth limit: a submit finding the target shard's
    /// queue at (or beyond) this depth is rejected with
    /// [`ServiceError::Overloaded`] instead of queueing — bounded
    /// admission keeps tail latency flat when an open-loop client
    /// outruns the tier.
    pub admission_limit: usize,
    /// Deadline budget stamped on every request submitted without an
    /// explicit one ([`None`] = no deadline).
    pub default_deadline: Option<Duration>,
    /// Per-shard tuning (worker count, queue bound, batch size, caches).
    pub shard: ServiceConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        let shard = ServiceConfig::default();
        TierConfig {
            shards: 4,
            admission_limit: shard.queue_capacity,
            default_deadline: None,
            shard,
        }
    }
}

/// Per-shard plus aggregate stats of a [`ShardedService`].
#[derive(Clone, Debug)]
pub struct TierStats {
    /// One [`ServiceStats`] per shard, indexed by shard number.
    pub shards: Vec<ServiceStats>,
}

impl TierStats {
    /// The tier-wide roll-up: counters, queue depths, and latency
    /// histograms summed across shards (so `p50_us`/`p99_us` on the
    /// result are tier-wide percentiles, not averages of per-shard ones).
    /// An empty shard list aggregates to the all-zero identity rather
    /// than panicking.
    pub fn aggregate(&self) -> ServiceStats {
        let mut total = ServiceStats::empty();
        for shard in &self.shards {
            total.merge(shard);
        }
        total
    }
}

/// A multi-tenant, sharded, admission-controlled explanation service.
///
/// Tenants register a database each and are routed (stably, by name) to
/// one of N shards; each shard owns its snapshot stores, worker pool,
/// join-index cache, and responsibility LRU, so one tenant's write or
/// traffic burst never evicts another shard's warm state.
///
/// ```
/// use causality_service::{ExplainRequest, ShardedService, TierConfig};
/// use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
///
/// let tier = ShardedService::new(TierConfig::default());
/// let alice = tier.add_tenant("alice", example_2_2()).unwrap();
/// let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
/// let resp = tier
///     .explain(alice, ExplainRequest::why_so(q, vec![Value::str("a2")]))
///     .unwrap();
/// assert_eq!(resp.expect_explanation().causes.len(), 2);
/// ```
pub struct ShardedService {
    shards: Vec<Shard>,
    dispatcher: Dispatcher,
    cfg: TierConfig,
}

impl ShardedService {
    /// Start a tier with `cfg.shards` shards (each a full worker pool).
    pub fn new(cfg: TierConfig) -> Self {
        let shards = cfg.shards.max(1);
        let cfg = TierConfig {
            shards,
            admission_limit: cfg.admission_limit.max(1),
            ..cfg
        };
        ShardedService {
            shards: (0..shards)
                .map(|i| Shard::spawn(cfg.shard, cfg.admission_limit, &format!("shard{i}")))
                .collect(),
            dispatcher: Dispatcher::new(shards),
            cfg,
        }
    }

    /// Register a tenant and install its database on the shard its name
    /// routes to. Fails with [`ServiceError::InvalidRequest`] if the
    /// name is already registered.
    pub fn add_tenant(&self, name: &str, db: Database) -> Result<TenantId, ServiceError> {
        let id = self.dispatcher.register(name).ok_or_else(|| {
            ServiceError::InvalidRequest(format!("tenant {name:?} is already registered"))
        })?;
        self.shards[id.shard()].add_tenant(id.key(), db);
        Ok(id)
    }

    /// Look up a registered tenant by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.dispatcher.lookup(name)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.dispatcher.tenant_count()
    }

    fn job(
        tenant: TenantId,
        request: ExplainRequest,
        deadline: Option<Duration>,
    ) -> (Job, PendingExplain) {
        let (tx, rx) = mpsc::channel();
        let enqueued = Instant::now();
        (
            Job {
                tenant: tenant.key(),
                request,
                deadline: deadline.map(|budget| enqueued + budget),
                enqueued,
                tx,
                trace: None,
            },
            PendingExplain { rx },
        )
    }

    /// Submit through admission control with the tier's default deadline.
    ///
    /// Never blocks: past the shard's queue-depth limit the request is
    /// rejected with [`ServiceError::Overloaded`] (and counted), which
    /// is the backpressure signal of an open-loop front end.
    pub fn submit(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
    ) -> Result<PendingExplain, ServiceError> {
        self.submit_inner(tenant, request, self.cfg.default_deadline)
    }

    /// Submit with an explicit per-request deadline budget: if the
    /// budget expires before a worker starts the job, it resolves to
    /// [`ServiceError::DeadlineExceeded`] instead of occupying a worker.
    pub fn submit_with_deadline(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        budget: Duration,
    ) -> Result<PendingExplain, ServiceError> {
        self.submit_inner(tenant, request, Some(budget))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
        deadline: Option<Duration>,
    ) -> Result<PendingExplain, ServiceError> {
        let t0 = Instant::now();
        validate(&request)?;
        let shard = self
            .shards
            .get(tenant.shard())
            .ok_or_else(|| ServiceError::InvalidRequest("foreign tenant id".to_string()))?;
        // The sampling decision (and the trace's Admission stage) belong
        // to the target shard; an invalid request never reaches one and
        // is never traced.
        let mut trace = shard.core.telemetry.start(t0);
        if let Some(tb) = trace.as_deref_mut() {
            tb.set_request(
                tenant.shard(),
                tenant.key(),
                request.kind.label(),
                request.query.atoms().len(),
            );
            tb.begin(Stage::Dispatch);
        }
        let (mut job, pending) = Self::job(tenant, request, deadline);
        if let Some(tb) = trace.as_deref_mut() {
            if let Some(deadline) = job.deadline {
                tb.set_deadline(deadline);
            }
            tb.begin(Stage::ShardQueue);
        }
        job.trace = trace;
        shard.submit_admitted(job)?;
        Ok(pending)
    }

    /// Submit and wait: the blocking convenience call.
    pub fn explain(
        &self,
        tenant: TenantId,
        request: ExplainRequest,
    ) -> Result<ExplainResponse, ServiceError> {
        self.submit(tenant, request)?.wait()
    }

    /// Pin the tenant's current snapshot (for ad-hoc reads outside the
    /// pools).
    pub fn snapshot(&self, tenant: TenantId) -> Result<Snapshot, ServiceError> {
        Ok(self.store(tenant)?.current())
    }

    /// Publish a whole new database as the tenant's next snapshot
    /// version.
    pub fn publish(&self, tenant: TenantId, db: Database) -> Result<u64, ServiceError> {
        Ok(self.store(tenant)?.publish(db).version())
    }

    /// Copy-on-write update of the tenant's current snapshot; returns
    /// the new version. Only the touched relations are cloned, only the
    /// tenant's shard sees any cache movement, and in-flight requests
    /// keep their pinned older snapshots.
    pub fn update(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut Database),
    ) -> Result<u64, ServiceError> {
        Ok(self.store(tenant)?.update(f).version())
    }

    fn store(
        &self,
        tenant: TenantId,
    ) -> Result<std::sync::Arc<causality_engine::SnapshotStore>, ServiceError> {
        self.shards
            .get(tenant.shard())
            .and_then(|shard| shard.core.store(tenant.key()))
            .ok_or_else(|| ServiceError::InvalidRequest("foreign tenant id".to_string()))
    }

    /// Install a chaos-testing fault on **every** shard: matched
    /// requests panic inside their worker (each shard must contain the
    /// blast radius — see
    /// [`CausalityService::inject_fault`](crate::CausalityService::inject_fault)).
    /// To take down a single shard, match on something only that
    /// shard's tenants send.
    pub fn inject_fault(
        &self,
        hook: impl Fn(&ExplainRequest) -> bool + Send + Sync + Clone + 'static,
    ) {
        for shard in &self.shards {
            *lock_unpoisoned(&shard.core.fault) = Some(Box::new(hook.clone()));
        }
    }

    /// Install a chaos/load-testing stall on every shard: matched
    /// requests sleep for the returned duration before computing.
    pub fn inject_delay(
        &self,
        hook: impl Fn(&ExplainRequest) -> Option<Duration> + Send + Sync + Clone + 'static,
    ) {
        for shard in &self.shards {
            *lock_unpoisoned(&shard.core.delay) = Some(Box::new(hook.clone()));
        }
    }

    /// Remove every hook installed by [`ShardedService::inject_fault`] /
    /// [`ShardedService::inject_delay`].
    pub fn clear_faults(&self) {
        for shard in &self.shards {
            *lock_unpoisoned(&shard.core.fault) = None;
            *lock_unpoisoned(&shard.core.delay) = None;
        }
    }

    /// Point-in-time per-shard stats (aggregate via
    /// [`TierStats::aggregate`]).
    pub fn stats(&self) -> TierStats {
        TierStats {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    shard.core.stats.snapshot(
                        shard.core.cfg.workers,
                        shard.core.max_version(),
                        shard.core.index_cache.len() as u64,
                    )
                })
                .collect(),
        }
    }

    /// Like [`ShardedService::stats`], but zeroes every shard's monotone
    /// counters and latency histogram (queue-depth gauges stay live) —
    /// the phase separator the load harness uses between warmup and the
    /// timed window.
    pub fn snapshot_and_reset(&self) -> TierStats {
        TierStats {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    shard.core.stats.snapshot_and_reset(
                        shard.core.cfg.workers,
                        shard.core.max_version(),
                        shard.core.index_cache.len() as u64,
                    )
                })
                .collect(),
        }
    }

    /// Prometheus text exposition of every shard's metrics registry:
    /// one `# TYPE` line per metric, per-shard series labelled
    /// `shard="i"`, histograms with cumulative `_bucket` / `_sum` /
    /// `_count` series.
    pub fn export_metrics(&self) -> String {
        let registries: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.core.registry.as_ref())
            .collect();
        prometheus_text(&registries, "causality_")
    }

    /// The same metric samples as [`ShardedService::export_metrics`],
    /// rendered as JSONL (one `{"shard":…,"metric":…}` object per line).
    pub fn export_metrics_jsonl(&self) -> String {
        let registries: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.core.registry.as_ref())
            .collect();
        metrics_jsonl(&registries)
    }

    /// The sampled traces currently retained across all shard rings,
    /// oldest-first within each shard. Non-draining: exporting twice
    /// returns the same traces.
    pub fn recent_traces(&self) -> Vec<RequestTrace> {
        self.shards
            .iter()
            .flat_map(|shard| shard.core.telemetry.traces())
            .collect()
    }

    /// [`ShardedService::recent_traces`] rendered as JSONL.
    pub fn export_traces(&self) -> String {
        traces_jsonl(&self.recent_traces())
    }

    /// The explanation slow-log across all shards: traces whose total
    /// latency or deadline slack crossed the configured thresholds.
    pub fn slow_log_records(&self) -> Vec<RequestTrace> {
        self.shards
            .iter()
            .flat_map(|shard| shard.core.telemetry.slow_log())
            .collect()
    }

    /// [`ShardedService::slow_log_records`] rendered as JSONL.
    pub fn export_slow_log(&self) -> String {
        traces_jsonl(&self.slow_log_records())
    }

    /// Stop accepting work, drain every shard's queue, and join all
    /// worker pools.
    pub fn shutdown(mut self) {
        for shard in &mut self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, ConjunctiveQuery, Value};

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
    }

    fn small_tier() -> ShardedService {
        ShardedService::new(TierConfig {
            shards: 2,
            shard: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        })
    }

    #[test]
    fn tenants_are_isolated_by_content() {
        let tier = small_tier();
        let alice = tier.add_tenant("alice", example_2_2()).unwrap();
        // Bob's S(a1) is exogenous: same query, different answer set.
        let mut bobs = example_2_2();
        let s = bobs.relation_id("S").unwrap();
        let row = bobs.relation(s).find(&tup!["a1"]).unwrap();
        bobs.relation_mut(s).set_endogenous(row, false);
        let bob = tier.add_tenant("bob", bobs).unwrap();

        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let a = tier
            .explain(alice, req.clone())
            .unwrap()
            .expect_explanation();
        let b = tier.explain(bob, req).unwrap().expect_explanation();
        assert_eq!(a.causes.len(), 2);
        assert_eq!(b.causes.len(), 1, "bob's S(a1) cannot be a cause");
        tier.shutdown();
    }

    #[test]
    fn identical_requests_of_different_tenants_never_coalesce() {
        let tier = ShardedService::new(TierConfig {
            shards: 1, // force both tenants onto one shard
            ..TierConfig::default()
        });
        let a = tier.add_tenant("a", example_2_2()).unwrap();
        let b = tier.add_tenant("b", example_2_2()).unwrap();
        assert_eq!(a.shard(), b.shard());
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        let ra = tier.explain(a, req.clone()).unwrap();
        let rb = tier.explain(b, req).unwrap();
        // Same query text, same answer — but different databases, so
        // the second must be a fresh computation, not a cache hit (the
        // content fingerprints differ because RelVersion stamps are
        // process-wide unique).
        assert!(!ra.cache_hit);
        assert!(!rb.cache_hit);
        assert_eq!(
            ra.expect_explanation(),
            rb.expect_explanation(),
            "identical content computes identical explanations"
        );
        let stats = tier.stats().aggregate();
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let tier = small_tier();
        tier.add_tenant("dup", example_2_2()).unwrap();
        assert!(matches!(
            tier.add_tenant("dup", example_2_2()),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert_eq!(tier.tenant_count(), 1);
        assert!(tier.tenant_id("dup").is_some());
        assert!(tier.tenant_id("other").is_none());
    }

    #[test]
    fn admission_rejects_past_queue_depth_limit() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            admission_limit: 2,
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let t = tier.add_tenant("hot", example_2_2()).unwrap();
        // Stall every computation so submissions pile up in the queue.
        tier.inject_delay(|_| Some(Duration::from_millis(80)));
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        // Greatly overrun the limit; everything past depth 2 must be
        // rejected-with-Overloaded, not silently dropped or blocked.
        for _ in 0..32 {
            match tier.submit(t, req.clone()) {
                Ok(pending) => accepted.push(pending),
                Err(ServiceError::Overloaded) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "open loop overran the limit");
        // Every accepted request still resolves.
        for pending in accepted {
            assert!(pending.wait().unwrap().result.is_ok());
        }
        let stats = tier.stats().aggregate();
        assert_eq!(stats.admission_rejects, rejected);
        assert_eq!(stats.queue_depth, 0, "queue fully drained");
        tier.shutdown();
    }

    #[test]
    fn default_deadline_is_stamped() {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            default_deadline: Some(Duration::from_millis(5)),
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let t = tier.add_tenant("t", example_2_2()).unwrap();
        tier.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(60))
        });
        let blocker = tier
            .submit(t, ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
        let doomed = tier
            .submit(t, ExplainRequest::why_so(query(), vec![Value::str("a3")]))
            .unwrap();
        assert!(matches!(
            doomed.wait().unwrap().result,
            Err(ServiceError::DeadlineExceeded)
        ));
        assert!(blocker.wait().unwrap().result.is_ok());
        assert_eq!(tier.stats().aggregate().deadline_misses, 1);
    }

    #[test]
    fn writes_to_one_tenant_leave_the_other_shard_warm() {
        let tier = small_tier();
        // Find two tenant names on *different* shards.
        let mut names = (0..16).map(|i| format!("tenant-{i}"));
        let first = names.next().unwrap();
        let alice = tier.add_tenant(&first, example_2_2()).unwrap();
        let second = names
            .find(|n| Dispatcher::new(2).route(n) != alice.shard())
            .expect("some name routes elsewhere");
        let bob = tier.add_tenant(&second, example_2_2()).unwrap();
        assert_ne!(alice.shard(), bob.shard());

        // Warm bob's caches.
        let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        assert!(!tier.explain(bob, req.clone()).unwrap().cache_hit);
        assert!(tier.explain(bob, req.clone()).unwrap().cache_hit);

        // Hammer alice with writes.
        for i in 0..10 {
            tier.update(alice, |db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, tup![format!("w{i}")]);
            })
            .unwrap();
        }
        // Bob's warm entry survived: different shard, different caches.
        let warm = tier.explain(bob, req).unwrap();
        assert!(warm.cache_hit, "alice's writes cannot cool bob's shard");
        let stats = tier.stats();
        assert_eq!(stats.shards[bob.shard()].index_evictions, 0);
    }

    #[test]
    fn tier_stats_aggregate_sums_shards() {
        let tier = small_tier();
        let a = tier.add_tenant("agg-a", example_2_2()).unwrap();
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        tier.explain(a, req.clone()).unwrap();
        tier.explain(a, req).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.shards.len(), 2);
        let total = stats.aggregate();
        assert_eq!(total.requests, 2);
        assert_eq!(total.cache_hits, 1);
        assert_eq!(total.cache_misses, 1);
        assert_eq!(total.workers, 2, "1 worker per shard");
        assert!(total.p99_us() >= total.p50_us());
        // Reset separates phases tier-wide.
        let reset = tier.snapshot_and_reset();
        assert_eq!(reset.aggregate().requests, 2);
        assert_eq!(tier.stats().aggregate().requests, 0);
    }

    #[test]
    fn aggregate_of_no_shards_is_the_zero_identity() {
        let stats = TierStats { shards: Vec::new() };
        let total = stats.aggregate();
        assert_eq!(total.requests, 0);
        assert_eq!(total.workers, 0);
        assert_eq!(total.p99_us(), 0);
    }

    #[test]
    fn aggregate_merges_two_nonempty_latency_histograms() {
        let mut a = ServiceStats::empty();
        let mut b = ServiceStats::empty();
        // Two samples on one shard, one on the other: the merged
        // histogram must preserve the total count, not average it away.
        a.latency_buckets[3] = 2;
        b.latency_buckets[7] = 1;
        let stats = TierStats { shards: vec![a, b] };
        let total = stats.aggregate();
        assert_eq!(total.latency_samples(), 3);
        assert_eq!(total.p50_us(), 8, "p50 comes from the two-sample bucket");
        assert_eq!(total.p99_us(), 128, "p99 reaches the other shard's bucket");
    }
}
