//! Shard health assessment and the supervision policy (PR 9).
//!
//! The tier was fault-*isolated* before this PR (panics are caught per
//! request, admission control bounds queues) but not fault-*recovering*:
//! a shard whose workers wedge stays degraded forever. The supervisor
//! closes that loop. Each shard carries a [`HealthState`] cell; a
//! background thread in the front end ticks [`assess`] over live
//! signals (consecutive panics, queue stall detection, deadline-miss
//! rate) and restarts the worker pool of a quarantined shard, then
//! probes it back to [`HealthState::Healthy`].
//!
//! The transition function is pure — signals in, verdict out — so the
//! exhaustive transition tests in `tests/service_selfheal.rs` can walk
//! every edge without threads or sleeps.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// Liveness classification of one shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HealthState {
    /// Serving normally; routable as a retry/hedge fallback.
    Healthy = 0,
    /// Live but missing deadlines or paging through a panic burst;
    /// still serving, but retries avoid it when possible.
    Degraded = 1,
    /// Presumed wedged. The supervisor restarts its worker pool and
    /// routes retries elsewhere until re-admission probes succeed.
    Quarantined = 2,
}

impl HealthState {
    /// Stable label for metrics and docs.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// Lock-free storage for a [`HealthState`], shared between the shard,
/// the supervisor thread, and routing decisions on the submit path.
#[derive(Debug, Default)]
pub struct HealthCell(AtomicU8);

impl HealthCell {
    /// A cell starting out [`HealthState::Healthy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current state.
    pub fn get(&self) -> HealthState {
        match self.0.load(Ordering::Relaxed) {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Quarantined,
        }
    }

    /// Stores a new state.
    pub fn set(&self, state: HealthState) {
        self.0.store(state as u8, Ordering::Relaxed);
    }
}

/// Tuning knobs of the supervision loop.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// How often the supervisor samples shard signals. `Duration::ZERO`
    /// disables the background thread (tests drive [`assess`] direct).
    pub tick: Duration,
    /// Consecutive panics (without an intervening success) that send a
    /// shard straight to quarantine.
    pub panic_quarantine: u64,
    /// Ticks with a non-empty queue and zero completed requests before
    /// the shard counts as stalled (wedged workers).
    pub stall_ticks: u32,
    /// Deadline misses over the last window above this rate mark the
    /// shard degraded. Expressed as misses per completed request.
    pub miss_rate: f64,
    /// Minimum completions in a tick window for the miss rate to be
    /// meaningful; below this the window is ignored.
    pub miss_window_min: u64,
    /// Consecutive clean ticks a restarted shard must survive before
    /// re-admission to [`HealthState::Healthy`].
    pub probe_ticks: u32,
}

impl Default for SupervisorConfig {
    /// Conservative production defaults: the stall window (tick ×
    /// stall_ticks = 2s) comfortably exceeds the longest legitimate
    /// single computation the tier serves, so a busy-but-progressing
    /// shard is never restarted; chaos tests shrink these knobs
    /// explicitly to make recovery observable in milliseconds.
    fn default() -> Self {
        SupervisorConfig {
            tick: Duration::from_millis(50),
            panic_quarantine: 16,
            stall_ticks: 40,
            miss_rate: 0.9,
            miss_window_min: 16,
            probe_ticks: 2,
        }
    }
}

impl SupervisorConfig {
    /// A config with the supervisor thread switched off (the state
    /// machine itself stays testable via [`assess`]).
    pub fn disabled() -> Self {
        SupervisorConfig {
            tick: Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }
}

/// One tick's worth of live signals about a shard, expressed as deltas
/// (or levels) the supervisor samples from the shard's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSignals {
    /// Current consecutive-panic streak (reset by any success).
    pub consecutive_panics: u64,
    /// Current queue depth (level, not delta).
    pub queue_depth: u64,
    /// Requests completed since the last tick.
    pub completed: u64,
    /// Deadline misses since the last tick.
    pub deadline_misses: u64,
}

/// What the supervisor should do with a shard after a tick.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No action; the returned state is the new health.
    Observe(HealthState),
    /// Restart the worker pool, then hold in quarantine for probing.
    Restart,
}

/// Per-shard bookkeeping the supervisor keeps between ticks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardTracker {
    stall_ticks: u32,
    clean_ticks: u32,
    /// Set once a quarantined shard's pool has been restarted; probing
    /// counts clean ticks only after the restart happened.
    pub restarted: bool,
}

/// The pure health-transition function.
///
/// Looks at the current state, this tick's signals, and the tracker's
/// memory of recent ticks, and decides the next state — possibly
/// demanding a pool restart. All thresholds come from `cfg`.
pub fn assess(
    state: HealthState,
    signals: ShardSignals,
    tracker: &mut ShardTracker,
    cfg: &SupervisorConfig,
) -> Verdict {
    // Stall detection: queue has work, nothing completes.
    if signals.queue_depth > 0 && signals.completed == 0 {
        tracker.stall_ticks = tracker.stall_ticks.saturating_add(1);
    } else {
        tracker.stall_ticks = 0;
    }
    let stalled = tracker.stall_ticks >= cfg.stall_ticks;
    let panicking = signals.consecutive_panics >= cfg.panic_quarantine;
    let missing = signals.completed >= cfg.miss_window_min
        && (signals.deadline_misses as f64) > cfg.miss_rate * (signals.completed as f64);

    match state {
        HealthState::Healthy | HealthState::Degraded => {
            if stalled || panicking {
                tracker.clean_ticks = 0;
                tracker.restarted = false;
                tracker.stall_ticks = 0;
                return Verdict::Restart;
            }
            if missing {
                tracker.clean_ticks = 0;
                return Verdict::Observe(HealthState::Degraded);
            }
            if state == HealthState::Degraded {
                // Hysteresis: recover through the same probe budget a
                // quarantined shard uses, so one good tick after a miss
                // burst does not flap the state.
                tracker.clean_ticks = tracker.clean_ticks.saturating_add(1);
                if tracker.clean_ticks >= cfg.probe_ticks {
                    tracker.clean_ticks = 0;
                    return Verdict::Observe(HealthState::Healthy);
                }
                return Verdict::Observe(HealthState::Degraded);
            }
            Verdict::Observe(HealthState::Healthy)
        }
        HealthState::Quarantined => {
            if !tracker.restarted {
                // Restart has not completed yet; hold.
                return Verdict::Observe(HealthState::Quarantined);
            }
            if stalled || panicking {
                // Relapse after restart: restart again.
                tracker.clean_ticks = 0;
                tracker.restarted = false;
                tracker.stall_ticks = 0;
                return Verdict::Restart;
            }
            // Re-admission probing: require clean ticks that actually
            // prove liveness (either traffic completed, or the queue is
            // empty so there is nothing to be wedged on).
            if signals.completed > 0 || signals.queue_depth == 0 {
                tracker.clean_ticks = tracker.clean_ticks.saturating_add(1);
            } else {
                tracker.clean_ticks = 0;
            }
            if tracker.clean_ticks >= cfg.probe_ticks {
                tracker.clean_ticks = 0;
                Verdict::Observe(HealthState::Healthy)
            } else {
                Verdict::Observe(HealthState::Quarantined)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Aggressive thresholds so every transition is reachable in a few
    /// synthetic ticks (production defaults are far more patient).
    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            tick: Duration::from_millis(20),
            panic_quarantine: 5,
            stall_ticks: 3,
            miss_rate: 0.5,
            miss_window_min: 8,
            probe_ticks: 2,
        }
    }

    #[test]
    fn healthy_stays_healthy_on_clean_signals() {
        let mut t = ShardTracker::default();
        let v = assess(
            HealthState::Healthy,
            ShardSignals {
                completed: 10,
                ..Default::default()
            },
            &mut t,
            &cfg(),
        );
        assert_eq!(v, Verdict::Observe(HealthState::Healthy));
    }

    #[test]
    fn panic_burst_demands_restart() {
        let mut t = ShardTracker::default();
        let v = assess(
            HealthState::Healthy,
            ShardSignals {
                consecutive_panics: 5,
                ..Default::default()
            },
            &mut t,
            &cfg(),
        );
        assert_eq!(v, Verdict::Restart);
    }

    #[test]
    fn stall_needs_consecutive_ticks() {
        let mut t = ShardTracker::default();
        let stalled = ShardSignals {
            queue_depth: 50,
            completed: 0,
            ..Default::default()
        };
        assert_eq!(
            assess(HealthState::Healthy, stalled, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy)
        );
        assert_eq!(
            assess(HealthState::Healthy, stalled, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy)
        );
        assert_eq!(
            assess(HealthState::Healthy, stalled, &mut t, &cfg()),
            Verdict::Restart
        );
    }

    #[test]
    fn progress_resets_the_stall_counter() {
        let mut t = ShardTracker::default();
        let stalled = ShardSignals {
            queue_depth: 50,
            completed: 0,
            ..Default::default()
        };
        let moving = ShardSignals {
            queue_depth: 50,
            completed: 3,
            ..Default::default()
        };
        assess(HealthState::Healthy, stalled, &mut t, &cfg());
        assess(HealthState::Healthy, stalled, &mut t, &cfg());
        assess(HealthState::Healthy, moving, &mut t, &cfg());
        assert_eq!(
            assess(HealthState::Healthy, stalled, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy),
            "stall counter restarted after progress"
        );
    }

    #[test]
    fn high_miss_rate_degrades_and_recovers_with_hysteresis() {
        let mut t = ShardTracker::default();
        let missing = ShardSignals {
            completed: 10,
            deadline_misses: 8,
            ..Default::default()
        };
        assert_eq!(
            assess(HealthState::Healthy, missing, &mut t, &cfg()),
            Verdict::Observe(HealthState::Degraded)
        );
        let clean = ShardSignals {
            completed: 10,
            ..Default::default()
        };
        // probe_ticks = 2: first clean tick holds Degraded, second recovers.
        assert_eq!(
            assess(HealthState::Degraded, clean, &mut t, &cfg()),
            Verdict::Observe(HealthState::Degraded)
        );
        assert_eq!(
            assess(HealthState::Degraded, clean, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy)
        );
    }

    #[test]
    fn sparse_windows_do_not_trigger_miss_rate() {
        let mut t = ShardTracker::default();
        let sparse = ShardSignals {
            completed: 2,
            deadline_misses: 2,
            ..Default::default()
        };
        assert_eq!(
            assess(HealthState::Healthy, sparse, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy),
            "below miss_window_min the rate is noise"
        );
    }

    #[test]
    fn quarantine_holds_until_restart_then_probes_out() {
        let mut t = ShardTracker::default();
        let idle = ShardSignals::default();
        assert_eq!(
            assess(HealthState::Quarantined, idle, &mut t, &cfg()),
            Verdict::Observe(HealthState::Quarantined),
            "no restart yet: hold"
        );
        t.restarted = true;
        assert_eq!(
            assess(HealthState::Quarantined, idle, &mut t, &cfg()),
            Verdict::Observe(HealthState::Quarantined),
            "first clean probe tick"
        );
        assert_eq!(
            assess(HealthState::Quarantined, idle, &mut t, &cfg()),
            Verdict::Observe(HealthState::Healthy),
            "second clean probe tick re-admits"
        );
    }

    #[test]
    fn relapse_after_restart_restarts_again() {
        let mut t = ShardTracker {
            restarted: true,
            ..Default::default()
        };
        let v = assess(
            HealthState::Quarantined,
            ShardSignals {
                consecutive_panics: 9,
                ..Default::default()
            },
            &mut t,
            &cfg(),
        );
        assert_eq!(v, Verdict::Restart);
        assert!(!t.restarted, "restart flag cleared for the next attempt");
    }

    #[test]
    fn quarantined_with_stuck_queue_does_not_probe_out() {
        let mut t = ShardTracker {
            restarted: true,
            ..Default::default()
        };
        let stuck = ShardSignals {
            queue_depth: 10,
            completed: 0,
            ..Default::default()
        };
        for _ in 0..2 {
            let v = assess(HealthState::Quarantined, stuck, &mut t, &cfg());
            assert_eq!(v, Verdict::Observe(HealthState::Quarantined));
        }
        // And eventually the stall detector fires a second restart.
        let v = assess(HealthState::Quarantined, stuck, &mut t, &cfg());
        assert_eq!(v, Verdict::Restart);
    }

    #[test]
    fn health_cell_round_trips() {
        let cell = HealthCell::new();
        assert_eq!(cell.get(), HealthState::Healthy);
        cell.set(HealthState::Quarantined);
        assert_eq!(cell.get(), HealthState::Quarantined);
        cell.set(HealthState::Degraded);
        assert_eq!(cell.get(), HealthState::Degraded);
        assert_eq!(cell.get().label(), "degraded");
    }
}
