//! Injectable time for the self-healing state machines (PR 9).
//!
//! The circuit breakers and the shard supervisor make decisions that
//! depend on *elapsed* time (how long a breaker stays open, when a
//! half-open probe is due). Testing those transitions against the real
//! clock means sleeping, which makes the exhaustive transition suites
//! slow and flaky; injecting time through the [`Clock`] trait lets a
//! test advance a [`ManualClock`] by exact amounts and observe every
//! edge deterministically — including the clock-*skew* chaos case,
//! where time jumps backwards ([`ManualClock::rewind`]) and the state
//! machines must degrade to a sane answer instead of panicking.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A source of "now". Production code uses [`SystemClock`]; tests use
/// [`ManualClock`] to drive breaker and supervisor transitions without
/// sleeping.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A test clock that only moves when told to — and can be skewed
/// backwards to model a misbehaving time source.
#[derive(Debug)]
pub struct ManualClock {
    now: Mutex<Instant>,
}

impl ManualClock {
    /// A manual clock anchored at the real "now" (the anchor itself is
    /// irrelevant; only the advances matter).
    pub fn new() -> Self {
        ManualClock {
            now: Mutex::new(Instant::now()),
        }
    }

    /// Move the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        let mut now = self
            .now
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *now += by;
    }

    /// Skew the clock *backwards* by `by` (saturating at the anchor's
    /// epoch): the chaos case a time-dependent state machine must
    /// survive without wrapping or panicking.
    pub fn rewind(&self, by: Duration) {
        let mut now = self
            .now
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *now = now.checked_sub(by).unwrap_or(*now);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        *self
            .now
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_when_told() {
        let clock = ManualClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now() - t0, Duration::from_secs(5));
    }

    #[test]
    fn manual_clock_rewind_models_skew() {
        let clock = ManualClock::new();
        clock.advance(Duration::from_secs(10));
        let t1 = clock.now();
        clock.rewind(Duration::from_secs(3));
        assert_eq!(t1 - clock.now(), Duration::from_secs(3));
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
