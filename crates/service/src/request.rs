//! Typed requests and responses of the explanation service.

use causality_core::explain::Explanation;
use causality_core::ranking::Method;
use causality_core::CoreError;
use causality_engine::{ConjunctiveQuery, Value};
use std::fmt;
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// What kind of explanation a request asks for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExplainKind {
    /// Why is the answer in the result? (Def. 2.1 causes, Fig. 2b ranking.)
    WhySo,
    /// Why is the answer *not* in the result? (Sect. 2's Why-No setting.)
    WhyNo,
    /// Like [`ExplainKind::WhySo`], truncated to the `k` causes with the
    /// highest responsibility — the "rank the candidate causes" workload
    /// of Sect. 1 when only the top of the Fig. 2b table is displayed.
    RankTopK(usize),
}

/// One explanation request: a (non-Boolean) query and an answer tuple.
///
/// The request is evaluated against the snapshot that is current when a
/// worker picks it up; the response reports that snapshot's version.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExplainRequest {
    /// Which question is asked.
    pub kind: ExplainKind,
    /// The query (head variables bound by `answer`).
    pub query: ConjunctiveQuery,
    /// The (non-)answer to explain.
    pub answer: Vec<Value>,
    /// Responsibility algorithm selection.
    pub method: Method,
}

impl ExplainRequest {
    /// A Why-So request with automatic algorithm choice.
    pub fn why_so(query: ConjunctiveQuery, answer: impl Into<Vec<Value>>) -> Self {
        ExplainRequest {
            kind: ExplainKind::WhySo,
            query,
            answer: answer.into(),
            method: Method::Auto,
        }
    }

    /// A Why-No request.
    pub fn why_no(query: ConjunctiveQuery, answer: impl Into<Vec<Value>>) -> Self {
        ExplainRequest {
            kind: ExplainKind::WhyNo,
            query,
            answer: answer.into(),
            method: Method::Auto,
        }
    }

    /// A rank-by-responsibility request keeping the top `k` causes.
    pub fn rank_top_k(query: ConjunctiveQuery, answer: impl Into<Vec<Value>>, k: usize) -> Self {
        ExplainRequest {
            kind: ExplainKind::RankTopK(k),
            query,
            answer: answer.into(),
            method: Method::Auto,
        }
    }

    /// Select the responsibility algorithm.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }
}

impl ExplainKind {
    /// Stable label used as the `kind` attribute of request traces.
    pub fn label(self) -> &'static str {
        match self {
            ExplainKind::WhySo => "why_so",
            ExplainKind::WhyNo => "why_no",
            ExplainKind::RankTopK(_) => "rank_top_k",
        }
    }
}

/// A served explanation with its provenance metadata.
#[derive(Clone, Debug)]
pub struct ExplainResponse {
    /// The explanation, or the error the computation hit.
    pub result: Result<Explanation, ServiceError>,
    /// Version of the snapshot the request was evaluated against.
    pub snapshot_version: u64,
    /// Whether the explanation came from the responsibility cache.
    pub cache_hit: bool,
}

impl ExplainResponse {
    /// The explanation, panicking on a failed request (test convenience).
    pub fn expect_explanation(self) -> Explanation {
        match self.result {
            Ok(e) => e,
            Err(e) => panic!("explain request failed: {e}"),
        }
    }
}

/// Errors surfaced by the service.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The service has shut down (or its worker died) before responding.
    Disconnected,
    /// The bounded request queue is full (`try_submit` only).
    QueueFull,
    /// Admission control rejected the request: the target shard's queue
    /// depth had reached its configured limit. The reject is returned to
    /// the caller immediately (never silently dropped) so an open-loop
    /// client can back off or shed load.
    Overloaded {
        /// How long the caller should wait before retrying, derived from
        /// the shard's queue depth and its observed drain rate (PR 9).
        retry_after: Duration,
    },
    /// The tenant's circuit breaker is open: this tenant's recent
    /// requests kept failing, so the tier sheds its traffic before it
    /// consumes worker time. Retry after the hint, when the breaker
    /// admits a half-open probe.
    CircuitOpen {
        /// How long until the breaker transitions to half-open.
        retry_after: Duration,
    },
    /// The request's deadline budget expired before a worker started
    /// computing it; the job was discarded at the queue instead of
    /// occupying a worker past its budget.
    DeadlineExceeded,
    /// Waiting for a response timed out; the computation may still finish.
    Timeout,
    /// The request is malformed (answer arity or constants disagree with
    /// the query head).
    InvalidRequest(String),
    /// The underlying cause/responsibility computation failed.
    Core(CoreError),
    /// The computation panicked. The worker caught the panic, recovered,
    /// and kept serving — only this request is affected.
    Panicked(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Disconnected => write!(f, "explanation service is shut down"),
            ServiceError::QueueFull => write!(f, "request queue is full"),
            ServiceError::Overloaded { retry_after } => {
                write!(
                    f,
                    "admission control rejected the request: shard overloaded \
                     (retry after {retry_after:?})"
                )
            }
            ServiceError::CircuitOpen { retry_after } => {
                write!(
                    f,
                    "tenant circuit breaker is open (retry after {retry_after:?})"
                )
            }
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline budget expired before the request was served")
            }
            ServiceError::Timeout => write!(f, "timed out waiting for a response"),
            ServiceError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ServiceError::Core(e) => write!(f, "{e}"),
            ServiceError::Panicked(why) => {
                write!(f, "explanation computation panicked: {why}")
            }
        }
    }
}

impl ServiceError {
    /// Stable label used as the `outcome` attribute of request traces.
    pub fn outcome_label(&self) -> &'static str {
        match self {
            ServiceError::Disconnected => "disconnected",
            ServiceError::QueueFull => "queue_full",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::CircuitOpen { .. } => "circuit_open",
            ServiceError::DeadlineExceeded => "deadline_exceeded",
            ServiceError::Timeout => "timeout",
            ServiceError::InvalidRequest(_) => "invalid_request",
            ServiceError::Core(_) => "error",
            ServiceError::Panicked(_) => "panicked",
        }
    }

    /// Whether a retry of the same request may legitimately succeed.
    ///
    /// Retryable errors are *transient tier states* — a full queue, an
    /// overloaded shard, an open breaker, a response-wait timeout, or a
    /// panicked worker (the shard recovered; the panic poisoned one
    /// request, not the data). Terminal errors are properties of the
    /// request itself ([`ServiceError::InvalidRequest`],
    /// [`ServiceError::Core`]), of its expired budget
    /// ([`ServiceError::DeadlineExceeded`]), or of a shut-down tier
    /// ([`ServiceError::Disconnected`]); retrying those burns worker
    /// time to reproduce the same answer.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServiceError::QueueFull
            | ServiceError::Overloaded { .. }
            | ServiceError::CircuitOpen { .. }
            | ServiceError::Timeout
            | ServiceError::Panicked(_) => true,
            ServiceError::Disconnected
            | ServiceError::DeadlineExceeded
            | ServiceError::InvalidRequest(_)
            | ServiceError::Core(_) => false,
        }
    }

    /// The back-off hint carried by retryable rejects, if any.
    pub fn retry_after_hint(&self) -> Option<Duration> {
        match self {
            ServiceError::Overloaded { retry_after }
            | ServiceError::CircuitOpen { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

/// Handle to one in-flight request; resolves to an [`ExplainResponse`].
#[derive(Debug)]
pub struct PendingExplain {
    pub(crate) rx: Receiver<ExplainResponse>,
}

impl PendingExplain {
    /// Block until the response arrives.
    pub fn wait(self) -> Result<ExplainResponse, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Disconnected)
    }

    /// Block up to `timeout` for the response.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ExplainResponse, ServiceError> {
        use std::sync::mpsc::RecvTimeoutError;
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServiceError::Timeout,
            RecvTimeoutError::Disconnected => ServiceError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_method() {
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let r = ExplainRequest::why_so(q.clone(), vec![Value::str("a2")]);
        assert_eq!(r.kind, ExplainKind::WhySo);
        assert_eq!(r.method, Method::Auto);
        let r =
            ExplainRequest::why_no(q.clone(), vec![Value::str("a2")]).with_method(Method::Exact);
        assert_eq!(r.kind, ExplainKind::WhyNo);
        assert_eq!(r.method, Method::Exact);
        let r = ExplainRequest::rank_top_k(q, vec![Value::str("a2")], 3);
        assert_eq!(r.kind, ExplainKind::RankTopK(3));
    }

    #[test]
    fn requests_are_hashable_cache_keys() {
        use std::collections::HashSet;
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let mut set = HashSet::new();
        set.insert(ExplainRequest::why_so(q.clone(), vec![Value::str("a2")]));
        set.insert(ExplainRequest::why_so(q.clone(), vec![Value::str("a2")]));
        set.insert(ExplainRequest::why_no(q, vec![Value::str("a2")]));
        assert_eq!(set.len(), 2, "identical requests collapse");
    }

    #[test]
    fn error_display() {
        assert!(ServiceError::Disconnected.to_string().contains("shut down"));
        assert!(ServiceError::QueueFull.to_string().contains("full"));
        let overloaded = ServiceError::Overloaded {
            retry_after: Duration::from_millis(7),
        };
        assert!(overloaded.to_string().contains("overloaded"));
        assert!(overloaded.to_string().contains("7ms"));
        let open = ServiceError::CircuitOpen {
            retry_after: Duration::from_millis(40),
        };
        assert!(open.to_string().contains("breaker"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServiceError::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn retryable_taxonomy_splits_transient_from_terminal() {
        let retryable: [ServiceError; 5] = [
            ServiceError::QueueFull,
            ServiceError::Overloaded {
                retry_after: Duration::from_millis(1),
            },
            ServiceError::CircuitOpen {
                retry_after: Duration::from_millis(1),
            },
            ServiceError::Timeout,
            ServiceError::Panicked("boom".into()),
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        let terminal: [ServiceError; 3] = [
            ServiceError::Disconnected,
            ServiceError::DeadlineExceeded,
            ServiceError::InvalidRequest("arity".into()),
        ];
        for e in &terminal {
            assert!(!e.is_retryable(), "{e} should be terminal");
        }
    }

    #[test]
    fn retry_after_hint_only_on_shed_errors() {
        let overloaded = ServiceError::Overloaded {
            retry_after: Duration::from_millis(9),
        };
        assert_eq!(
            overloaded.retry_after_hint(),
            Some(Duration::from_millis(9))
        );
        assert_eq!(ServiceError::Timeout.retry_after_hint(), None);
    }
}
