//! Deterministic fault injection: the seeded [`FaultPlan`] (PR 9).
//!
//! PR 4 introduced a single `inject_fault` hook — a closure that can
//! make the next matching computation panic. That is enough to prove
//! isolation, not recovery: a self-healing tier has to be soaked with
//! *schedules* of faults (panic bursts, worker stalls, submission
//! bursts that fill channels, poisoned cache locks) and must converge
//! back to healthy every time. A [`FaultPlan`] is such a schedule,
//! generated from a seed: the same seed yields the same plan,
//! event-for-event, so a chaos failure in CI is replayable locally by
//! copying one number out of the log. Per-request events key on the
//! shard's *request ordinal* (the position of the request in that
//! shard's processing order), not on wall time — time-based injection
//! would un-determinize the plan on a loaded machine.

use crate::retry::JitterRng;
use std::fmt;
use std::time::Duration;

/// One kind of injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The computation panics (caught by the worker's isolation layer).
    Panic,
    /// The worker sleeps this long mid-computation, simulating a wedge.
    Stall(Duration),
    /// The computation panics while holding the responsibility-cache
    /// lock, poisoning it (the shard must recover the lock).
    PoisonCache,
    /// Harness-level: submit this many extra back-to-back requests to
    /// the shard, driving its bounded channel toward full.
    Burst(u32),
    /// Harness-level: skew the injected test clock backwards by this
    /// much (exercised against `ManualClock`; the state machines must
    /// survive time moving the wrong way).
    ClockSkew(Duration),
}

impl FaultKind {
    /// Whether the fault is injected per request inside a worker (vs
    /// driven by the harness around the tier).
    pub fn is_worker_fault(self) -> bool {
        matches!(
            self,
            FaultKind::Panic | FaultKind::Stall(_) | FaultKind::PoisonCache
        )
    }
}

/// One scheduled fault: `kind` fires on shard `shard` when its request
/// ordinal reaches `at_ordinal`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// Target shard index.
    pub shard: usize,
    /// The shard-local request ordinal the event fires at. Worker
    /// faults match the request with exactly this ordinal; harness
    /// events fire when the harness observes the ordinal pass this
    /// value.
    pub at_ordinal: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// What a worker should do to the computation of one request, combining
/// every worker fault scheduled for its ordinal.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultAction {
    /// Sleep this long before computing.
    pub stall: Option<Duration>,
    /// Panic (after any stall).
    pub panic: bool,
    /// Panic while holding the responsibility-cache lock.
    pub poison: bool,
}

impl FaultAction {
    /// True when no fault applies.
    pub fn is_noop(&self) -> bool {
        *self == FaultAction::default()
    }
}

/// A seeded, replayable schedule of faults across a tier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// All scheduled events, sorted by `(shard, at_ordinal)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the plan for `seed` over a tier of `shards` shards,
    /// scheduling events within the first `horizon` request ordinals of
    /// each shard.
    ///
    /// The mix is chosen to exercise every recovery path: each shard
    /// gets a panic burst (long enough to trip quarantine under the
    /// default [`crate::SupervisorConfig`]), at least one stall, an
    /// occasional cache poisoning, and the tier gets submission bursts
    /// and one clock-skew event. Generation touches nothing but the
    /// seeded generator, so equal seeds yield equal plans.
    pub fn generate(seed: u64, shards: usize, horizon: u64) -> Self {
        let mut rng = JitterRng::new(seed);
        let mut events = Vec::new();
        let horizon = horizon.max(16);
        for shard in 0..shards {
            // A consecutive panic burst somewhere in the first half.
            let burst_len = 5 + rng.below(3); // 5..8 ≥ default panic_quarantine
            let start = rng.below(horizon / 2).max(1);
            for i in 0..burst_len {
                events.push(FaultEvent {
                    shard,
                    at_ordinal: start + i,
                    kind: FaultKind::Panic,
                });
            }
            // One or two stalls in the second half.
            for _ in 0..(1 + rng.below(2)) {
                events.push(FaultEvent {
                    shard,
                    at_ordinal: horizon / 2 + rng.below(horizon / 2),
                    kind: FaultKind::Stall(Duration::from_millis(5 + rng.below(20))),
                });
            }
            // Cache poisoning on roughly half the shards.
            if rng.below(2) == 0 {
                events.push(FaultEvent {
                    shard,
                    at_ordinal: rng.below(horizon).max(1),
                    kind: FaultKind::PoisonCache,
                });
            }
            // A submission burst aimed at this shard.
            events.push(FaultEvent {
                shard,
                at_ordinal: rng.below(horizon).max(1),
                kind: FaultKind::Burst(16 + rng.below(48) as u32),
            });
        }
        // One tier-wide clock-skew event, attributed to shard 0.
        events.push(FaultEvent {
            shard: 0,
            at_ordinal: rng.below(horizon).max(1),
            kind: FaultKind::ClockSkew(Duration::from_millis(10 + rng.below(90))),
        });
        events.sort_by_key(|e| (e.shard, e.at_ordinal));
        FaultPlan { seed, events }
    }

    /// The combined worker-side action for one request, identified by
    /// its shard and shard-local ordinal.
    pub fn action_for(&self, shard: usize, ordinal: u64) -> FaultAction {
        let mut action = FaultAction::default();
        for e in self
            .events
            .iter()
            .filter(|e| e.shard == shard && e.at_ordinal == ordinal)
        {
            match e.kind {
                FaultKind::Panic => action.panic = true,
                FaultKind::Stall(d) => {
                    action.stall = Some(action.stall.unwrap_or(Duration::ZERO).max(d))
                }
                FaultKind::PoisonCache => action.poison = true,
                FaultKind::Burst(_) | FaultKind::ClockSkew(_) => {}
            }
        }
        action
    }

    /// The harness-level events (bursts, clock skew) in schedule order.
    pub fn harness_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| !e.kind.is_worker_fault())
    }

    /// A stable one-line-per-event rendering, used both for debugging
    /// and as the bit-identity witness in the determinism proptest.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("fault plan seed={}\n", self.seed);
        for e in &self.events {
            let _ = writeln!(
                out,
                "  shard={} ordinal={} {}",
                e.shard, e.at_ordinal, e.kind
            );
        }
        out
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Stall(d) => write!(f, "stall({}ms)", d.as_millis()),
            FaultKind::PoisonCache => write!(f, "poison_cache"),
            FaultKind::Burst(n) => write!(f, "burst({n})"),
            FaultKind::ClockSkew(d) => write!(f, "clock_skew(-{}ms)", d.as_millis()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_generate_identical_plans() {
        let a = FaultPlan::generate(1234, 4, 500);
        let b = FaultPlan::generate(1234, 4, 500);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_generate_different_plans() {
        let a = FaultPlan::generate(1, 4, 500);
        let b = FaultPlan::generate(2, 4, 500);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn every_shard_gets_a_quarantine_grade_panic_burst() {
        let plan = FaultPlan::generate(99, 3, 400);
        for shard in 0..3 {
            let panics = plan
                .events
                .iter()
                .filter(|e| e.shard == shard && e.kind == FaultKind::Panic)
                .count();
            assert!(panics >= 5, "shard {shard} has only {panics} panics");
        }
    }

    #[test]
    fn action_for_combines_coincident_events() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    shard: 0,
                    at_ordinal: 7,
                    kind: FaultKind::Stall(Duration::from_millis(3)),
                },
                FaultEvent {
                    shard: 0,
                    at_ordinal: 7,
                    kind: FaultKind::Panic,
                },
            ],
        };
        let action = plan.action_for(0, 7);
        assert_eq!(action.stall, Some(Duration::from_millis(3)));
        assert!(action.panic);
        assert!(!action.poison);
        assert!(plan.action_for(0, 8).is_noop());
        assert!(plan.action_for(1, 7).is_noop());
    }

    #[test]
    fn harness_events_are_the_non_worker_ones() {
        let plan = FaultPlan::generate(5, 2, 300);
        for e in plan.harness_events() {
            assert!(matches!(
                e.kind,
                FaultKind::Burst(_) | FaultKind::ClockSkew(_)
            ));
        }
        assert!(plan.harness_events().count() >= 3, "2 bursts + 1 skew");
    }
}
