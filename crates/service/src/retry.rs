//! Front-end retry policy: seeded jittered exponential backoff plus
//! optional tail-latency hedging (PR 9).
//!
//! The policy is deliberately *deterministic given its seed*: backoff
//! schedules come from a seeded xorshift generator, so a failing run
//! can be replayed jitter-for-jitter. Full jitter (waits drawn
//! uniformly from `[0, min(cap, base·2^attempt))`) is used rather than
//! equal jitter because retries here are triggered by *load* errors —
//! spreading the retry storm across the whole window is what stops
//! synchronized clients from re-overloading a recovering shard.

use std::time::Duration;

/// When and how the front end retries retryable failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total submission attempts (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff; attempt `n` waits up to `base * 2^n`.
    pub base: Duration,
    /// Upper bound on any single backoff wait.
    pub cap: Duration,
    /// Seed of the jitter stream; equal seeds replay equal schedules.
    pub jitter_seed: u64,
    /// If set, a hedge request is sent to a healthy sibling shard when
    /// the first attempt has produced no response after this long.
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            hedge_after: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never hedges (PR ≤ 8 behaviour).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            hedge_after: None,
            ..RetryPolicy::default()
        }
    }
}

/// Small xorshift64* generator backing the jitter stream. Seeded, so
/// the schedule is reproducible; not a statistical RNG, which backoff
/// jitter does not need.
#[derive(Clone, Debug)]
pub struct JitterRng(u64);

impl JitterRng {
    /// A generator for `seed` (zero is remapped; xorshift fixes at 0).
    pub fn new(seed: u64) -> Self {
        JitterRng(if seed == 0 {
            0x4d59_5df4_d0f3_3173
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The full-jitter backoff before retry `attempt` (1-based: the wait
/// between the first failure and the second attempt has `attempt == 1`).
///
/// Uniform in `[0, min(cap, base · 2^attempt))`, but at least `floor`
/// when the failed attempt carried a `retry_after` hint — the tier told
/// us when capacity is expected back, and retrying earlier just burns
/// an attempt on a reject.
pub fn backoff(
    policy: &RetryPolicy,
    rng: &mut JitterRng,
    attempt: u32,
    floor: Option<Duration>,
) -> Duration {
    let base_us = policy.base.as_micros().min(u128::from(u64::MAX)) as u64;
    let cap_us = policy.cap.as_micros().min(u128::from(u64::MAX)) as u64;
    let window = base_us
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        .min(cap_us);
    let jittered = rng.below(window.saturating_add(1));
    let floor_us = floor
        .map(|f| f.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
        .min(cap_us);
    Duration::from_micros(jittered.max(floor_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let policy = RetryPolicy::default();
        let mut a = JitterRng::new(42);
        let mut b = JitterRng::new(42);
        for attempt in 1..10 {
            assert_eq!(
                backoff(&policy, &mut a, attempt, None),
                backoff(&policy, &mut b, attempt, None)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let policy = RetryPolicy::default();
        let mut a = JitterRng::new(1);
        let mut b = JitterRng::new(2);
        let diverged = (1..10).any(|attempt| {
            backoff(&policy, &mut a, attempt, None) != backoff(&policy, &mut b, attempt, None)
        });
        assert!(diverged);
    }

    #[test]
    fn waits_stay_within_the_exponential_window_and_cap() {
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            ..RetryPolicy::default()
        };
        let mut rng = JitterRng::new(7);
        for attempt in 1..20 {
            let window = Duration::from_millis((1u64 << attempt.min(4)).min(8));
            let wait = backoff(&policy, &mut rng, attempt, None);
            assert!(wait <= window, "attempt {attempt}: {wait:?} > {window:?}");
            assert!(wait <= policy.cap);
        }
    }

    #[test]
    fn retry_after_hint_floors_the_wait() {
        let policy = RetryPolicy {
            base: Duration::from_micros(1),
            cap: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut rng = JitterRng::new(3);
        let hint = Duration::from_millis(10);
        let wait = backoff(&policy, &mut rng, 1, Some(hint));
        assert!(wait >= hint);
    }

    #[test]
    fn hint_floor_is_capped() {
        let policy = RetryPolicy {
            cap: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        let mut rng = JitterRng::new(3);
        let wait = backoff(&policy, &mut rng, 1, Some(Duration::from_secs(60)));
        assert!(wait <= policy.cap);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = JitterRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
