//! # causality-service — a concurrent explanation service
//!
//! The paper's central message is that the explanation workloads which
//! matter in practice are *cheap*: Why-So causes are PTIME for all
//! conjunctive queries (Theorem 3.2), Why-No responsibility is PTIME
//! outright (Theorem 4.17), and the dichotomy of Corollary 4.14 tells us
//! exactly when Why-So responsibility is too. Cheap enough, that is, to
//! serve interactively — the "explain this answer" workload sketched in
//! the companion paper *Why so? or Why no?* (arXiv:0912.5340).
//!
//! This crate turns the `causality` workspace from a single-threaded
//! library into that serving layer (std-only — no async runtime),
//! structured as a tier of three layers:
//!
//! * **front end** ([`ShardedService`]) — validates requests, stamps
//!   per-request deadline budgets, and applies bounded admission: a
//!   submit that finds its target shard's queue at the configured depth
//!   is rejected with [`ServiceError::Overloaded`] instead of queueing,
//!   so tail latency stays flat when an open-loop client outruns the
//!   tier;
//! * **dispatch** ([`TenantId`], `dispatch` module) — routes each
//!   tenant, stably by name, to one of [`TierConfig::shards`] shards;
//! * **shards** (`shard` + `worker` modules) — each shard owns its
//!   tenants' snapshot stores, a worker pool pulling typed
//!   [`ExplainRequest`]s (Why-So, Why-No, rank-top-k) off one bounded
//!   queue with batch draining per pull, its own
//!   [`SharedIndexCache`](causality_engine::SharedIndexCache), and its
//!   own responsibility LRU — so one tenant's writes or traffic can
//!   never evict, queue behind, or crash another shard's tenants.
//!
//! [`CausalityService`] remains as the single-tenant facade over one
//! shard (blocking `submit` backpressure, `try_submit`, no admission
//! control), preserving the original embedded-service semantics.
//!
//! Mechanisms shared by both entry points:
//! * snapshots — writers [`CausalityService::publish`]/[`CausalityService::update`]
//!   new immutable database versions while readers keep evaluating
//!   against the snapshot they pinned (see
//!   [`causality_engine::snapshot`]). Snapshots are structurally shared:
//!   the database holds one `Arc` per relation, so publishing an update
//!   clones only the relations it touches — O(touched data), not
//!   O(database);
//! * index reuse — one
//!   [`SharedIndexCache`](causality_engine::SharedIndexCache) serves
//!   every snapshot version: its entries are keyed on per-relation
//!   content stamps (`(RelId, RelVersion, pattern)`), so the evaluator's
//!   hash indexes are built once per relation content — a write to one
//!   relation leaves every other relation's indexes warm;
//! * a responsibility cache — finished explanations are memoized in an
//!   LRU keyed on (the query's relations' content stamps, request), so a
//!   cached answer survives writes to relations the query never reads;
//!   duplicate in-batch requests are coalesced into one computation, and
//!   hit/miss/coalesce/eviction counters are exposed via
//!   [`ServiceStats`];
//! * parallel top-k ranking — [`ExplainKind::RankTopK`] requests run
//!   the parallel executor (`causality_core::ranking::parallel`):
//!   candidates screened by a cheap responsibility upper bound, solved
//!   on [`ServiceConfig::rank_parallelism`] scoped threads, pruned once
//!   they provably cannot enter the top k — bit-identical to the
//!   sequential ranking, with [`ServiceStats::rank_tasks`] /
//!   [`ServiceStats::topk_pruned`] accounting;
//! * failure isolation — every fresh computation runs behind a
//!   `catch_unwind` boundary, so a panicking job resolves to
//!   [`ServiceError::Panicked`] instead of killing its worker (counted
//!   in [`ServiceStats::panics_caught`]); service mutexes recover from
//!   poisoning, and [`CausalityService::inject_fault`] /
//!   [`CausalityService::inject_delay`] let tests panic or stall chosen
//!   requests on purpose;
//! * observability — [`ServiceStats`] carries request/cache/coalesce
//!   counters, admission rejects, deadline misses, a live queue-depth
//!   gauge, and a fixed-bucket submit→response latency histogram
//!   ([`ServiceStats::p50_us`]/[`ServiceStats::p99_us`]);
//!   `snapshot_and_reset` separates measurement phases without
//!   restarting the tier. Since PR 7 every counter lives in a per-shard
//!   [`causality_telemetry`] registry exported verbatim — full histogram
//!   buckets included — via
//!   [`ShardedService::export_metrics`] (Prometheus text) and
//!   [`ShardedService::export_metrics_jsonl`];
//! * request tracing — sampled requests (rate set by
//!   [`TelemetryConfig::sample_rate`]) carry a span builder through
//!   admission → dispatch → shard queue → worker dequeue → snapshot pin
//!   → lineage/intern → kernel solve → respond, stamped with causal
//!   attributes (dichotomy class, minimized lineage size, ρ_max, cache
//!   hit/coalesce flags, deadline slack). Finished traces land in a
//!   bounded per-shard ring ([`ShardedService::recent_traces`] /
//!   [`ShardedService::export_traces`]), and requests crossing the
//!   configured latency or slack thresholds are duplicated into an
//!   explanation slow-log ([`ShardedService::slow_log_records`]);
//! * hardness-aware routing (PR 8) — workers classify each Why-So
//!   request with the dichotomy tag before solving: PTIME instances run
//!   the exact kernels exactly as before, while NP-hard instances that
//!   carry a deadline are routed to the anytime responsibility kernel
//!   (`causality_core::resp::approx`). The anytime path spends the
//!   remaining deadline slack refining certified `[lower, upper]`
//!   responsibility bounds and always returns an
//!   [`ExplainMode::Approximate`] answer with sound [`RhoBounds`] — a
//!   hard instance under a tight deadline degrades to a coarser bracket
//!   instead of a [`ServiceError::DeadlineExceeded`] error. Approximate
//!   answers are never cached, and the route is visible in telemetry
//!   ([`ServiceStats::approx_requests`], the `bound_width_ppm`
//!   histogram, and the `approx_refine` trace stage);
//! * self-healing (PR 9) — a supervisor thread classifies each shard
//!   [`HealthState::Healthy`]/[`HealthState::Degraded`]/[`HealthState::Quarantined`]
//!   from live signals (panic streaks, queue stalls, deadline-miss
//!   rate), restarts a quarantined shard's worker pool **on the same
//!   queue** (loss-free by construction) and probes it back to healthy;
//!   [`ShardedService::explain_with_retry`] retries transient failures
//!   ([`ServiceError::is_retryable`]) under seeded full-jitter backoff
//!   with optional tail-latency hedging, re-routing away from unhealthy
//!   shards; per-tenant circuit breakers ([`BreakerConfig`]) shed a
//!   tenant whose requests keep dying before they can occupy queues;
//!   and past a configurable high-water mark the tier *browns out*,
//!   serving routable NP-hard requests inline with the certified
//!   zero-budget bracket instead of rejecting them. Deterministic chaos
//!   soaks drive all of it via seeded [`FaultPlan`]s
//!   ([`ShardedService::install_fault_plan`]).
//!
//! # Example
//!
//! ```
//! use causality_service::{CausalityService, ExplainRequest, ServiceConfig};
//! use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
//!
//! let svc = CausalityService::with_config(
//!     example_2_2(),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//! let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
//!
//! // Cold: computed by a worker. Warm: served from the LRU cache.
//! let req = ExplainRequest::why_so(q, vec![Value::str("a2")]);
//! let cold = svc.explain(req.clone()).unwrap();
//! let warm = svc.explain(req).unwrap();
//! assert!(!cold.cache_hit && warm.cache_hit);
//! assert_eq!(cold.expect_explanation(), warm.expect_explanation());
//! assert_eq!(svc.stats().cache_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod clock;
pub mod dispatch;
pub mod frontend;
pub mod lru;
pub mod request;
pub mod retry;
pub mod service;
pub mod shard;
pub mod stats;
pub mod supervisor;
pub(crate) mod worker;

pub use breaker::{BreakerConfig, BreakerState};
pub use chaos::{FaultAction, FaultEvent, FaultKind, FaultPlan};
pub use clock::{Clock, ManualClock, SystemClock};
pub use dispatch::TenantId;
pub use frontend::{ShardedService, TierConfig, TierStats};
pub use lru::LruCache;
pub use request::{ExplainKind, ExplainRequest, ExplainResponse, PendingExplain, ServiceError};
pub use retry::{JitterRng, RetryPolicy};
pub use service::CausalityService;
pub use shard::ServiceConfig;
pub use stats::{FrontendStats, ServiceStats};
pub use supervisor::{HealthState, SupervisorConfig};

// The anytime-answer vocabulary (PR 8): NP-hard Why-So requests carrying a
// deadline are routed to the anytime kernel and come back with
// `ExplainMode::Approximate` and certified `RhoBounds` instead of timing out.
pub use causality_core::explain::ExplainMode;
pub use causality_core::resp::approx::{ApproxBudget, RhoBounds};

// The telemetry vocabulary a service embedder needs: the config knob on
// [`ServiceConfig`] plus the trace types the export APIs return.
pub use causality_telemetry::{RequestTrace, Stage, StageSpan, TelemetryConfig};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_send_sync() {
        assert_send_sync::<CausalityService>();
        assert_send_sync::<ShardedService>();
        assert_send_sync::<TenantId>();
        assert_send_sync::<ExplainRequest>();
        assert_send_sync::<ExplainResponse>();
        assert_send_sync::<ServiceStats>();
        assert_send_sync::<TierStats>();
    }
}
