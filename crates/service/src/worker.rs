//! The worker loop shared by every shard: batch draining, coalescing,
//! deadline enforcement, cache lookup, panic isolation, and latency
//! accounting.
//!
//! Workers pull [`Job`]s off their shard's one bounded channel. Each
//! pull drains up to `batch_max` queued jobs into a **batch**; within a
//! batch, jobs are grouped by `(tenant, request)` and each distinct
//! group is evaluated exactly once against a single pinned snapshot of
//! that tenant's store. Every response — success, error, deadline miss —
//! is recorded in the shard's submit→response latency histogram.

use crate::request::{ExplainKind, ExplainRequest, ExplainResponse, ServiceError};
use crate::shard::{lock_unpoisoned, resp_fingerprint, ShardCore, TenantKey};
use crate::stats::StatsCounters;
use causality_core::explain::{Explainer, Explanation};
use causality_engine::{SharedIndexCache, Snapshot};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One queued unit of work: a request bound to a tenant, carrying its
/// enqueue instant (for the latency histogram) and an optional deadline.
pub(crate) struct Job {
    /// Which tenant's snapshot store serves this request.
    pub tenant: TenantKey,
    /// The request itself.
    pub request: ExplainRequest,
    /// If set, the instant past which the job must not *start*: a worker
    /// draining an expired job responds [`ServiceError::DeadlineExceeded`]
    /// instead of computing. (A computation already underway runs to
    /// completion — enforcement is at admission and dequeue, which bounds
    /// the overrun by one batch's compute time.)
    pub deadline: Option<Instant>,
    /// When the job was accepted, for submit→response latency.
    pub enqueued: Instant,
    /// Where the response goes.
    pub tx: Sender<ExplainResponse>,
}

/// What travels on a shard's queue.
pub(crate) enum Msg {
    /// A unit of work.
    Job(Box<Job>),
    /// One worker should exit after finishing its current batch.
    Shutdown,
}

/// Send `response` for a job accepted at `enqueued`, recording the
/// submit→response latency. A requester that dropped its handle is not
/// an error.
fn respond(
    core: &ShardCore,
    enqueued: Instant,
    tx: &Sender<ExplainResponse>,
    response: ExplainResponse,
) {
    core.stats.latency.record(enqueued.elapsed());
    let _ = tx.send(response);
}

pub(crate) fn worker_loop(rx: &Mutex<Receiver<Msg>>, core: &ShardCore) {
    loop {
        let mut saw_shutdown = false;
        let mut batch: Vec<Job> = Vec::new();
        {
            let rx = lock_unpoisoned(rx);
            match rx.recv() {
                Ok(Msg::Job(job)) => batch.push(*job),
                Ok(Msg::Shutdown) | Err(_) => return,
            }
            while batch.len() < core.cfg.batch_max {
                match rx.try_recv() {
                    Ok(Msg::Job(job)) => batch.push(*job),
                    Ok(Msg::Shutdown) => {
                        saw_shutdown = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        StatsCounters::gauge_dec(&core.stats.queue_depth, batch.len() as u64);
        process_batch(core, batch);
        if saw_shutdown {
            return;
        }
    }
}

/// Evaluate one batch: enforce deadlines, group identical
/// (tenant, request) pairs, serve them from the responsibility cache
/// when possible, and compute each distinct miss exactly once against a
/// snapshot pinned per group.
fn process_batch(core: &ShardCore, batch: Vec<Job>) {
    StatsCounters::bump(&core.stats.batches);
    StatsCounters::add(&core.stats.batched_requests, batch.len() as u64);

    // Deadline gate at dequeue: an expired job costs a response, never a
    // computation — the worker's budget is spent on requests that can
    // still meet theirs.
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        match job.deadline {
            Some(deadline) if deadline <= now => {
                StatsCounters::bump(&core.stats.deadline_misses);
                respond(
                    core,
                    job.enqueued,
                    &job.tx,
                    ExplainResponse {
                        result: Err(ServiceError::DeadlineExceeded),
                        snapshot_version: 0,
                        cache_hit: false,
                    },
                );
            }
            _ => live.push(job),
        }
    }

    // Coalesce identical (tenant, request) pairs, preserving first-seen
    // order. Tenants never coalesce with each other: identical queries
    // over different tenants' databases are different computations.
    type Waiters = Vec<(Instant, Sender<ExplainResponse>)>;
    let mut order: Vec<(TenantKey, ExplainRequest)> = Vec::new();
    let mut groups: HashMap<(TenantKey, ExplainRequest), Waiters> = HashMap::new();
    for job in live {
        let key = (job.tenant, job.request);
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push((job.enqueued, job.tx));
    }

    for (tenant, request) in order {
        let senders = groups
            .remove(&(tenant, request.clone()))
            .expect("grouped senders");
        let Some(store) = core.store(tenant) else {
            // Unreachable through the public API (tenants are registered
            // before their id is handed out and never removed), but a
            // stale id must get an error, not a hang.
            for (enqueued, tx) in senders {
                respond(
                    core,
                    enqueued,
                    &tx,
                    ExplainResponse {
                        result: Err(ServiceError::InvalidRequest(
                            "unknown tenant for this shard".to_string(),
                        )),
                        snapshot_version: 0,
                        cache_hit: false,
                    },
                );
            }
            continue;
        };
        let snapshot = store.current();
        let version = snapshot.version();
        let index_cache = core.index_cache_for(tenant, &snapshot);
        // Key on the content stamps of exactly the relations the query
        // reads: a hit may have been computed under an older snapshot
        // version — sound as long as those relations are untouched.
        let key = resp_fingerprint(&snapshot, &request).map(|f| (f, request.clone()));
        let cached = key.as_ref().and_then(|key| {
            let mut cache = lock_unpoisoned(&core.resp_cache);
            cache.get(key).cloned()
        });
        // Per-request accounting: a hit group is all hits; a miss group is
        // one fresh computation plus coalesced riders.
        let (result, cache_hit) = match cached {
            Some(explanation) => {
                StatsCounters::add(&core.stats.cache_hits, senders.len() as u64);
                (Ok(explanation), true)
            }
            None => {
                StatsCounters::bump(&core.stats.cache_misses);
                StatsCounters::add(&core.stats.coalesced, senders.len() as u64 - 1);
                let computed = compute_isolated(core, &snapshot, &index_cache, &request);
                if let (Some(key), Ok(explanation)) = (key, &computed) {
                    lock_unpoisoned(&core.resp_cache).insert(key, explanation.clone());
                }
                (computed, false)
            }
        };
        for (enqueued, tx) in senders {
            respond(
                core,
                enqueued,
                &tx,
                ExplainResponse {
                    result: result.clone(),
                    snapshot_version: version,
                    cache_hit,
                },
            );
        }
    }
}

/// [`compute`] behind a panic boundary. A panicking job must cost
/// exactly one response, not the worker (and with it the whole pool —
/// every worker shares the queue mutex a dying thread would poison):
/// the panic is caught, counted, and converted into
/// [`ServiceError::Panicked`] for the requester.
fn compute_isolated(
    core: &ShardCore,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
) -> Result<Explanation, ServiceError> {
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        // Evaluate the chaos hooks before panicking so their locks are
        // released by the time an unwind starts.
        let stall = lock_unpoisoned(&core.delay)
            .as_ref()
            .and_then(|hook| hook(request));
        if let Some(stall) = stall {
            std::thread::sleep(stall);
        }
        let inject = lock_unpoisoned(&core.fault)
            .as_ref()
            .is_some_and(|hook| hook(request));
        if inject {
            panic!("fault injected by chaos hook");
        }
        compute(core, snapshot, index_cache, request)
    }));
    guarded.unwrap_or_else(|payload| {
        StatsCounters::bump(&core.stats.panics_caught);
        Err(ServiceError::Panicked(panic_message(payload.as_ref())))
    })
}

/// Best-effort rendering of a caught panic payload (panics carry a
/// `&str` or `String` unless raised with a custom payload).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn compute(
    core: &ShardCore,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
) -> Result<Explanation, ServiceError> {
    let explainer = Explainer::new(snapshot.database(), &request.query)
        .with_method(request.method)
        .with_index_cache(Arc::clone(index_cache));
    match request.kind {
        ExplainKind::WhySo => Ok(explainer.why(&request.answer)?),
        ExplainKind::WhyNo => Ok(explainer.why_not(&request.answer)?),
        ExplainKind::RankTopK(k) => {
            // The top-k path: upper-bound screening skips candidates
            // that can no longer enter the top k, and the surviving
            // solves fan out over `rank_parallelism` threads.
            let (explanation, rank_stats) = explainer
                .with_parallelism(core.cfg.rank_parallelism)
                .why_top_k(&request.answer, k)?;
            StatsCounters::bump(&core.stats.rank_tasks);
            StatsCounters::add(&core.stats.topk_pruned, rank_stats.pruned as u64);
            Ok(explanation)
        }
    }
}
