//! The worker loop shared by every shard: batch draining, coalescing,
//! deadline enforcement, cache lookup, panic isolation, and latency
//! accounting.
//!
//! Workers pull [`Job`]s off their shard's one bounded channel. Each
//! pull drains up to `batch_max` queued jobs into a **batch**; within a
//! batch, jobs are grouped by `(tenant, request)` and each distinct
//! group is evaluated exactly once against a single pinned snapshot of
//! that tenant's store. Every response — success, error, deadline miss —
//! is recorded in the shard's submit→response latency histogram, and a
//! sampled job's [`TraceBuilder`] is carried through the batch so the
//! worker-side stages (dequeue, snapshot pin, lineage, kernel solve,
//! respond) land in the same trace the frontend started.

use crate::request::{ExplainKind, ExplainRequest, ExplainResponse, ServiceError};
use crate::shard::{lock_unpoisoned, resp_fingerprint, ShardCore, TenantKey};
use causality_core::explain::{ExplainMode, ExplainTiming, Explainer, Explanation};
use causality_core::ranking::Method;
use causality_core::resp::approx::ApproxBudget;
use causality_core::DichotomyTag;
use causality_engine::{SharedIndexCache, Snapshot};
use causality_telemetry::{Stage, TraceBuilder};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One queued unit of work: a request bound to a tenant, carrying its
/// enqueue instant (for the latency histogram) and an optional deadline.
pub(crate) struct Job {
    /// Which tenant's snapshot store serves this request.
    pub tenant: TenantKey,
    /// The request itself.
    pub request: ExplainRequest,
    /// If set, the instant past which the job must not *start*: a worker
    /// draining an expired job responds [`ServiceError::DeadlineExceeded`]
    /// instead of computing. (A computation already underway runs to
    /// completion — enforcement is at admission and dequeue, which bounds
    /// the overrun by one batch's compute time.)
    pub deadline: Option<Instant>,
    /// When the job was accepted, for submit→response latency.
    pub enqueued: Instant,
    /// Where the response goes.
    pub tx: Sender<ExplainResponse>,
    /// The trace under construction when the request was sampled;
    /// unsampled requests carry `None` and pay nothing further.
    pub trace: Option<Box<TraceBuilder>>,
}

/// The per-waiter remainder of a [`Job`] after coalescing detaches the
/// shared `(tenant, request)` group key.
struct JobTail {
    tenant: TenantKey,
    enqueued: Instant,
    deadline: Option<Instant>,
    tx: Sender<ExplainResponse>,
    trace: Option<Box<TraceBuilder>>,
}

/// Whether the hardness router may send this request down the anytime
/// path: a Why-So request with automatic method choice whose grounded
/// query the dichotomy classifier (Cor. 4.14 / Prop. 4.16) marks
/// NP-hard. Everything else — PTIME queries, explicit methods, Why-No,
/// top-k — keeps the exact kernels, bit-identical to a deadline-free
/// submission.
pub(crate) fn anytime_routable(request: &ExplainRequest) -> bool {
    matches!(request.kind, ExplainKind::WhySo)
        && matches!(request.method, Method::Auto)
        && matches!(
            request
                .query
                .try_ground(&request.answer)
                .map(|g| DichotomyTag::of_why_so(&g)),
            Ok(DichotomyTag::NpHard | DichotomyTag::HardSelfJoin)
        )
}

/// What travels on a shard's queue. A single-variant enum rather than a
/// bare `Box<Job>`: shutdown is signalled by dropping the sender (which
/// still drains the buffer), not by an in-band message — a restartable
/// pool (PR 9) cannot know how many in-band sentinels would be needed.
pub(crate) enum Msg {
    /// A unit of work.
    Job(Box<Job>),
}

/// Send `response` for a job accepted at `enqueued`, recording the
/// submit→response latency, reporting the outcome to the tenant's
/// circuit breaker, and finishing the job's trace (outcome label,
/// respond stage, explanation attributes). A requester that dropped its
/// handle is not an error.
fn respond(core: &ShardCore, tail: JobTail, response: ExplainResponse) {
    if let Some(mut tb) = tail.trace {
        tb.begin(Stage::Respond);
        let outcome = match &response.result {
            Ok(_) => "ok",
            Err(e) => e.outcome_label(),
        };
        tb.set_outcome(outcome);
        tb.set_cache_hit(response.cache_hit);
        tb.set_snapshot_version(response.snapshot_version);
        if let Ok(explanation) = &response.result {
            tb.set_explanation(
                explanation.dichotomy.label(),
                explanation.lineage_conjuncts as u64,
                explanation.rho_max(),
            );
        }
        core.telemetry.record(tb.finish());
    }
    // Only failures that indict the tenant's own traffic open its
    // breaker; load shedding and deadline misses are tier states, not
    // evidence against the tenant.
    let breaker_success = !matches!(
        response.result,
        Err(ServiceError::Panicked(_)) | Err(ServiceError::Core(_))
    );
    core.breakers.record(tail.tenant, breaker_success);
    core.stats.latency.record(tail.enqueued.elapsed());
    let _ = tail.tx.send(response);
}

/// One worker thread's life: drain batches off the shared queue until
/// the channel disconnects (shutdown) or this worker's `generation`
/// goes stale (a pool restart replaced it).
pub(crate) fn worker_loop(rx: &Mutex<Receiver<Msg>>, core: &ShardCore, generation: u64) {
    loop {
        if core.generation.load(Ordering::Relaxed) != generation {
            return; // retired by a pool restart
        }
        let mut batch: Vec<Job> = Vec::new();
        {
            let rx = lock_unpoisoned(rx);
            match rx.recv() {
                Ok(Msg::Job(job)) => batch.push(*job),
                Err(_) => return,
            }
            while batch.len() < core.cfg.batch_max {
                match rx.try_recv() {
                    Ok(Msg::Job(job)) => batch.push(*job),
                    Err(_) => break,
                }
            }
        }
        core.stats.queue_depth.dec(batch.len() as u64);
        process_batch(core, batch);
    }
}

/// Evaluate one batch: enforce deadlines, group identical
/// (tenant, request) pairs, serve them from the responsibility cache
/// when possible, and compute each distinct miss exactly once against a
/// snapshot pinned per group.
fn process_batch(core: &ShardCore, batch: Vec<Job>) {
    core.stats.batches.inc();
    core.stats.batched_requests.add(batch.len() as u64);

    // Deadline gate at dequeue: an expired job costs a response, never a
    // computation — the worker's budget is spent on requests that can
    // still meet theirs. Beginning `WorkerDequeue` here closes the
    // cross-thread `ShardQueue` stage the frontend opened.
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for mut job in batch {
        if let Some(tb) = job.trace.as_deref_mut() {
            tb.begin(Stage::WorkerDequeue);
        }
        match job.deadline {
            // An expired *hard* instance is rescued rather than failed:
            // the anytime path degrades gracefully to its zero-budget
            // greedy bounds, so a routable request never turns into
            // `DeadlineExceeded` once admitted. PTIME instances keep the
            // strict gate — their exact compute is the whole request, so
            // past the deadline there is nothing useful left to return.
            Some(deadline) if deadline <= now && !anytime_routable(&job.request) => {
                core.stats.deadline_misses.inc();
                respond(
                    core,
                    JobTail {
                        tenant: job.tenant,
                        enqueued: job.enqueued,
                        deadline: job.deadline,
                        tx: job.tx,
                        trace: job.trace,
                    },
                    ExplainResponse {
                        result: Err(ServiceError::DeadlineExceeded),
                        snapshot_version: 0,
                        cache_hit: false,
                    },
                );
            }
            _ => live.push(job),
        }
    }

    // Coalesce identical (tenant, request) pairs, preserving first-seen
    // order. Tenants never coalesce with each other: identical queries
    // over different tenants' databases are different computations.
    let mut order: Vec<(TenantKey, ExplainRequest)> = Vec::new();
    let mut groups: HashMap<(TenantKey, ExplainRequest), Vec<JobTail>> = HashMap::new();
    for job in live {
        let tenant = job.tenant;
        let key = (job.tenant, job.request);
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(JobTail {
            tenant,
            enqueued: job.enqueued,
            deadline: job.deadline,
            tx: job.tx,
            trace: job.trace,
        });
    }

    for (tenant, request) in order {
        let senders = groups
            .remove(&(tenant, request.clone()))
            .expect("grouped senders");
        let Some(store) = core.store(tenant) else {
            // Unreachable through the public API (tenants are registered
            // before their id is handed out and never removed), but a
            // stale id must get an error, not a hang.
            for tail in senders {
                respond(
                    core,
                    tail,
                    ExplainResponse {
                        result: Err(ServiceError::InvalidRequest(
                            "unknown tenant for this shard".to_string(),
                        )),
                        snapshot_version: 0,
                        cache_hit: false,
                    },
                );
            }
            continue;
        };
        // The pin block — snapshot pin, index-cache attach, fingerprint,
        // cache probe — runs once per group; its one measurement is
        // charged to every waiter's trace below.
        let pin_started = Instant::now();
        let snapshot = store.current();
        let version = snapshot.version();
        let index_cache = core.index_cache_for(tenant, &snapshot);
        // Key on the content stamps of exactly the relations the query
        // reads: a hit may have been computed under an older snapshot
        // version — sound as long as those relations are untouched.
        let key = resp_fingerprint(&snapshot, &request).map(|f| (f, request.clone()));
        let cached = key.as_ref().and_then(|key| {
            let mut cache = lock_unpoisoned(&core.resp_cache);
            cache.get(key).cloned()
        });
        let pin_dur = pin_started.elapsed();
        // Per-request accounting: a hit group is all hits; a miss group is
        // one fresh computation plus coalesced riders.
        let (result, timing, cache_hit) = match cached {
            Some(explanation) => {
                core.stats.cache_hits.add(senders.len() as u64);
                (Ok(explanation), None, true)
            }
            None => {
                core.stats.cache_misses.inc();
                core.stats.coalesced.add(senders.len() as u64 - 1);
                // The anytime budget is the *tightest* waiter's remaining
                // slack; a single deadline-free rider keeps the group on
                // the exact path (it was promised an exact answer).
                let deadline = senders
                    .iter()
                    .map(|t| t.deadline)
                    .try_fold(None::<Instant>, |acc, d| {
                        d.map(|d| Some(acc.map_or(d, |a| a.min(d))))
                    })
                    .flatten();
                let computed = compute_isolated(core, &snapshot, &index_cache, &request, deadline);
                let compute_end = Instant::now();
                let (computed, timing) = match computed {
                    Ok((explanation, timing)) => {
                        // Approximate explanations are never cached: a
                        // later deadline-free request must not inherit a
                        // bracket, and a cached exact entry is strictly
                        // better for everyone.
                        if let (Some(key), ExplainMode::Exact) = (key, explanation.mode) {
                            lock_unpoisoned(&core.resp_cache).insert(key, explanation.clone());
                        }
                        (Ok(explanation), Some((compute_end, timing)))
                    }
                    Err(e) => (Err(e), None),
                };
                (computed, timing, false)
            }
        };
        for (i, mut tail) in senders.into_iter().enumerate() {
            if let Some(tb) = tail.trace.as_deref_mut() {
                if !cache_hit && i > 0 {
                    tb.mark_coalesced();
                }
                tb.record_span(Stage::SnapshotPin, pin_started, pin_dur);
                // The explainer reports where its time went; anchor the
                // lineage and solve spans back from the computation's end
                // so any untimed overhead (chaos-hook delays, panic
                // recovery) falls in the gap before them and offsets stay
                // monotone.
                if let Some((compute_end, timing)) = timing {
                    let ExplainTiming {
                        lineage_us,
                        solve_us,
                    } = timing;
                    // On the anytime path the refinement's share of the
                    // solve time gets its own `approx_refine` span at the
                    // tail of the compute window.
                    let approx_us = match result.as_ref().ok().map(|e| e.mode) {
                        Some(ExplainMode::Approximate {
                            budget_spent_us, ..
                        }) => Some(budget_spent_us.min(solve_us)),
                        _ => None,
                    };
                    let refine_dur = Duration::from_micros(approx_us.unwrap_or(0));
                    let solve_dur = Duration::from_micros(solve_us - approx_us.unwrap_or(0));
                    let lineage_dur = Duration::from_micros(lineage_us);
                    let refine_start = compute_end.checked_sub(refine_dur).unwrap_or(compute_end);
                    let solve_start = refine_start.checked_sub(solve_dur).unwrap_or(refine_start);
                    let lineage_start = solve_start.checked_sub(lineage_dur).unwrap_or(solve_start);
                    tb.record_span(Stage::LineageIntern, lineage_start, lineage_dur);
                    tb.record_span(Stage::KernelSolve, solve_start, solve_dur);
                    if approx_us.is_some() {
                        tb.record_span(Stage::ApproxRefine, refine_start, refine_dur);
                    }
                }
            }
            respond(
                core,
                tail,
                ExplainResponse {
                    result: result.clone(),
                    snapshot_version: version,
                    cache_hit,
                },
            );
        }
    }
}

/// [`compute`] behind a panic boundary. A panicking job must cost
/// exactly one response, not the worker (and with it the whole pool —
/// every worker shares the queue mutex a dying thread would poison):
/// the panic is caught, counted, and converted into
/// [`ServiceError::Panicked`] for the requester.
fn compute_isolated(
    core: &ShardCore,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
    deadline: Option<Instant>,
) -> Result<(Explanation, ExplainTiming), ServiceError> {
    // Production fast path: with no chaos hooks armed, serving skips the
    // three hook mutexes entirely — one relaxed atomic load per
    // computation instead of three lock round-trips on a single core.
    let armed = core.chaos_armed.load(Ordering::Acquire);
    // The plan hook (PR 9) is consulted exactly once per computation,
    // with a single ordinal draw, so every fault kind a seeded plan
    // schedules for this request fires on this request.
    let action = if armed {
        let plan = lock_unpoisoned(&core.plan);
        plan.as_ref()
            .map(|hook| hook(core.ordinal.fetch_add(1, Ordering::Relaxed)))
            .unwrap_or_default()
    } else {
        Default::default()
    };
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        if armed {
            // Evaluate the chaos hooks before panicking so their locks
            // are released by the time an unwind starts.
            let stall = lock_unpoisoned(&core.delay)
                .as_ref()
                .and_then(|hook| hook(request));
            if let Some(stall) = stall.into_iter().chain(action.stall).max() {
                std::thread::sleep(stall);
            }
            if action.poison {
                // Poison the responsibility-cache mutex for real: panic
                // with the guard held. Serving recovers via
                // `lock_unpoisoned`.
                let _guard = lock_unpoisoned(&core.resp_cache);
                panic!("cache lock poisoned by fault plan");
            }
            let inject = lock_unpoisoned(&core.fault)
                .as_ref()
                .is_some_and(|hook| hook(request));
            if inject || action.panic {
                panic!("fault injected by chaos hook");
            }
        }
        compute(core, snapshot, index_cache, request, deadline)
    }));
    match guarded {
        Ok(result) => {
            core.consecutive_panics.store(0, Ordering::Relaxed);
            result
        }
        Err(payload) => {
            core.stats.panics_caught.inc();
            core.consecutive_panics.fetch_add(1, Ordering::Relaxed);
            Err(ServiceError::Panicked(panic_message(payload.as_ref())))
        }
    }
}

/// Best-effort rendering of a caught panic payload (panics carry a
/// `&str` or `String` unless raised with a custom payload).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn compute(
    core: &ShardCore,
    snapshot: &Snapshot,
    index_cache: &Arc<SharedIndexCache>,
    request: &ExplainRequest,
    deadline: Option<Instant>,
) -> Result<(Explanation, ExplainTiming), ServiceError> {
    let explainer = Explainer::new(snapshot.database(), &request.query)
        .with_method(request.method)
        .with_index_cache(Arc::clone(index_cache));
    match request.kind {
        // The hardness router: an NP-hard Why-So under a deadline takes
        // the anytime path, with the request's remaining slack as its
        // whole budget (an already-expired deadline degrades to the
        // zero-budget greedy bracket — still sound, never an error).
        ExplainKind::WhySo if deadline.is_some() && anytime_routable(request) => {
            let budget = ApproxBudget {
                max_steps: u64::MAX,
                deadline,
            };
            let (explanation, timing) = explainer.why_anytime(&request.answer, budget)?;
            core.stats.approx_requests.inc();
            if let ExplainMode::Approximate {
                bounds,
                refinements,
                ..
            } = explanation.mode
            {
                core.stats.approx_refinements.add(refinements as u64);
                core.stats
                    .bound_width
                    .record_us((bounds.width() * 1_000_000.0) as u64);
            }
            Ok((explanation, timing))
        }
        ExplainKind::WhySo => Ok(explainer.why_timed(&request.answer)?),
        ExplainKind::WhyNo => Ok(explainer.why_not_timed(&request.answer)?),
        ExplainKind::RankTopK(k) => {
            // The top-k path: upper-bound screening skips candidates
            // that can no longer enter the top k, and the surviving
            // solves fan out over `rank_parallelism` threads.
            let (explanation, rank_stats) = explainer
                .with_parallelism(core.cfg.rank_parallelism)
                .why_top_k(&request.answer, k)?;
            core.stats.rank_tasks.inc();
            core.stats.topk_pruned.add(rank_stats.pruned as u64);
            Ok((
                explanation,
                ExplainTiming {
                    lineage_us: rank_stats.lineage_us,
                    solve_us: rank_stats.solve_us,
                },
            ))
        }
    }
}
