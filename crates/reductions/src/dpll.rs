//! A complete DPLL SAT solver.
//!
//! The oracle for the ring reduction's correctness (Lemma C.3: `φ`
//! satisfiable ⟺ `Gφ` has a contingency of size `Σ mᵢ`). Classic DPLL
//! with unit propagation and pure-literal elimination — complete, and fast
//! at the formula sizes the reductions produce.

use crate::cnf::{Cnf, Literal};

/// Solve a CNF formula. Returns a satisfying assignment or `None`.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.var_count];
    if dpll(cnf, &mut assignment) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Whether the formula is satisfiable.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    solve(cnf).is_some()
}

#[derive(PartialEq)]
enum ClauseState {
    Satisfied,
    Unit(Literal),
    Unresolved,
    Conflict,
}

fn clause_state(lits: &[Literal], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Literal> = None;
    let mut unassigned_count = 0;
    for l in lits {
        match assignment[l.var] {
            Some(v) if v == l.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(*l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted")),
        _ => ClauseState::Unresolved,
    }
}

fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in &cnf.clauses {
            match clause_state(&clause.0, assignment) {
                ClauseState::Conflict => {
                    for v in trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                ClauseState::Unit(lit) => {
                    assignment[lit.var] = Some(lit.positive);
                    trail.push(lit.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }
    // Pure literal elimination.
    let mut polarity: Vec<(bool, bool)> = vec![(false, false); cnf.var_count];
    for clause in &cnf.clauses {
        if clause_state(&clause.0, assignment) == ClauseState::Satisfied {
            continue;
        }
        for l in &clause.0 {
            if assignment[l.var].is_none() {
                if l.positive {
                    polarity[l.var].0 = true;
                } else {
                    polarity[l.var].1 = true;
                }
            }
        }
    }
    for v in 0..cnf.var_count {
        if assignment[v].is_none() {
            match polarity[v] {
                (true, false) => {
                    assignment[v] = Some(true);
                    trail.push(v);
                }
                (false, true) => {
                    assignment[v] = Some(false);
                    trail.push(v);
                }
                _ => {}
            }
        }
    }
    // Pick a branching variable.
    let branch = (0..cnf.var_count).find(|&v| assignment[v].is_none());
    let result = match branch {
        None => cnf
            .clauses
            .iter()
            .all(|c| clause_state(&c.0, assignment) == ClauseState::Satisfied),
        Some(v) => {
            let mut ok = false;
            for value in [true, false] {
                assignment[v] = Some(value);
                if dpll(cnf, assignment) {
                    ok = true;
                    break;
                }
                assignment[v] = None;
            }
            ok
        }
    };
    if !result {
        for v in trail {
            assignment[v] = None;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn trivial_cases() {
        let empty = Cnf::new(0, vec![]);
        assert!(is_satisfiable(&empty));
        let single = Cnf::new(1, vec![clause(&[(0, true)])]);
        assert_eq!(solve(&single), Some(vec![true]));
        let contradiction = Cnf::new(1, vec![clause(&[(0, true)]), clause(&[(0, false)])]);
        assert!(!is_satisfiable(&contradiction));
    }

    #[test]
    fn unit_propagation_chain() {
        // x0, x0→x1, x1→x2 encoded as clauses.
        let cnf = Cnf::new(
            3,
            vec![
                clause(&[(0, true)]),
                clause(&[(0, false), (1, true)]),
                clause(&[(1, false), (2, true)]),
            ],
        );
        assert_eq!(solve(&cnf), Some(vec![true, true, true]));
    }

    #[test]
    fn unsatisfiable_xor_chain() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (x0 ∨ ¬x1) ∧ (¬x0 ∨ ¬x1) is UNSAT.
        let cnf = Cnf::new(
            2,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false), (1, true)]),
                clause(&[(0, true), (1, false)]),
                clause(&[(0, false), (1, false)]),
            ],
        );
        assert!(!is_satisfiable(&cnf));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 ∧ (¬p0 ∨ ¬p1).
        let cnf = Cnf::new(
            2,
            vec![
                clause(&[(0, true)]),
                clause(&[(1, true)]),
                clause(&[(0, false), (1, false)]),
            ],
        );
        assert!(!is_satisfiable(&cnf));
    }

    /// Brute-force cross-validation on random 3-CNFs.
    #[test]
    fn matches_brute_force_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let cnf = Cnf::random_3sat(5, 12, &mut rng);
            let brute = (0u32..32).any(|mask| {
                let assignment: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
                cnf.satisfied(&assignment)
            });
            match solve(&cnf) {
                Some(a) => {
                    assert!(brute, "solver found assignment for unsat formula");
                    assert!(cnf.satisfied(&a), "returned assignment must satisfy");
                }
                None => assert!(!brute, "solver missed a satisfying assignment"),
            }
        }
    }
}
