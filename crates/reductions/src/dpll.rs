//! A complete DPLL SAT solver, with an optional work budget.
//!
//! The oracle for the ring reduction's correctness (Lemma C.3: `φ`
//! satisfiable ⟺ `Gφ` has a contingency of size `Σ mᵢ`). Classic DPLL
//! with unit propagation and pure-literal elimination — complete, and fast
//! at the formula sizes the reductions produce.
//!
//! DPLL is worst-case exponential (pigeonhole formulas force it), so
//! callers that cannot afford an unbounded search use
//! [`solve_budgeted`]: the recursion charges one step per decision node
//! and aborts with [`BudgetExhausted`] once the step cap or the
//! wall-clock deadline is hit, preserving the best partial trail seen
//! so far in the error. [`solve`] stays total by running with
//! [`Budget::unlimited`].

use crate::cnf::{Cnf, Literal};
use std::time::Instant;

/// Work budget for [`solve_budgeted`]: a decision-node cap plus an
/// optional wall-clock deadline (polled every 64 nodes).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of decision nodes the search may expand.
    pub max_steps: u64,
    /// Hard wall-clock cutoff.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// No cap at all — [`solve`] in budget clothing.
    pub fn unlimited() -> Budget {
        Budget {
            max_steps: u64::MAX,
            deadline: None,
        }
    }

    /// A pure step budget (deterministic, clock-free).
    pub fn steps(max_steps: u64) -> Budget {
        Budget {
            max_steps,
            deadline: None,
        }
    }

    /// A pure wall-clock budget.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            max_steps: u64::MAX,
            deadline: Some(deadline),
        }
    }
}

/// The search ran out of budget before reaching a verdict.
///
/// Carries the best-so-far state: how many steps were spent and the
/// deepest partial assignment reached (variables the search had pinned
/// when the budget expired — a warm-start hint, *not* a model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Decision nodes expanded before the cutoff.
    pub steps_used: u64,
    /// Number of variables assigned on the deepest trail seen.
    pub deepest_trail: usize,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DPLL budget exhausted after {} steps (deepest trail: {} vars)",
            self.steps_used, self.deepest_trail
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Solve a CNF formula. Returns a satisfying assignment or `None`.
/// Total: worst-case exponential time. Use [`solve_budgeted`] on
/// untrusted instance sizes.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_budgeted(cnf, Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// [`solve`] under a step/deadline budget: `Ok(Some(model))`,
/// `Ok(None)` (proven UNSAT), or `Err(BudgetExhausted)` when the search
/// was cut off before reaching either verdict.
pub fn solve_budgeted(cnf: &Cnf, budget: Budget) -> Result<Option<Vec<bool>>, BudgetExhausted> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.var_count];
    let mut tracker = Tracker::new(budget);
    match dpll(cnf, &mut assignment, &mut tracker) {
        Ok(true) => Ok(Some(
            assignment.into_iter().map(|v| v.unwrap_or(false)).collect(),
        )),
        Ok(false) => Ok(None),
        Err(()) => Err(BudgetExhausted {
            steps_used: tracker.steps,
            deepest_trail: tracker.deepest_trail,
        }),
    }
}

/// Whether the formula is satisfiable.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    solve(cnf).is_some()
}

struct Tracker {
    max_steps: u64,
    deadline: Option<Instant>,
    steps: u64,
    deepest_trail: usize,
}

impl Tracker {
    fn new(budget: Budget) -> Tracker {
        Tracker {
            max_steps: budget.max_steps,
            deadline: budget.deadline,
            steps: 0,
            deepest_trail: 0,
        }
    }

    /// Charge one decision node; `false` once the budget is gone.
    fn step(&mut self) -> bool {
        if self.steps >= self.max_steps {
            return false;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(64) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return false;
                }
            }
        }
        true
    }
}

#[derive(PartialEq)]
enum ClauseState {
    Satisfied,
    Unit(Literal),
    Unresolved,
    Conflict,
}

fn clause_state(lits: &[Literal], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Literal> = None;
    let mut unassigned_count = 0;
    for l in lits {
        match assignment[l.var] {
            Some(v) if v == l.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(*l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted")),
        _ => ClauseState::Unresolved,
    }
}

/// `Ok(sat?)` on a completed search, `Err(())` on budget exhaustion
/// (the caller reads the tally out of the tracker).
fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>, tracker: &mut Tracker) -> Result<bool, ()> {
    if !tracker.step() {
        return Err(());
    }
    // Unit propagation.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in &cnf.clauses {
            match clause_state(&clause.0, assignment) {
                ClauseState::Conflict => {
                    for v in trail {
                        assignment[v] = None;
                    }
                    return Ok(false);
                }
                ClauseState::Unit(lit) => {
                    assignment[lit.var] = Some(lit.positive);
                    trail.push(lit.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }
    // Pure literal elimination.
    let mut polarity: Vec<(bool, bool)> = vec![(false, false); cnf.var_count];
    for clause in &cnf.clauses {
        if clause_state(&clause.0, assignment) == ClauseState::Satisfied {
            continue;
        }
        for l in &clause.0 {
            if assignment[l.var].is_none() {
                if l.positive {
                    polarity[l.var].0 = true;
                } else {
                    polarity[l.var].1 = true;
                }
            }
        }
    }
    for v in 0..cnf.var_count {
        if assignment[v].is_none() {
            match polarity[v] {
                (true, false) => {
                    assignment[v] = Some(true);
                    trail.push(v);
                }
                (false, true) => {
                    assignment[v] = Some(false);
                    trail.push(v);
                }
                _ => {}
            }
        }
    }
    tracker.deepest_trail = tracker
        .deepest_trail
        .max(assignment.iter().filter(|v| v.is_some()).count());
    // Pick a branching variable.
    let branch = (0..cnf.var_count).find(|&v| assignment[v].is_none());
    let result = match branch {
        None => cnf
            .clauses
            .iter()
            .all(|c| clause_state(&c.0, assignment) == ClauseState::Satisfied),
        Some(v) => {
            let mut ok = false;
            for value in [true, false] {
                assignment[v] = Some(value);
                match dpll(cnf, assignment, tracker) {
                    Ok(true) => {
                        ok = true;
                        break;
                    }
                    Ok(false) => assignment[v] = None,
                    Err(()) => {
                        // Unwind this frame's trail so the caller sees a
                        // consistent assignment even on abort.
                        assignment[v] = None;
                        for v in trail {
                            assignment[v] = None;
                        }
                        return Err(());
                    }
                }
            }
            ok
        }
    };
    if !result {
        for v in trail {
            assignment[v] = None;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    /// PHP(p pigeons, h holes): every pigeon gets a hole, no hole gets
    /// two pigeons. UNSAT for p > h, and exponentially hard for
    /// resolution-style search — the canonical DPLL killer.
    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let var = |p: usize, h: usize| p * holes + h;
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push(Clause(
                (0..holes).map(|h| Literal::pos(var(p, h))).collect(),
            ));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    clauses.push(clause(&[(var(p1, h), false), (var(p2, h), false)]));
                }
            }
        }
        Cnf::new(pigeons * holes, clauses)
    }

    #[test]
    fn trivial_cases() {
        let empty = Cnf::new(0, vec![]);
        assert!(is_satisfiable(&empty));
        let single = Cnf::new(1, vec![clause(&[(0, true)])]);
        assert_eq!(solve(&single), Some(vec![true]));
        let contradiction = Cnf::new(1, vec![clause(&[(0, true)]), clause(&[(0, false)])]);
        assert!(!is_satisfiable(&contradiction));
    }

    #[test]
    fn unit_propagation_chain() {
        // x0, x0→x1, x1→x2 encoded as clauses.
        let cnf = Cnf::new(
            3,
            vec![
                clause(&[(0, true)]),
                clause(&[(0, false), (1, true)]),
                clause(&[(1, false), (2, true)]),
            ],
        );
        assert_eq!(solve(&cnf), Some(vec![true, true, true]));
    }

    #[test]
    fn unsatisfiable_xor_chain() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (x0 ∨ ¬x1) ∧ (¬x0 ∨ ¬x1) is UNSAT.
        let cnf = Cnf::new(
            2,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false), (1, true)]),
                clause(&[(0, true), (1, false)]),
                clause(&[(0, false), (1, false)]),
            ],
        );
        assert!(!is_satisfiable(&cnf));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 ∧ (¬p0 ∨ ¬p1).
        let cnf = Cnf::new(
            2,
            vec![
                clause(&[(0, true)]),
                clause(&[(1, true)]),
                clause(&[(0, false), (1, false)]),
            ],
        );
        assert!(!is_satisfiable(&cnf));
    }

    /// Satellite fix: a crafted exponential instance (PHP(13, 12), far
    /// beyond what an uncapped DPLL finishes in test time) returns
    /// `BudgetExhausted` instead of hanging.
    #[test]
    fn exponential_instance_exhausts_budget_instead_of_hanging() {
        let cnf = pigeonhole(13, 12);
        let err = solve_budgeted(&cnf, Budget::steps(10_000))
            .expect_err("PHP(13,12) cannot be refuted in 10k decision nodes");
        assert_eq!(err.steps_used, 10_000);
        assert!(err.deepest_trail > 0, "best-so-far trail is reported");
        // An expired deadline aborts immediately too.
        let err = solve_budgeted(&cnf, Budget::until(Instant::now()))
            .map_err(|e| e.steps_used)
            .expect_err("expired deadline");
        assert!(err <= 64, "deadline polled within the first poll window");
    }

    /// The budgeted solver with room to spare agrees with `solve` on
    /// instances both can finish.
    #[test]
    fn budgeted_matches_total_solver_within_budget() {
        let small = pigeonhole(4, 3);
        assert_eq!(solve_budgeted(&small, Budget::steps(100_000)), Ok(None));
        assert!(!is_satisfiable(&small));
        let sat = pigeonhole(3, 3);
        let model = solve_budgeted(&sat, Budget::steps(100_000))
            .expect("within budget")
            .expect("satisfiable");
        assert!(sat.satisfied(&model));
    }

    /// Brute-force cross-validation on random 3-CNFs.
    #[test]
    fn matches_brute_force_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let cnf = Cnf::random_3sat(5, 12, &mut rng);
            let brute = (0u32..32).any(|mask| {
                let assignment: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
                cnf.satisfied(&assignment)
            });
            match solve(&cnf) {
                Some(a) => {
                    assert!(brute, "solver found assignment for unsat formula");
                    assert!(cnf.satisfied(&a), "returned assignment must satisfy");
                }
                None => assert!(!brute, "solver missed a satisfying assignment"),
            }
        }
    }
}
