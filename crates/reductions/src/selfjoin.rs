//! Vertex cover → the self-join query of Proposition 4.16.
//!
//! `q :- Rⁿ(x), S(x,y), Rⁿ(y)` is NP-hard: vertices become `R`-tuples,
//! edges become `S`-tuples, and the fresh pair `R(x₀), S(x₀,x₀)` is the
//! witness. A minimum contingency for `R(x₀)` is exactly a minimum vertex
//! cover (any `S`-tuple in a contingency can be swapped for one of its
//! endpoints). The proposition holds with `S` exogenous or endogenous;
//! both are supported.

use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};

/// The generated Prop. 4.16 instance.
#[derive(Clone, Debug)]
pub struct SelfJoinInstance {
    /// Database with `R` endogenous and `S` as configured.
    pub db: Database,
    /// `q :- R(x), S(x, y), R(y)`.
    pub query: ConjunctiveQuery,
    /// The witness tuple `R(x₀)`.
    pub witness: TupleRef,
    /// The `R`-tuple of each original vertex.
    pub vertex_tuples: Vec<TupleRef>,
}

/// Build the instance from a graph's edge list over vertices `0..n`.
pub fn reduce_vc_to_selfjoin(
    n: usize,
    edges: &[(usize, usize)],
    s_endogenous: bool,
) -> SelfJoinInstance {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x"]));
    let s = db.add_relation(Schema::new("S", &["x", "y"]));
    let vertex_tuples: Vec<TupleRef> = (0..n)
        .map(|i| db.insert_endo(r, vec![Value::int(i as i64)]))
        .collect();
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge out of range");
        db.insert(
            s,
            vec![Value::int(u as i64), Value::int(v as i64)],
            s_endogenous,
        );
    }
    let witness = db.insert_endo(r, vec![Value::int(-1)]);
    db.insert(s, vec![Value::int(-1), Value::int(-1)], s_endogenous);
    SelfJoinInstance {
        db,
        query: ConjunctiveQuery::parse("q :- R(x), S(x, y), R(y)").expect("static query"),
        witness,
        vertex_tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_core::resp::exact::why_so_responsibility_exact;
    use causality_graph::cover::min_vertex_cover;

    #[test]
    fn triangle_graph_cover_two() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        for s_endo in [false, true] {
            let inst = reduce_vc_to_selfjoin(3, &edges, s_endo);
            let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
            let cover =
                min_vertex_cover(3, &edges.iter().map(|&(a, b)| (a, b)).collect::<Vec<_>>());
            assert_eq!(resp.min_contingency.unwrap().len(), cover.len());
            assert_eq!(cover.len(), 2);
        }
    }

    #[test]
    fn star_graph_cover_one() {
        let edges = [(0, 1), (0, 2), (0, 3)];
        let inst = reduce_vc_to_selfjoin(4, &edges, false);
        let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
        let gamma = resp.min_contingency.unwrap();
        assert_eq!(gamma.len(), 1);
        // The witness responsibility is 1/2.
        assert!((resp.rho - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_witness_counterfactual() {
        let inst = reduce_vc_to_selfjoin(3, &[], false);
        let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
        assert_eq!(resp.rho, 1.0);
    }

    #[test]
    fn random_graphs_match_cover_oracle() {
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as usize
        };
        for _ in 0..12 {
            let n = 4 + next() % 3;
            let m = next() % 7;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (next() % n, next() % n))
                .filter(|&(u, v)| u != v)
                .collect();
            let cover = min_vertex_cover(n, &edges);
            for s_endo in [false, true] {
                let inst = reduce_vc_to_selfjoin(n, &edges, s_endo);
                let resp =
                    why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
                assert_eq!(
                    resp.min_contingency.unwrap().len(),
                    cover.len(),
                    "n={n} edges={edges:?} s_endo={s_endo}"
                );
            }
        }
    }
}
