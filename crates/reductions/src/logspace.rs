//! Theorem 4.15: responsibility is LOGSPACE-hard, hence not first-order.
//!
//! Even when responsibility is PTIME (the linear query
//! `q :- Rⁿ(x,u1,y), Sⁿ(y,u2,z), Tⁿ(z,u3,w)`), it cannot be computed by a
//! relational query: it is hard for LOGSPACE, shown by the chain
//!
//! ```text
//! UGAP  →  BGAP  →  Four-Partite-Max-Flow (FPMF)  →  responsibility of q
//! ```
//!
//! * UGAP → BGAP: incidence bipartition ([`causality_graph::UGraph::to_bgap`]).
//! * BGAP → FPMF: edge nodes on both sides (`U = V = E`), `U→X` and
//!   `Y→V` edges of capacity 1, the bipartite edges with capacity 2, plus
//!   the probe nodes `a' → a` and `b → b'`. Max-flow is `|E|` when `a`
//!   and `b` are disconnected and `|E| + 1` when a path exists.
//! * FPMF → query: each capacity-`c` edge becomes `c` parallel tuples
//!   (distinguished by the middle column), and the responsibility of the
//!   fresh witness tuple `R(x₀,1,y₀)` has minimum contingency exactly the
//!   max-flow value.

use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};
use causality_graph::maxflow::{FlowAlgorithm, FlowNetwork, INF};
use causality_graph::UGraph;

/// A four-partite max-flow instance in layered form.
#[derive(Clone, Debug)]
pub struct Fpmf {
    /// Number of nodes in each partition `(U, X, Y, V)`.
    pub sizes: (usize, usize, usize, usize),
    /// `U → X` edges (capacity 1).
    pub ux: Vec<(usize, usize)>,
    /// `X → Y` edges with capacity 1 or 2.
    pub xy: Vec<(usize, usize, u64)>,
    /// `Y → V` edges (capacity 1).
    pub yv: Vec<(usize, usize)>,
    /// The decision threshold `k = |E| + 1`.
    pub k: u64,
}

/// Build the FPMF instance from a bipartite graph (as produced by
/// [`UGraph::to_bgap`]): left vertices `0..left` are `X`, the rest `Y`;
/// `a ∈ X` and `c ∈ Y` are the probe endpoints.
pub fn bgap_to_fpmf(bg: &UGraph, left: usize, a: usize, c: usize) -> Fpmf {
    let edges: Vec<(usize, usize)> = bg
        .edges()
        .iter()
        .map(|&(u, v)| {
            if u < left {
                (u, v - left)
            } else {
                (v, u - left)
            }
        })
        .collect();
    let e = edges.len();
    let right = bg.vertex_count() - left;
    // U and V both have one node per bipartite edge, plus the probes a', b'.
    let mut ux: Vec<(usize, usize)> = edges
        .iter()
        .enumerate()
        .map(|(i, &(x, _))| (i, x))
        .collect();
    let mut yv: Vec<(usize, usize)> = edges
        .iter()
        .enumerate()
        .map(|(i, &(_, y))| (y, i))
        .collect();
    let xy: Vec<(usize, usize, u64)> = edges.iter().map(|&(x, y)| (x, y, 2)).collect();
    // Probe a' = U node index e; probe b' = V node index e.
    ux.push((e, a));
    yv.push((c - left, e));
    Fpmf {
        sizes: (e + 1, left, right, e + 1),
        ux,
        xy,
        yv,
        k: e as u64 + 1,
    }
}

impl Fpmf {
    /// Materialize as a flow network with source/target; returns
    /// `(network, source, target)`.
    pub fn to_network(&self) -> (FlowNetwork, usize, usize) {
        let (u, x, y, v) = self.sizes;
        let total = 2 + u + x + y + v;
        let mut net = FlowNetwork::new(total);
        let source = 0usize;
        let target = 1usize;
        let u_base = 2;
        let x_base = 2 + u;
        let y_base = x_base + x;
        let v_base = y_base + y;
        for i in 0..u {
            net.add_edge(source, u_base + i, INF);
        }
        for &(ui, xi) in &self.ux {
            net.add_edge(u_base + ui, x_base + xi, 1);
        }
        for &(xi, yi, cap) in &self.xy {
            net.add_edge(x_base + xi, y_base + yi, cap);
        }
        for &(yi, vi) in &self.yv {
            net.add_edge(y_base + yi, v_base + vi, 1);
        }
        for i in 0..v {
            net.add_edge(v_base + i, target, INF);
        }
        (net, source, target)
    }

    /// The max-flow value of the instance.
    pub fn max_flow(&self) -> u64 {
        let (net, s, t) = self.to_network();
        net.max_flow(s, t, FlowAlgorithm::Dinic).value
    }

    /// Materialize as a database instance for
    /// `q :- R(x,u1,y), S(y,u2,z), T(z,u3,w)` with a fresh witness tuple
    /// `R(x₀,1,y₀)`. All tuples endogenous. Returns `(db, query, witness)`.
    pub fn to_database(&self) -> (Database, ConjunctiveQuery, TupleRef) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "u1", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "u2", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "u3", "w"]));
        let uval = |i: usize| Value::str(format!("u{i}"));
        let xval = |i: usize| Value::str(format!("x{i}"));
        let yval = |i: usize| Value::str(format!("y{i}"));
        let vval = |i: usize| Value::str(format!("v{i}"));
        for &(ui, xi) in &self.ux {
            db.insert_endo(r, vec![uval(ui), Value::int(1), xval(xi)]);
        }
        for &(xi, yi, cap) in &self.xy {
            for mult in 1..=cap {
                db.insert_endo(s, vec![xval(xi), Value::int(mult as i64), yval(yi)]);
            }
        }
        for &(yi, vi) in &self.yv {
            db.insert_endo(t, vec![yval(yi), Value::int(1), vval(vi)]);
        }
        let witness = db.insert_endo(
            r,
            vec![Value::str("w_x0"), Value::int(1), Value::str("w_y0")],
        );
        db.insert_endo(
            s,
            vec![Value::str("w_y0"), Value::int(1), Value::str("w_z0")],
        );
        db.insert_endo(
            t,
            vec![Value::str("w_z0"), Value::int(1), Value::str("w_w0")],
        );
        let q = ConjunctiveQuery::parse("q :- R(x, u1, y), S(y, u2, z), T(z, u3, w)")
            .expect("static query");
        (db, q, witness)
    }
}

/// End-to-end chain: decide UGAP through responsibility. Returns the
/// computed minimum contingency size of the witness and the threshold
/// `k`; reachability holds iff the contingency reaches `k`.
pub fn ugap_via_responsibility(g: &UGraph, a: usize, b: usize) -> (usize, u64) {
    use causality_core::resp::exact::why_so_responsibility_exact;
    let (bg, left, a2, c) = g.to_bgap(a, b);
    let fpmf = bgap_to_fpmf(&bg, left, a2, c);
    let (db, q, witness) = fpmf.to_database();
    let resp = why_so_responsibility_exact(&db, &q, witness).expect("valid instance");
    let gamma = resp.min_contingency.expect("witness is always a cause");
    (gamma.len(), fpmf.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn fpmf_flow_distinguishes_reachability() {
        // Connected: a path 0-1-2-3, probe 0 → 3.
        let g = path_graph(4);
        let (bg, left, a, c) = g.to_bgap(0, 3);
        let fpmf = bgap_to_fpmf(&bg, left, a, c);
        assert_eq!(fpmf.max_flow(), fpmf.k, "reachable: flow = |E| + 1");

        // Disconnected: two components.
        let mut g2 = UGraph::new(4);
        g2.add_edge(0, 1);
        g2.add_edge(2, 3);
        let (bg2, left2, a2, c2) = g2.to_bgap(0, 3);
        let fpmf2 = bgap_to_fpmf(&bg2, left2, a2, c2);
        assert_eq!(fpmf2.max_flow(), fpmf2.k - 1, "unreachable: flow = |E|");
    }

    #[test]
    fn responsibility_equals_max_flow() {
        let g = path_graph(3);
        let (bg, left, a, c) = g.to_bgap(0, 2);
        let fpmf = bgap_to_fpmf(&bg, left, a, c);
        let flow = fpmf.max_flow();
        let (db, q, witness) = fpmf.to_database();
        let resp =
            causality_core::resp::exact::why_so_responsibility_exact(&db, &q, witness).unwrap();
        assert_eq!(resp.min_contingency.unwrap().len() as u64, flow);
    }

    #[test]
    fn end_to_end_chain_decides_ugap() {
        // Reachable case.
        let g = path_graph(4);
        let (gamma, k) = ugap_via_responsibility(&g, 0, 3);
        assert_eq!(gamma as u64, k, "path exists → contingency = |E| + 1");

        // Unreachable case.
        let mut g2 = UGraph::new(5);
        g2.add_edge(0, 1);
        g2.add_edge(1, 2);
        g2.add_edge(3, 4);
        let (gamma2, k2) = ugap_via_responsibility(&g2, 0, 4);
        assert_eq!(gamma2 as u64, k2 - 1, "no path → contingency = |E|");
    }

    #[test]
    fn random_graphs_agree_with_bfs() {
        let mut seed = 0xFACEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as usize
        };
        for _ in 0..8 {
            let n = 4;
            let mut g = UGraph::new(n);
            for _ in 0..(1 + next() % 4) {
                let (u, v) = (next() % n, next() % n);
                if u != v {
                    g.add_edge(u, v);
                }
            }
            let (a, b) = (0, n - 1);
            let (gamma, k) = ugap_via_responsibility(&g, a, b);
            let reachable = g.reachable(a, b);
            assert_eq!(
                gamma as u64 == k,
                reachable,
                "edges {:?} reachable={reachable}",
                g.edges()
            );
        }
    }

    #[test]
    fn database_tuple_counts() {
        let g = path_graph(3);
        let (bg, left, a, c) = g.to_bgap(0, 2);
        let fpmf = bgap_to_fpmf(&bg, left, a, c);
        let (db, _, _) = fpmf.to_database();
        // R: |ux| + witness; S: Σ caps + witness; T: |yv| + witness.
        let expected = (fpmf.ux.len() + 1)
            + (fpmf.xy.iter().map(|&(_, _, c)| c as usize).sum::<usize>() + 1)
            + (fpmf.yv.len() + 1);
        assert_eq!(db.tuple_count(), expected);
    }
}
