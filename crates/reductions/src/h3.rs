//! The h2* → h3* instance transformation (Fig. 9).
//!
//! Hardness of `h3* :- A(x), B(y), C(z), R(x,y), S(y,z), T(z,x)` follows
//! from h2* by re-encoding: every `R`-tuple of the h2* instance becomes a
//! value of `A'` (likewise `S → B'`, `T → C'`), and every *valuation*
//! `(rᵢ, sⱼ, tₖ)` of h2* becomes the triple of binary tuples
//! `R'(rᵢ,sⱼ), S'(sⱼ,tₖ), T'(tₖ,rᵢ)`. The binary relations are dominated
//! by the unary ones, so causes and responsibilities transfer verbatim
//! (proof of Theorem 4.1, h3*).

use causality_engine::{evaluate, ConjunctiveQuery, Database, Schema, TupleRef, Value};
use std::collections::BTreeMap;

/// The generated h3* instance, with the tuple correspondence.
#[derive(Clone, Debug)]
pub struct H3Instance {
    /// Database with `A`, `B`, `C` endogenous and `R`, `S`, `T` exogenous
    /// (they are dominated; Theorem 4.1 allows either nature).
    pub db: Database,
    /// `h3 :- A(x), B(y), C(z), R(x, y), S(y, z), T(z, x)`.
    pub query: ConjunctiveQuery,
    /// Maps each h2* tuple to its unary image in the h3* instance.
    pub tuple_map: BTreeMap<TupleRef, TupleRef>,
}

/// Transform an h2* database (relations `R`, `S`, `T`) into an h3*
/// database per Fig. 9. `h2_query` must be the triangle query.
pub fn h2_to_h3(h2_db: &Database, h2_query: &ConjunctiveQuery) -> H3Instance {
    let mut db = Database::new();
    let a = db.add_relation(Schema::new("A", &["x"]));
    let b = db.add_relation(Schema::new("B", &["y"]));
    let c = db.add_relation(Schema::new("C", &["z"]));
    let r2 = db.add_relation(Schema::new("R", &["x", "y"]));
    let s2 = db.add_relation(Schema::new("S", &["y", "z"]));
    let t2 = db.add_relation(Schema::new("T", &["z", "x"]));

    // One unary value per h2* tuple, named by relation and row.
    let mut tuple_map = BTreeMap::new();
    let mut value_of: BTreeMap<TupleRef, Value> = BTreeMap::new();
    for (rel_name, target) in [("R", a), ("S", b), ("T", c)] {
        let rel = h2_db
            .relation_id(rel_name)
            .expect("h2 instance has R, S, T");
        for (row, _, endo) in h2_db.relation(rel).iter() {
            let src = TupleRef { rel, row };
            let value = Value::str(format!("{}{}", rel_name.to_lowercase(), row.0));
            let dst = db.insert(target, vec![value.clone()], endo);
            tuple_map.insert(src, dst);
            value_of.insert(src, value);
        }
    }

    // One binary triple per h2* valuation.
    let result = evaluate(h2_db, h2_query).expect("h2 query evaluates");
    for val in &result.valuations {
        let (rt, st, tt) = (val.atom_tuples[0], val.atom_tuples[1], val.atom_tuples[2]);
        let (rv, sv, tv) = (
            value_of[&rt].clone(),
            value_of[&st].clone(),
            value_of[&tt].clone(),
        );
        db.insert_exo(r2, vec![rv.clone(), sv.clone()]);
        db.insert_exo(s2, vec![sv, tv.clone()]);
        db.insert_exo(t2, vec![tv, rv]);
    }

    H3Instance {
        db,
        query: ConjunctiveQuery::parse("h3 :- A(x), B(y), C(z), R(x, y), S(y, z), T(z, x)")
            .expect("static query"),
        tuple_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_core::resp::exact::why_so_responsibility_exact;
    use causality_engine::tup;

    /// Fig. 9's instance D: R = {(1,1),(1,2)}, S = {(1,1),(1,2)},
    /// T = {(1,1),(2,1)} plus r3 = (1,1) duplicate? The figure lists
    /// R = {r1(1,1), r2(1,2), r3(1,1)} — r3 duplicates r1, which a set
    /// database collapses; we use the distinct tuples.
    fn small_h2() -> (Database, ConjunctiveQuery) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        for (x, y) in [(1, 1), (1, 2)] {
            db.insert_endo(r, tup![x, y]);
        }
        for (y, z) in [(1, 1), (1, 2), (2, 1)] {
            db.insert_endo(s, tup![y, z]);
        }
        for (z, x) in [(1, 1), (2, 1)] {
            db.insert_endo(t, tup![z, x]);
        }
        let q = ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").unwrap();
        (db, q)
    }

    #[test]
    fn structure_of_transformed_instance() {
        let (db, q) = small_h2();
        let inst = h2_to_h3(&db, &q);
        // Unary relations mirror the h2 tuples.
        let a = inst.db.relation_id("A").unwrap();
        let b = inst.db.relation_id("B").unwrap();
        let c = inst.db.relation_id("C").unwrap();
        assert_eq!(inst.db.relation(a).len(), 2);
        assert_eq!(inst.db.relation(b).len(), 3);
        assert_eq!(inst.db.relation(c).len(), 2);
        // Binary relations are exogenous.
        let r = inst.db.relation_id("R").unwrap();
        assert_eq!(inst.db.relation(r).endogenous_count(), 0);
        assert_eq!(inst.tuple_map.len(), 7);
    }

    /// The heart of the reduction: responsibilities transfer through the
    /// tuple map.
    #[test]
    fn responsibility_is_preserved() {
        let (db, q) = small_h2();
        let inst = h2_to_h3(&db, &q);
        for (src, dst) in &inst.tuple_map {
            let before = why_so_responsibility_exact(&db, &q, *src).unwrap();
            let after = why_so_responsibility_exact(&inst.db, &inst.query, *dst).unwrap();
            assert_eq!(before.rho, after.rho, "tuple {src:?} → {dst:?}");
        }
    }

    /// Valuation counts match: one h3 valuation per h2 valuation.
    #[test]
    fn valuations_correspond() {
        let (db, q) = small_h2();
        let before = evaluate(&db, &q).unwrap().valuations.len();
        let inst = h2_to_h3(&db, &q);
        let after = evaluate(&inst.db, &inst.query).unwrap().valuations.len();
        assert_eq!(before, after);
    }

    /// Works on a ring-reduction instance end to end (small formula).
    #[test]
    fn composes_with_ring_reduction() {
        use crate::cnf::{Clause, Cnf, Literal};
        use crate::ring::reduce_3sat_to_h2;
        let cnf = Cnf::new(
            3,
            vec![Clause(vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(2),
            ])],
        );
        let red = reduce_3sat_to_h2(&cnf);
        let inst = h2_to_h3(&red.db, &red.query);
        // The witness's unary image exists and the instance evaluates.
        let witness_image = inst.tuple_map[&red.witness];
        assert_eq!(inst.db.relation(witness_image.rel).name(), "A");
        assert!(evaluate(&inst.db, &inst.query).unwrap().holds());
    }
}
