//! # causality-reductions — the paper's hardness constructions, executable
//!
//! Theorem 4.1, Proposition 4.16 and Theorem 4.15 are proven by
//! reductions; this crate implements every one of them as code that
//! *builds database instances*, so the test- and bench-suites can verify
//! the reductions against independent oracles (a DPLL SAT solver, exact
//! vertex-cover search, BFS reachability):
//!
//! * [`cnf`] / [`dpll`] — 3-CNF formulas, random generation, and a
//!   complete DPLL solver (the oracle for Lemma C.3).
//! * [`ring`] — the 3SAT → h2* construction: local rings (Fig. 7), clause
//!   gadgets (Fig. 8), and the global graph `Gφ` as an `R, S, T` database
//!   whose minimum contingency equals `Σᵢ mᵢ` iff `φ` is satisfiable.
//! * [`h1_vc`] — minimum vertex cover in 3-partite 3-uniform hypergraphs
//!   → h1* (Fig. 6).
//! * [`h3`] — the instance transformation h2* → h3* (Fig. 9).
//! * [`selfjoin`] — vertex cover → `Rⁿ(x), S(x,y), Rⁿ(y)` (Prop. 4.16).
//! * [`logspace`] — the UGAP → BGAP → FPMF → responsibility chain
//!   (Theorem 4.15), showing PTIME responsibility is LOGSPACE-hard and
//!   hence not expressible as a relational query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dpll;
pub mod h1_vc;
pub mod h3;
pub mod logspace;
pub mod ring;
pub mod selfjoin;

pub use cnf::{Clause, Cnf, Literal};
pub use dpll::solve as dpll_solve;
pub use dpll::{solve_budgeted as dpll_solve_budgeted, Budget, BudgetExhausted};
