//! Vertex cover in 3-partite 3-uniform hypergraphs → h1* (Fig. 6).
//!
//! For `h1* :- A(x), B(y), C(z), W(x,y,z)`: partition vertices map to the
//! unary relations `A`, `B`, `C`, hyperedges to `W`, and a fresh witness
//! row is added to each relation. The responsibility of the witness
//! `A(x₀)` is `1/(1+|cover|)` for a minimum vertex cover — because a
//! minimum contingency may w.l.o.g. avoid `W` (any `W`-tuple in it can be
//! swapped for one of its three vertices).

use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};

/// A 3-partite 3-uniform hypergraph: partition sizes and edges given as
/// `(a, b, c)` indices into the three partitions.
#[derive(Clone, Debug)]
pub struct TripartiteHypergraph {
    /// Sizes of the three partitions.
    pub sizes: (usize, usize, usize),
    /// Edges: one vertex per partition.
    pub edges: Vec<(usize, usize, usize)>,
}

/// The generated h1* instance.
#[derive(Clone, Debug)]
pub struct H1Instance {
    /// Database with relations `A`, `B`, `C` (endogenous) and `W`.
    pub db: Database,
    /// `h1 :- A(x), B(y), C(z), W(x, y, z)`.
    pub query: ConjunctiveQuery,
    /// The witness tuple `A(x₀)`.
    pub witness: TupleRef,
}

/// Build the Fig. 6 database from a tripartite hypergraph. `W` is made
/// endogenous, matching Theorem 4.1's statement that h1* is hard for
/// either nature of `W`.
pub fn reduce_vc_to_h1(h: &TripartiteHypergraph) -> H1Instance {
    let mut db = Database::new();
    let a = db.add_relation(Schema::new("A", &["x"]));
    let b = db.add_relation(Schema::new("B", &["y"]));
    let c = db.add_relation(Schema::new("C", &["z"]));
    let w = db.add_relation(Schema::new("W", &["x", "y", "z"]));
    for i in 0..h.sizes.0 {
        db.insert_endo(a, vec![Value::str(format!("x{i}"))]);
    }
    for j in 0..h.sizes.1 {
        db.insert_endo(b, vec![Value::str(format!("y{j}"))]);
    }
    for k in 0..h.sizes.2 {
        db.insert_endo(c, vec![Value::str(format!("z{k}"))]);
    }
    for &(i, j, k) in &h.edges {
        assert!(
            i < h.sizes.0 && j < h.sizes.1 && k < h.sizes.2,
            "edge out of range"
        );
        db.insert_endo(
            w,
            vec![
                Value::str(format!("x{i}")),
                Value::str(format!("y{j}")),
                Value::str(format!("z{k}")),
            ],
        );
    }
    // Witness row in every relation (x0/y0/z0 are fresh values).
    let witness = db.insert_endo(a, vec![Value::str("w_x0")]);
    db.insert_endo(b, vec![Value::str("w_y0")]);
    db.insert_endo(c, vec![Value::str("w_z0")]);
    db.insert_endo(
        w,
        vec![Value::str("w_x0"), Value::str("w_y0"), Value::str("w_z0")],
    );
    H1Instance {
        db,
        query: ConjunctiveQuery::parse("h1 :- A(x), B(y), C(z), W(x, y, z)").expect("static query"),
        witness,
    }
}

/// The hypergraph's vertices renumbered into a single 0-based space for
/// the exact cover oracle: partition offsets `(0, sizes.0, sizes.0 +
/// sizes.1)`.
pub fn flat_triples(h: &TripartiteHypergraph) -> (usize, Vec<(usize, usize, usize)>) {
    let n = h.sizes.0 + h.sizes.1 + h.sizes.2;
    let triples = h
        .edges
        .iter()
        .map(|&(i, j, k)| (i, h.sizes.0 + j, h.sizes.0 + h.sizes.1 + k))
        .collect();
    (n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_core::resp::exact::why_so_responsibility_exact;
    use causality_graph::cover::min_hypergraph_cover_3p;

    /// The Fig. 6 example hypergraph: R={r1,r2,r3}, S={s1,s2,s3},
    /// T={t1,t2}, edges per the W relation of Fig. 6(b).
    fn fig6() -> TripartiteHypergraph {
        TripartiteHypergraph {
            sizes: (3, 3, 2),
            edges: vec![(0, 0, 1), (0, 1, 0), (1, 0, 0), (2, 2, 1)],
        }
    }

    #[test]
    fn instance_shape() {
        let h = fig6();
        let inst = reduce_vc_to_h1(&h);
        // 3+1 A rows, 3+1 B, 2+1 C, 4+1 W.
        assert_eq!(inst.db.tuple_count(), 4 + 4 + 3 + 5);
        assert_eq!(inst.db.endogenous_count(), inst.db.tuple_count());
    }

    /// The core correctness property: min contingency of the witness
    /// equals the minimum vertex cover size.
    #[test]
    fn witness_responsibility_encodes_min_cover() {
        let h = fig6();
        let inst = reduce_vc_to_h1(&h);
        let (n, triples) = flat_triples(&h);
        let cover = min_hypergraph_cover_3p(n, &triples);
        let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
        let gamma = resp.min_contingency.expect("witness is a cause");
        assert_eq!(gamma.len(), cover.len(), "min contingency = min cover");
        assert!((resp.rho - 1.0 / (1.0 + cover.len() as f64)).abs() < 1e-12);
    }

    #[test]
    fn empty_hypergraph_makes_witness_counterfactual_after_zero_removals() {
        let h = TripartiteHypergraph {
            sizes: (2, 2, 2),
            edges: vec![],
        };
        let inst = reduce_vc_to_h1(&h);
        let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
        assert_eq!(
            resp.rho, 1.0,
            "no other triangles: witness is counterfactual"
        );
    }

    #[test]
    fn random_instances_match_cover_oracle() {
        let mut seed = 0xABCDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let sizes = (2 + (next() % 2) as usize, 2, 2);
            let m = 1 + (next() % 4) as usize;
            let edges: Vec<(usize, usize, usize)> = (0..m)
                .map(|_| {
                    (
                        (next() as usize) % sizes.0,
                        (next() as usize) % sizes.1,
                        (next() as usize) % sizes.2,
                    )
                })
                .collect();
            let h = TripartiteHypergraph { sizes, edges };
            let inst = reduce_vc_to_h1(&h);
            let (n, triples) = flat_triples(&h);
            let cover = min_hypergraph_cover_3p(n, &triples);
            let resp = why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).unwrap();
            assert_eq!(
                resp.min_contingency.unwrap().len(),
                cover.len(),
                "edges {:?}",
                h.edges
            );
        }
    }
}
