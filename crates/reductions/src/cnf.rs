//! 3-CNF formulas.

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A literal: variable index with polarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Whether the literal is satisfied under an assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }

    /// The negated literal.
    pub fn negated(&self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A clause: disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause(pub Vec<Literal>);

impl Clause {
    /// Whether the clause is satisfied under an assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.satisfied(assignment))
    }
}

/// A CNF formula over variables `0..var_count`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// Number of variables.
    pub var_count: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula; clause literals must reference variables in range.
    pub fn new(var_count: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in &c.0 {
                assert!(l.var < var_count, "literal variable out of range");
            }
        }
        Cnf { var_count, clauses }
    }

    /// Whether an assignment satisfies every clause.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.var_count);
        self.clauses.iter().all(|c| c.satisfied(assignment))
    }

    /// Number of clauses containing variable `v` (`|C_{Xv}|` in the ring
    /// construction).
    pub fn occurrences(&self, v: usize) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.0.iter().any(|l| l.var == v))
            .count()
    }

    /// Generate a random 3-CNF with `clause_count` clauses over
    /// `var_count ≥ 3` variables; each clause uses three *distinct*
    /// variables (as the ring construction's clause gadget assumes).
    pub fn random_3sat(var_count: usize, clause_count: usize, rng: &mut impl Rng) -> Cnf {
        assert!(
            var_count >= 3,
            "3-CNF clauses need three distinct variables"
        );
        let mut clauses = Vec::with_capacity(clause_count);
        let vars: Vec<usize> = (0..var_count).collect();
        for _ in 0..clause_count {
            let chosen: Vec<usize> = vars.choose_multiple(rng, 3).copied().collect();
            let lits = chosen
                .into_iter()
                .map(|v| Literal {
                    var: v,
                    positive: rng.gen_bool(0.5),
                })
                .collect();
            clauses.push(Clause(lits));
        }
        Cnf::new(var_count, clauses)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> =
                    c.0.iter()
                        .map(|l| {
                            if l.positive {
                                format!("x{}", l.var)
                            } else {
                                format!("¬x{}", l.var)
                            }
                        })
                        .collect();
                format!("({})", lits.join(" ∨ "))
            })
            .collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn satisfaction_semantics() {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
        let cnf = Cnf::new(
            3,
            vec![
                Clause(vec![Literal::pos(0), Literal::neg(1)]),
                Clause(vec![Literal::pos(1), Literal::pos(2)]),
            ],
        );
        assert!(cnf.satisfied(&[true, true, false]));
        assert!(!cnf.satisfied(&[false, true, false]));
        assert!(cnf.satisfied(&[false, false, true]));
    }

    #[test]
    fn occurrences_counts_clauses_not_literals() {
        let cnf = Cnf::new(
            2,
            vec![
                Clause(vec![Literal::pos(0), Literal::neg(0)]),
                Clause(vec![Literal::pos(1)]),
            ],
        );
        assert_eq!(cnf.occurrences(0), 1);
        assert_eq!(cnf.occurrences(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        Cnf::new(1, vec![Clause(vec![Literal::pos(3)])]);
    }

    #[test]
    fn random_3sat_has_distinct_vars_per_clause() {
        let mut rng = StdRng::seed_from_u64(7);
        let cnf = Cnf::random_3sat(5, 20, &mut rng);
        assert_eq!(cnf.clauses.len(), 20);
        for c in &cnf.clauses {
            assert_eq!(c.0.len(), 3);
            let mut vars: Vec<usize> = c.0.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn display_is_readable() {
        let cnf = Cnf::new(2, vec![Clause(vec![Literal::pos(0), Literal::neg(1)])]);
        assert_eq!(cnf.to_string(), "(x0 ∨ ¬x1)");
    }
}
