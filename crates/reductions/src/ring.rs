//! The 3SAT → h2* reduction (Theorem 4.1, Appendix C).
//!
//! Hardness of `h2* :- R(x,y), S(y,z), T(z,x)` is shown by encoding a
//! 3-CNF `φ` as a 3-colored directed graph `Gφ` whose triangles are the
//! query's valuations:
//!
//! * every variable `Xi` becomes a **local ring** (Fig. 7) of length
//!   `mi` — two node tracks `V⁺, V⁻` colored `a, b, c` cyclically, with
//!   *forward* edges zig-zagging between tracks and *backward* edges
//!   closing one triangle per pair of consecutive forward edges;
//! * a ring's minimum contingency (edge set meeting every triangle) has
//!   size exactly `mi`, achieved only by the two all-forward choices
//!   `S⁺` (read: `Xi = true`) and `S⁻` (`Xi = false`) — Lemmas C.1/C.2;
//! * every clause adds one extra triangle across the rings of its three
//!   variables by *equating* nodes of its literal edges (Fig. 8): the
//!   triangle is hit iff some literal's sign-set was chosen — i.e. iff
//!   the clause is satisfied.
//!
//! Lemma C.3: `φ` satisfiable ⟺ `Gφ` has a contingency of size `Σ mi`.
//! With the fresh witness triangle `R(x₀,y₀), S(y₀,z₀), T(z₀,x₀)`, the
//! minimum contingency of the tuple `R(x₀,y₀)` is exactly `Gφ`'s, so
//! responsibility decides 3SAT.

use crate::cnf::Cnf;
use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};
use std::collections::HashMap;

/// Node colors (also the join roles: `R = a→b`, `S = b→c`, `T = c→a`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    A,
    B,
    C,
}

fn color_of(pos: usize) -> Color {
    match (pos - 1) % 3 {
        0 => Color::A,
        1 => Color::B,
        _ => Color::C,
    }
}

/// The generated instance.
#[derive(Clone, Debug)]
pub struct RingReduction {
    /// The database holding `R`, `S`, `T` (all endogenous).
    pub db: Database,
    /// The Boolean query `h2 :- R(x,y), S(y,z), T(z,x)`.
    pub query: ConjunctiveQuery,
    /// The witness tuple `R(x₀, y₀)` whose responsibility decides `φ`.
    pub witness: TupleRef,
    /// `Σ mi` — the contingency budget of Lemma C.3.
    pub budget: usize,
    /// Ring length per variable.
    pub ring_lengths: Vec<usize>,
    /// Per variable: the `S⁺` tuple set (assignment `Xi = true`).
    pub positive_sets: Vec<Vec<TupleRef>>,
    /// Per variable: the `S⁻` tuple set (assignment `Xi = false`).
    pub negative_sets: Vec<Vec<TupleRef>>,
}

/// Union-find for node equating.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra] = rb;
    }
}

/// Build the reduction instance for a 3-CNF whose clauses each use three
/// distinct variables.
pub fn reduce_3sat_to_h2(cnf: &Cnf) -> RingReduction {
    // Ring lengths: odd, divisible by 3, ≥ 9·|C_Xi| (and ≥ 9).
    let ring_lengths: Vec<usize> = (0..cnf.var_count)
        .map(|v| {
            let need = 9 * cnf.occurrences(v).max(1);
            if need % 2 == 1 {
                need
            } else {
                need + 9 // next odd multiple of 9 keeps both invariants
            }
        })
        .collect();

    // Global node ids: (var, sign 0/1, pos 1..=mi).
    let mut offsets = Vec::with_capacity(cnf.var_count);
    let mut total_nodes = 0usize;
    for &m in &ring_lengths {
        offsets.push(total_nodes);
        total_nodes += 2 * m;
    }
    let node_id =
        |offsets: &[usize], ring_lengths: &[usize], var: usize, sign: usize, pos: usize| {
            debug_assert!(pos >= 1 && pos <= ring_lengths[var]);
            offsets[var] + sign * ring_lengths[var] + (pos - 1)
        };

    let mut uf = UnionFind::new(total_nodes);

    // Edge list: (from node, to node, origin). Origin tracks which sign
    // set a forward edge belongs to (for assignment-derived contingencies).
    #[derive(Clone, Copy)]
    enum Origin {
        ForwardPlus(usize),  // starts on V⁺ of var
        ForwardMinus(usize), // starts on V⁻ of var
        Backward,
    }
    let mut edges: Vec<(usize, usize, Origin)> = Vec::new();

    for var in 0..cnf.var_count {
        let m = ring_lengths[var];
        let id = |sign: usize, pos: usize| node_id(&offsets, &ring_lengths, var, sign, pos);
        // Forward edges: (v^s_j → v^{1-s}_{j+1}), wrapping at m.
        for pos in 1..=m {
            let next = if pos == m { 1 } else { pos + 1 };
            edges.push((id(0, pos), id(1, next), Origin::ForwardPlus(var)));
            edges.push((id(1, pos), id(0, next), Origin::ForwardMinus(var)));
        }
        // Backward edges: one per pair of consecutive forward edges —
        // from position j+2 back to j (same track), wrapping.
        for pos in 1..=m {
            let from = if pos + 2 > m { pos + 2 - m } else { pos + 2 };
            for sign in 0..2 {
                edges.push((id(sign, from), id(sign, pos), Origin::Backward));
            }
        }
    }

    // Clause gadgets: equate nodes so that the three literal edges form a
    // triangle (Fig. 8).
    let mut clause_index_per_var: Vec<usize> = vec![0; cnf.var_count];
    for clause in &cnf.clauses {
        assert_eq!(clause.0.len(), 3, "ring construction expects 3-literals");
        // Portion start per literal's variable ring.
        let mut endpoints: Vec<(usize, usize)> = Vec::new(); // (tail, head) node ids
        for (k, lit) in clause.0.iter().enumerate() {
            let var = lit.var;
            let j = 9 * clause_index_per_var[var] + 1;
            let (tail_sign, head_sign) = if lit.positive { (0, 1) } else { (1, 0) };
            let tail = node_id(&offsets, &ring_lengths, var, tail_sign, j + k);
            let head = node_id(&offsets, &ring_lengths, var, head_sign, j + k + 1);
            debug_assert_eq!(color_of(j + k), [Color::A, Color::B, Color::C][k]);
            endpoints.push((tail, head));
        }
        for lit in &clause.0 {
            clause_index_per_var[lit.var] += 1;
        }
        // a1 ≡ a3 (tail of e1, head of e3); b1 ≡ b2; c2 ≡ c3.
        uf.union(endpoints[0].0, endpoints[2].1);
        uf.union(endpoints[0].1, endpoints[1].0);
        uf.union(endpoints[1].1, endpoints[2].0);
    }

    // Colors per node (by position); equated nodes always share a color.
    let mut colors = vec![Color::A; total_nodes];
    for var in 0..cnf.var_count {
        let m = ring_lengths[var];
        for sign in 0..2 {
            for pos in 1..=m {
                colors[node_id(&offsets, &ring_lengths, var, sign, pos)] = color_of(pos);
            }
        }
    }

    // Build the database.
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));

    let mut positive_sets = vec![Vec::new(); cnf.var_count];
    let mut negative_sets = vec![Vec::new(); cnf.var_count];

    for &(from, to, origin) in &edges {
        let (fu, tu) = (uf.find(from), uf.find(to));
        debug_assert_ne!(colors[fu], colors[tu], "edges cross colors");
        let (rel, tuple) = match colors[fu] {
            Color::A => (r, vec![Value::int(fu as i64), Value::int(tu as i64)]),
            Color::B => (s, vec![Value::int(fu as i64), Value::int(tu as i64)]),
            Color::C => (t, vec![Value::int(fu as i64), Value::int(tu as i64)]),
        };
        let tref = db.insert_endo(rel, tuple);
        match origin {
            Origin::ForwardPlus(var) => positive_sets[var].push(tref),
            Origin::ForwardMinus(var) => negative_sets[var].push(tref),
            Origin::Backward => {}
        }
    }
    for set in positive_sets.iter_mut().chain(negative_sets.iter_mut()) {
        set.sort();
        set.dedup();
    }

    // Witness triangle on fresh values.
    let x0 = Value::int(-1);
    let y0 = Value::int(-2);
    let z0 = Value::int(-3);
    let witness = db.insert_endo(r, vec![x0.clone(), y0.clone()]);
    db.insert_endo(s, vec![y0, z0.clone()]);
    db.insert_endo(t, vec![z0, x0]);

    RingReduction {
        db,
        query: ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").expect("static query"),
        witness,
        budget: ring_lengths.iter().sum(),
        ring_lengths,
        positive_sets,
        negative_sets,
    }
}

impl RingReduction {
    /// The contingency derived from a truth assignment: `S⁺ᵢ` for true
    /// variables, `S⁻ᵢ` for false ones. Always has size `Σ mi`.
    pub fn contingency_for_assignment(&self, assignment: &[bool]) -> Vec<TupleRef> {
        assert_eq!(assignment.len(), self.positive_sets.len());
        let mut out = Vec::new();
        for (var, &value) in assignment.iter().enumerate() {
            let set = if value {
                &self.positive_sets[var]
            } else {
                &self.negative_sets[var]
            };
            out.extend(set.iter().copied());
        }
        out
    }

    /// Whether `gamma` is a valid contingency for the witness tuple: the
    /// query must be true on `D − Γ` and false on `D − Γ − {witness}`.
    pub fn is_contingency(&self, gamma: &[TupleRef]) -> bool {
        use causality_engine::{holds_masked, EndoMask};
        let mut gone: std::collections::HashSet<TupleRef> = gamma.iter().copied().collect();
        if !holds_masked(&self.db, &self.query, EndoMask::Except(&gone)).expect("valid query") {
            return false;
        }
        gone.insert(self.witness);
        !holds_masked(&self.db, &self.query, EndoMask::Except(&gone)).expect("valid query")
    }

    /// Search all `2^n` assignments for one whose derived contingency is
    /// valid — by Lemma C.3, succeeds iff `φ` is satisfiable. Returns the
    /// satisfying assignment.
    ///
    /// This is the tractable validation route: Lemma C.2 pins minimum
    /// contingencies to the sign-set choices, so searching assignments is
    /// complete. Running the generic exact hitting-set solver on a full
    /// ring instance instead (budget `Σmᵢ ≥ 27`) exhibits exactly the
    /// exponential blow-up Theorem 4.1 predicts — it does not finish in
    /// minutes even on the smallest satisfiable formula, which is the
    /// point of the hardness proof.
    pub fn assignment_search(&self) -> Option<Vec<bool>> {
        let n = self.positive_sets.len();
        assert!(n < 24, "assignment search is 2^n");
        (0u32..(1 << n)).find_map(|mask| {
            let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let gamma = self.contingency_for_assignment(&assignment);
            self.is_contingency(&gamma).then_some(assignment)
        })
    }

    /// Count the triangles (query valuations) in the instance, grouped as
    /// (ring triangles, clause triangles, witness) for structural checks.
    pub fn triangle_census(&self) -> (usize, usize, usize) {
        use causality_engine::evaluate;
        let result = evaluate(&self.db, &self.query).expect("valid query");
        let mut ring = 0usize;
        let mut clause = 0usize;
        let mut witness = 0usize;
        let mut seen: HashMap<Vec<TupleRef>, ()> = HashMap::new();
        for v in &result.valuations {
            let mut key: Vec<TupleRef> = v.atom_tuples.clone();
            key.sort();
            if seen.insert(key, ()).is_some() {
                continue;
            }
            if v.atom_tuples.contains(&self.witness) {
                witness += 1;
            } else if v.atom_tuples.iter().all(|t| {
                // Ring triangles use one backward edge; clause triangles
                // use three forward edges from three different rings. We
                // classify by membership in the sign sets.
                let in_sign_sets = self
                    .positive_sets
                    .iter()
                    .chain(self.negative_sets.iter())
                    .any(|set| set.binary_search(t).is_ok());
                in_sign_sets
            }) {
                clause += 1;
            } else {
                ring += 1;
            }
        }
        (ring, clause, witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};
    use crate::dpll;

    fn tiny_sat() -> Cnf {
        // (x0 ∨ x1 ∨ x2): satisfiable.
        Cnf::new(
            3,
            vec![Clause(vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(2),
            ])],
        )
    }

    fn tiny_mixed() -> Cnf {
        // (x0 ∨ ¬x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x2): satisfiable.
        Cnf::new(
            3,
            vec![
                Clause(vec![Literal::pos(0), Literal::neg(1), Literal::pos(2)]),
                Clause(vec![Literal::neg(0), Literal::pos(1), Literal::neg(2)]),
            ],
        )
    }

    #[test]
    fn ring_lengths_are_odd_multiples_of_three() {
        let red = reduce_3sat_to_h2(&tiny_mixed());
        for (v, &m) in red.ring_lengths.iter().enumerate() {
            assert!(m % 3 == 0 && m % 2 == 1, "ring {v} length {m}");
            assert!(m >= 9);
        }
        assert_eq!(red.budget, red.ring_lengths.iter().sum::<usize>());
    }

    #[test]
    fn triangle_census_matches_structure() {
        let cnf = tiny_sat();
        let red = reduce_3sat_to_h2(&cnf);
        let (ring, clause, witness) = red.triangle_census();
        // Each ring contributes 2·mi triangles (one per backward edge).
        let expected_ring: usize = red.ring_lengths.iter().map(|m| 2 * m).sum();
        assert_eq!(ring, expected_ring);
        assert_eq!(clause, cnf.clauses.len());
        assert_eq!(witness, 1);
    }

    #[test]
    fn sign_sets_have_ring_size() {
        let red = reduce_3sat_to_h2(&tiny_mixed());
        for var in 0..red.ring_lengths.len() {
            assert_eq!(red.positive_sets[var].len(), red.ring_lengths[var]);
            assert_eq!(red.negative_sets[var].len(), red.ring_lengths[var]);
        }
    }

    /// Lemma C.3, forward direction: a satisfying assignment's sign sets
    /// form a contingency of size Σ mi.
    #[test]
    fn satisfying_assignment_yields_contingency() {
        for cnf in [tiny_sat(), tiny_mixed()] {
            let red = reduce_3sat_to_h2(&cnf);
            let assignment = dpll::solve(&cnf).expect("satisfiable");
            let gamma = red.contingency_for_assignment(&assignment);
            assert_eq!(gamma.len(), red.budget);
            assert!(red.is_contingency(&gamma), "formula {cnf}");
        }
    }

    /// Lemma C.3, both directions via assignment search: the search over
    /// sign-set choices succeeds exactly when DPLL finds the formula
    /// satisfiable.
    #[test]
    fn assignment_search_agrees_with_dpll() {
        // Satisfiable mixed formula.
        let sat = tiny_mixed();
        let red = reduce_3sat_to_h2(&sat);
        let found = red.assignment_search().expect("satisfiable formula");
        assert!(
            sat.satisfied(&found),
            "search returns a satisfying assignment"
        );

        // Unsatisfiable: x0..x2 with all eight sign patterns (every
        // assignment falsifies one clause).
        let mut clauses = Vec::new();
        for mask in 0u32..8 {
            clauses.push(Clause(vec![
                Literal {
                    var: 0,
                    positive: mask & 1 != 0,
                },
                Literal {
                    var: 1,
                    positive: mask & 2 != 0,
                },
                Literal {
                    var: 2,
                    positive: mask & 4 != 0,
                },
            ]));
        }
        let unsat = Cnf::new(3, clauses);
        assert!(dpll::solve(&unsat).is_none());
        let red = reduce_3sat_to_h2(&unsat);
        assert!(red.assignment_search().is_none(), "no sign-set contingency");
    }

    /// A falsifying assignment's sign sets are NOT a contingency (the
    /// violated clause's triangle survives).
    #[test]
    fn falsifying_assignment_is_rejected() {
        let cnf = tiny_sat(); // needs at least one true variable
        let red = reduce_3sat_to_h2(&cnf);
        let gamma = red.contingency_for_assignment(&[false, false, false]);
        assert!(!red.is_contingency(&gamma));
    }

    /// Contingencies smaller than Σ mi never exist (each ring alone needs
    /// mi removals — checked here on the single-variable-ring level by
    /// dropping one tuple from a valid contingency).
    #[test]
    fn budget_is_tight() {
        let cnf = tiny_sat();
        let red = reduce_3sat_to_h2(&cnf);
        let assignment = dpll::solve(&cnf).unwrap();
        let mut gamma = red.contingency_for_assignment(&assignment);
        assert!(red.is_contingency(&gamma));
        gamma.pop();
        assert!(
            !red.is_contingency(&gamma),
            "removing any tuple breaks the contingency"
        );
    }

    #[test]
    fn database_shape() {
        let red = reduce_3sat_to_h2(&tiny_sat());
        // 3 rings of length 9: per ring 2m forward + 2m backward = 36
        // edges; plus 3 witness tuples.
        assert_eq!(red.db.tuple_count(), 3 * 36 + 3);
        assert_eq!(red.db.endogenous_count(), red.db.tuple_count());
    }
}
