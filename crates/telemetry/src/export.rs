//! Small JSON rendering helpers shared by the exporters.
//!
//! The repo deliberately avoids serde (offline build, std-only crates),
//! so exporters hand-render their fixed schemas. These helpers keep the
//! string escaping and float formatting consistent across them.

/// Renders `s` as a quoted JSON string, escaping quotes, backslashes,
/// and control characters.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number; non-finite values become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders a slice of traces as JSONL (one object per line, trailing
/// newline after each).
pub fn traces_jsonl(traces: &[crate::trace::RequestTrace]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&trace.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("plain"), "\"plain\"");
        assert_eq!(escape_json("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape_json("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape_json("a\nb"), "\"a\\nb\"");
        assert_eq!(escape_json("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
