//! Request tracing: stages, span builders, sampling, and trace rings.
//!
//! A trace is a sequence of [`StageSpan`]s measured against a single
//! origin [`Instant`] captured when the request enters the frontend, so
//! stage timestamps stay monotone even as the request hops between the
//! submitting thread and a shard worker thread. Within one thread the
//! RAII [`Span`] guard is the convenient API; across the queue hop the
//! builder's explicit [`TraceBuilder::begin`] / [`TraceBuilder::finish`]
//! calls let one side open a stage and the other close it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The serving-path stages a request passes through, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Frontend validation and admission bookkeeping.
    Admission,
    /// Backoff wait that preceded a retried submission (PR 9); absent on
    /// first attempts. Recorded at offset 0 of the retry attempt's
    /// trace, spanning the jittered wait.
    Retry,
    /// Routing to a shard and job construction.
    Dispatch,
    /// Residency in the shard's bounded queue (crosses threads).
    ShardQueue,
    /// Worker-side dequeue, deadline gate, and batch coalescing.
    WorkerDequeue,
    /// Snapshot pin, index-cache attach, fingerprint, and cache probe.
    SnapshotPin,
    /// Lineage computation, arena interning, and minimization.
    LineageIntern,
    /// Responsibility kernel solve (per-cause Exact/Flow computation).
    KernelSolve,
    /// Anytime bound refinement on the approximation path (NP-hard
    /// requests routed under a deadline); absent on exact routes.
    ApproxRefine,
    /// Response assembly and channel send.
    Respond,
}

impl Stage {
    /// All stages, in serving-path order.
    pub const ALL: [Stage; 10] = [
        Stage::Admission,
        Stage::Retry,
        Stage::Dispatch,
        Stage::ShardQueue,
        Stage::WorkerDequeue,
        Stage::SnapshotPin,
        Stage::LineageIntern,
        Stage::KernelSolve,
        Stage::ApproxRefine,
        Stage::Respond,
    ];

    /// Stable snake_case name used in JSONL output and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Retry => "retry",
            Stage::Dispatch => "dispatch",
            Stage::ShardQueue => "shard_queue",
            Stage::WorkerDequeue => "worker_dequeue",
            Stage::SnapshotPin => "snapshot_pin",
            Stage::LineageIntern => "lineage_intern",
            Stage::KernelSolve => "kernel_solve",
            Stage::ApproxRefine => "approx_refine",
            Stage::Respond => "respond",
        }
    }
}

/// One timed stage within a request trace. Offsets are microseconds since
/// the trace origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// Which serving-path stage this span covers.
    pub stage: Stage,
    /// Start offset, µs since the request entered the frontend.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// A finished request trace: span breakdown plus causal attributes.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Per-shard monotonically increasing trace id.
    pub seq: u64,
    /// Index of the shard that served the request.
    pub shard: usize,
    /// Tenant key the request was routed by.
    pub tenant: u64,
    /// Request kind: `why_so`, `why_no`, or `rank_top_k`.
    pub kind: &'static str,
    /// Final outcome: `ok`, `deadline_exceeded`, `overloaded`, ….
    pub outcome: &'static str,
    /// Whether the responsibility cache answered the request.
    pub cache_hit: bool,
    /// Whether this request rode along on another's computation.
    pub coalesced: bool,
    /// Number of relations (subgoals) in the query.
    pub relations: usize,
    /// Dichotomy class label from `core::dichotomy` (e.g. `PTIME`).
    pub dichotomy: &'static str,
    /// Conjunct count of the minimized lineage.
    pub lineage_conjuncts: u64,
    /// Top responsibility among returned causes (0.0 when none).
    pub rho_max: f64,
    /// Snapshot version the request was answered against.
    pub snapshot_version: u64,
    /// Signed µs of deadline slack at respond time (negative = missed);
    /// `None` when the request carried no deadline.
    pub deadline_slack_us: Option<i64>,
    /// End-to-end latency in µs.
    pub total_us: u64,
    /// Per-stage breakdown, in start order.
    pub stages: Vec<StageSpan>,
}

impl RequestTrace {
    /// Returns the span for `stage`, if recorded.
    pub fn stage(&self, stage: Stage) -> Option<&StageSpan> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Renders the trace as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"seq\":{},\"shard\":{},\"tenant\":{},\"kind\":{},\"outcome\":{},\
             \"cache_hit\":{},\"coalesced\":{},\"relations\":{},\"dichotomy\":{},\
             \"lineage_conjuncts\":{},\"rho_max\":{},\"snapshot_version\":{}",
            self.seq,
            self.shard,
            self.tenant,
            crate::export::escape_json(self.kind),
            crate::export::escape_json(self.outcome),
            self.cache_hit,
            self.coalesced,
            self.relations,
            crate::export::escape_json(self.dichotomy),
            self.lineage_conjuncts,
            crate::export::fmt_f64(self.rho_max),
            self.snapshot_version,
        );
        match self.deadline_slack_us {
            Some(slack) => {
                let _ = write!(out, ",\"deadline_slack_us\":{slack}");
            }
            None => out.push_str(",\"deadline_slack_us\":null"),
        }
        let _ = write!(out, ",\"total_us\":{},\"stages\":[", self.total_us);
        for (i, span) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
                span.stage.as_str(),
                span.start_us,
                span.dur_us
            );
        }
        out.push_str("]}");
        out
    }
}

/// Builds a [`RequestTrace`] incrementally as a request moves through the
/// tier. Allocated only for sampled requests (boxed, carried inside the
/// job), so unsampled requests pay a single atomic add and nothing else.
#[derive(Debug)]
pub struct TraceBuilder {
    origin: Instant,
    seq: u64,
    shard: usize,
    tenant: u64,
    kind: &'static str,
    relations: usize,
    deadline: Option<Instant>,
    outcome: &'static str,
    cache_hit: bool,
    coalesced: bool,
    dichotomy: &'static str,
    lineage_conjuncts: u64,
    rho_max: f64,
    snapshot_version: u64,
    stages: Vec<StageSpan>,
    open: Option<(Stage, u64)>,
}

impl TraceBuilder {
    /// Starts a trace at `origin` (the instant the request entered the
    /// frontend) with the [`Stage::Admission`] stage already open.
    pub fn new(origin: Instant, seq: u64) -> Self {
        Self {
            origin,
            seq,
            shard: 0,
            tenant: 0,
            kind: "unknown",
            relations: 0,
            deadline: None,
            outcome: "unknown",
            cache_hit: false,
            coalesced: false,
            dichotomy: "unknown",
            lineage_conjuncts: 0,
            rho_max: 0.0,
            snapshot_version: 0,
            stages: Vec::with_capacity(Stage::ALL.len()),
            open: Some((Stage::Admission, 0)),
        }
    }

    /// Microseconds from the trace origin to `t` (0 if `t` precedes it).
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Records request identity and routing attributes.
    pub fn set_request(&mut self, shard: usize, tenant: u64, kind: &'static str, relations: usize) {
        self.shard = shard;
        self.tenant = tenant;
        self.kind = kind;
        self.relations = relations;
    }

    /// Records the absolute deadline, if the request carries one.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Records the final outcome label.
    pub fn set_outcome(&mut self, outcome: &'static str) {
        self.outcome = outcome;
    }

    /// Records whether the responsibility cache served the request.
    pub fn set_cache_hit(&mut self, hit: bool) {
        self.cache_hit = hit;
    }

    /// Marks this request as a coalesced rider on another computation.
    pub fn mark_coalesced(&mut self) {
        self.coalesced = true;
    }

    /// Records the snapshot version the request was answered against.
    pub fn set_snapshot_version(&mut self, version: u64) {
        self.snapshot_version = version;
    }

    /// Records explanation-level attributes: dichotomy class label,
    /// minimized lineage conjunct count, and top responsibility.
    pub fn set_explanation(&mut self, dichotomy: &'static str, conjuncts: u64, rho_max: f64) {
        self.dichotomy = dichotomy;
        self.lineage_conjuncts = conjuncts;
        self.rho_max = rho_max;
    }

    fn close_open(&mut self, at_us: u64) {
        if let Some((stage, start_us)) = self.open.take() {
            self.stages.push(StageSpan {
                stage,
                start_us,
                dur_us: at_us.saturating_sub(start_us),
            });
        }
    }

    /// Closes any open stage now and opens `stage` in its place. This is
    /// the cross-thread primitive: the frontend opens
    /// [`Stage::ShardQueue`] before enqueueing and the worker closes it by
    /// beginning [`Stage::WorkerDequeue`] after the hop.
    pub fn begin(&mut self, stage: Stage) {
        let now = self.offset_us(Instant::now());
        self.close_open(now);
        self.open = Some((stage, now));
    }

    /// Records a fully measured span, closing any open stage at the
    /// span's start. Used when one computation is timed once and charged
    /// to every coalesced rider's trace.
    pub fn record_span(&mut self, stage: Stage, start: Instant, dur: Duration) {
        let start_us = self.offset_us(start);
        self.close_open(start_us);
        self.stages.push(StageSpan {
            stage,
            start_us,
            dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
        });
    }

    /// Finishes the trace: closes any open stage, computes the total and
    /// deadline slack, and returns the immutable record.
    pub fn finish(mut self) -> RequestTrace {
        let now = Instant::now();
        let now_us = self.offset_us(now);
        self.close_open(now_us);
        let deadline_slack_us = self.deadline.map(|d| {
            if d >= now {
                d.saturating_duration_since(now)
                    .as_micros()
                    .min(i64::MAX as u128) as i64
            } else {
                -(now
                    .saturating_duration_since(d)
                    .as_micros()
                    .min(i64::MAX as u128) as i64)
            }
        });
        RequestTrace {
            seq: self.seq,
            shard: self.shard,
            tenant: self.tenant,
            kind: self.kind,
            outcome: self.outcome,
            cache_hit: self.cache_hit,
            coalesced: self.coalesced,
            relations: self.relations,
            dichotomy: self.dichotomy,
            lineage_conjuncts: self.lineage_conjuncts,
            rho_max: self.rho_max,
            snapshot_version: self.snapshot_version,
            deadline_slack_us,
            total_us: now_us,
            stages: self.stages,
        }
    }
}

/// RAII guard that times a stage within a single thread: entering closes
/// any open stage and records this one on drop.
#[derive(Debug)]
pub struct Span<'a> {
    builder: &'a mut TraceBuilder,
    stage: Stage,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing `stage` against `builder`'s origin.
    pub fn enter(builder: &'a mut TraceBuilder, stage: Stage) -> Self {
        let start = Instant::now();
        let start_us = builder.offset_us(start);
        builder.close_open(start_us);
        Self {
            builder,
            stage,
            start,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let start_us = self.builder.offset_us(self.start);
        self.builder.stages.push(StageSpan {
            stage: self.stage,
            start_us,
            dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
        });
    }
}

/// Deterministic fixed-point sampler: a shared accumulator advances by
/// `rate * 2^16` per request and a request is sampled whenever the
/// accumulator crosses a whole-unit boundary. Rate 1.0 samples every
/// request, rate 0.0 samples none, and intermediate rates sample evenly
/// (no RNG, no clock reads).
#[derive(Debug)]
pub struct Sampler {
    rate_fp: u64,
    acc: AtomicU64,
}

/// Fixed-point scale for [`Sampler`] rates.
const SAMPLE_SCALE: u64 = 1 << 16;

impl Sampler {
    /// Creates a sampler for `rate`, clamped to `[0.0, 1.0]` (NaN → 0).
    pub fn new(rate: f64) -> Self {
        let clamped = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        Self {
            rate_fp: (clamped * SAMPLE_SCALE as f64).round() as u64,
            acc: AtomicU64::new(0),
        }
    }

    /// Decides whether the next request is sampled.
    pub fn sample(&self) -> bool {
        if self.rate_fp == 0 {
            return false;
        }
        if self.rate_fp >= SAMPLE_SCALE {
            return true;
        }
        let prev = self.acc.fetch_add(self.rate_fp, Ordering::Relaxed);
        (prev % SAMPLE_SCALE) + self.rate_fp >= SAMPLE_SCALE
    }
}

/// A bounded ring of finished traces; pushing past capacity evicts the
/// oldest entry.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<RequestTrace>>,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Appends a trace, returning `true` if an older trace was evicted
    /// (or the trace was dropped outright because capacity is zero).
    pub fn push(&self, trace: RequestTrace) -> bool {
        if self.capacity == 0 {
            return true;
        }
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let evicted = ring.len() == self.capacity;
        if evicted {
            ring.pop_front();
        }
        ring.push_back(trace);
        evicted
    }

    /// Returns a copy of the retained traces, oldest first. The ring is
    /// left intact, so exports are idempotent.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring currently holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(seq: u64) -> RequestTrace {
        let mut tb = TraceBuilder::new(Instant::now(), seq);
        tb.set_outcome("ok");
        tb.finish()
    }

    #[test]
    fn builder_closes_the_open_stage_on_begin_and_finish() {
        let mut tb = TraceBuilder::new(Instant::now(), 7);
        tb.begin(Stage::Dispatch);
        tb.begin(Stage::ShardQueue);
        let trace = tb.finish();
        let order: Vec<Stage> = trace.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            order,
            vec![Stage::Admission, Stage::Dispatch, Stage::ShardQueue]
        );
        for pair in trace.stages.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
        assert_eq!(trace.seq, 7);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let mut tb = TraceBuilder::new(Instant::now(), 0);
        tb.begin(Stage::WorkerDequeue);
        {
            let _span = Span::enter(&mut tb, Stage::SnapshotPin);
            std::thread::sleep(Duration::from_millis(2));
        }
        let trace = tb.finish();
        let pin = trace.stage(Stage::SnapshotPin).expect("span recorded");
        assert!(pin.dur_us >= 1_000, "slept 2ms, got {}µs", pin.dur_us);
        assert!(trace.stage(Stage::WorkerDequeue).is_some());
    }

    #[test]
    fn record_span_charges_shared_measurements_to_riders() {
        let origin = Instant::now();
        let mut tb = TraceBuilder::new(origin, 0);
        tb.begin(Stage::WorkerDequeue);
        let start = Instant::now();
        tb.record_span(Stage::KernelSolve, start, Duration::from_micros(1234));
        let trace = tb.finish();
        let solve = trace.stage(Stage::KernelSolve).unwrap();
        assert_eq!(solve.dur_us, 1234);
    }

    #[test]
    fn sampler_rate_one_takes_everything_and_zero_takes_nothing() {
        let all = Sampler::new(1.0);
        let none = Sampler::new(0.0);
        for _ in 0..100 {
            assert!(all.sample());
            assert!(!none.sample());
        }
        let nan = Sampler::new(f64::NAN);
        assert!(!nan.sample());
    }

    #[test]
    fn sampler_intermediate_rates_sample_proportionally() {
        let half = Sampler::new(0.5);
        let taken = (0..1000).filter(|_| half.sample()).count();
        assert_eq!(taken, 500);
        let tenth = Sampler::new(0.1);
        let taken = (0..1000).filter(|_| tenth.sample()).count();
        assert!((90..=110).contains(&taken), "got {taken}");
    }

    #[test]
    fn ring_overwrites_oldest_without_unbounded_growth() {
        let ring = TraceRing::new(3);
        let mut evictions = 0;
        for seq in 0..10 {
            if ring.push(finished(seq)) {
                evictions += 1;
            }
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(evictions, 7);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let ring = TraceRing::new(0);
        assert!(ring.push(finished(0)));
        assert!(ring.is_empty());
    }

    #[test]
    fn trace_json_is_one_object_with_stage_array() {
        let mut tb = TraceBuilder::new(Instant::now(), 3);
        tb.set_request(1, 42, "why_so", 2);
        tb.set_outcome("ok");
        tb.set_explanation("PTIME", 4, 0.5);
        let json = tb.finish().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"why_so\""));
        assert!(json.contains("\"dichotomy\":\"PTIME\""));
        assert!(json.contains("\"rho_max\":0.5"));
        assert!(json.contains("\"deadline_slack_us\":null"));
        assert!(json.contains("\"stages\":[{\"stage\":\"admission\""));
    }

    #[test]
    fn deadline_slack_is_signed() {
        let origin = Instant::now();
        let mut tb = TraceBuilder::new(origin, 0);
        tb.set_deadline(origin + Duration::from_secs(30));
        let slack = tb.finish().deadline_slack_us.unwrap();
        assert!(slack > 0, "future deadline must give positive slack");

        let mut tb = TraceBuilder::new(origin, 0);
        tb.set_deadline(origin);
        std::thread::sleep(Duration::from_millis(2));
        let slack = tb.finish().deadline_slack_us.unwrap();
        assert!(slack < 0, "missed deadline must give negative slack");
    }
}
