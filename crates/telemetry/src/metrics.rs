//! Named counters, gauges, and latency histograms behind atomics.
//!
//! The [`MetricsRegistry`] hands out shared handles (`Arc<Counter>` and
//! friends) keyed by name. Handles are cheap to clone and lock-free to
//! update; the registry itself is only locked at registration and export
//! time, never on the hot path. Exporters render every registered metric
//! in Prometheus text format or as JSONL — including the full histogram
//! bucket vector, not just a pair of quantiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two latency buckets. Bucket `i` covers durations in
/// `[2^i, 2^(i+1))` microseconds, with bucket 0 also absorbing sub-µs
/// samples and bucket 27 absorbing everything from ~134s up.
pub const LATENCY_BUCKETS: usize = 28;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Atomically returns the current value and resets it to zero.
    ///
    /// The swap is a single atomic operation, so concurrent increments are
    /// either observed in the returned value or land in the fresh epoch —
    /// never both, never neither.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down but never below zero.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    ///
    /// Uses a CAS loop rather than `fetch_sub` so a racing decrement can
    /// never wrap the gauge around to `u64::MAX`.
    pub fn dec(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram with [`LATENCY_BUCKETS`] power-of-two µs buckets
/// plus a running sum of observed microseconds (for Prometheus `_sum`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// Maps a microsecond duration to its bucket index.
fn bucket_of(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample expressed in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Returns the bucket counts, optionally resetting them.
    ///
    /// Each bucket is read (or swapped to zero) with a single atomic
    /// operation, so no concurrent sample is ever dropped or double
    /// counted per bucket; a sample recorded mid-walk lands either in the
    /// returned snapshot or in the next epoch.
    pub fn counts(&self, reset: bool) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = if reset {
                bucket.swap(0, Ordering::Relaxed)
            } else {
                bucket.load(Ordering::Relaxed)
            };
        }
        out
    }

    /// Returns the running sum of observed microseconds, optionally
    /// resetting it.
    pub fn sum_us(&self, reset: bool) -> u64 {
        if reset {
            self.sum_us.swap(0, Ordering::Relaxed)
        } else {
            self.sum_us.load(Ordering::Relaxed)
        }
    }
}

/// Returns the `q`-quantile (0.0 ..= 1.0) of a bucketed latency
/// distribution, as the lower bound of the bucket holding the ranked
/// sample. Returns 0 for an empty histogram.
pub fn quantile_us(buckets: &[u64; LATENCY_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << i;
        }
    }
    1u64 << (LATENCY_BUCKETS - 1)
}

/// What kind of metric a registry entry is; drives exporter rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed latency histogram.
    Histogram,
}

/// A point-in-time reading of one registered metric.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Registered metric name (without any exporter prefix).
    pub name: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Scalar value for counters and gauges; total count for histograms.
    pub value: u64,
    /// Bucket counts (histograms only).
    pub buckets: Option<[u64; LATENCY_BUCKETS]>,
    /// Sum of observed microseconds (histograms only).
    pub sum_us: u64,
}

/// A registry of named metrics. One registry exists per shard; handles
/// are registered once at shard spawn and shared with the hot path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(slot: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut entries = slot.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, existing)) = entries.iter().find(|(n, _)| n == name) {
        return Arc::clone(existing);
    }
    let fresh = Arc::new(T::default());
    entries.push((name.to_owned(), Arc::clone(&fresh)));
    fresh
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Reads every registered metric, in registration order (counters,
    /// then gauges, then histograms).
    pub fn samples(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for (name, c) in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            out.push(MetricSample {
                name: name.clone(),
                kind: MetricKind::Counter,
                value: c.get(),
                buckets: None,
                sum_us: 0,
            });
        }
        for (name, g) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push(MetricSample {
                name: name.clone(),
                kind: MetricKind::Gauge,
                value: g.get(),
                buckets: None,
                sum_us: 0,
            });
        }
        for (name, h) in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let buckets = h.counts(false);
            out.push(MetricSample {
                name: name.clone(),
                kind: MetricKind::Histogram,
                value: buckets.iter().sum(),
                buckets: Some(buckets),
                sum_us: h.sum_us(false),
            });
        }
        out
    }
}

/// Renders a set of per-shard registries as Prometheus text format.
///
/// Metric names are prefixed with `prefix` (e.g. `causality_`) and every
/// sample carries a `shard="i"` label taken from the slice index. `# TYPE`
/// lines are emitted once per metric name, as the format requires, with
/// all shards' samples grouped beneath them. Histograms render cumulative
/// `_bucket` series with `le` upper bounds of `2^(i+1)` µs plus `+Inf`,
/// and `_sum` / `_count` series.
pub fn prometheus_text(shards: &[&MetricsRegistry], prefix: &str) -> String {
    use std::fmt::Write as _;
    let per_shard: Vec<Vec<MetricSample>> = shards.iter().map(|r| r.samples()).collect();
    let mut seen: Vec<(String, MetricKind)> = Vec::new();
    for samples in &per_shard {
        for s in samples {
            if !seen.iter().any(|(n, _)| *n == s.name) {
                seen.push((s.name.clone(), s.kind));
            }
        }
    }
    let mut out = String::new();
    for (name, kind) in &seen {
        let full = format!("{prefix}{name}");
        let type_str = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let _ = writeln!(out, "# TYPE {full} {type_str}");
        for (shard, samples) in per_shard.iter().enumerate() {
            let Some(s) = samples.iter().find(|s| s.name == *name) else {
                continue;
            };
            match s.kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    let _ = writeln!(out, "{full}{{shard=\"{shard}\"}} {}", s.value);
                }
                MetricKind::Histogram => {
                    let buckets = s.buckets.unwrap_or([0; LATENCY_BUCKETS]);
                    let mut cumulative = 0u64;
                    for (i, count) in buckets.iter().enumerate() {
                        cumulative += count;
                        let le = 1u128 << (i + 1);
                        let _ = writeln!(
                            out,
                            "{full}_bucket{{shard=\"{shard}\",le=\"{le}\"}} {cumulative}"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{full}_bucket{{shard=\"{shard}\",le=\"+Inf\"}} {cumulative}"
                    );
                    let _ = writeln!(out, "{full}_sum{{shard=\"{shard}\"}} {}", s.sum_us);
                    let _ = writeln!(out, "{full}_count{{shard=\"{shard}\"}} {cumulative}");
                }
            }
        }
    }
    out
}

/// Renders a set of per-shard registries as JSONL: one object per metric
/// per shard, with histograms carrying the full bucket vector.
pub fn metrics_jsonl(shards: &[&MetricsRegistry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (shard, registry) in shards.iter().enumerate() {
        for s in registry.samples() {
            let kind = match s.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = write!(
                out,
                "{{\"shard\":{shard},\"metric\":{},\"kind\":\"{kind}\",\"value\":{}",
                crate::export::escape_json(&s.name),
                s.value
            );
            if let Some(buckets) = s.buckets {
                let _ = write!(out, ",\"sum_us\":{},\"buckets\":[", s.sum_us);
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push(']');
            }
            out.push_str("}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_take_is_a_single_swap() {
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let g = Gauge::new();
        g.add(3);
        g.dec(10);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let buckets = [0u64; LATENCY_BUCKETS];
        assert_eq!(quantile_us(&buckets, 0.5), 0);
        assert_eq!(quantile_us(&buckets, 0.99), 0);
    }

    #[test]
    fn single_sample_p50_equals_p99() {
        let h = Histogram::new();
        h.record_us(300);
        let buckets = h.counts(false);
        assert_eq!(quantile_us(&buckets, 0.5), quantile_us(&buckets, 0.99));
        assert_eq!(quantile_us(&buckets, 0.5), 256);
    }

    #[test]
    fn bucket_boundary_values_land_in_the_expected_bucket() {
        // 2^10 = 1024 µs opens bucket 10; 1023 µs stays in bucket 9.
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1025), 10);
        // Sub-µs and 1 µs samples share bucket 0; 2 µs opens bucket 1.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        // The top bucket absorbs everything else.
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_sum_tracks_recorded_microseconds() {
        let h = Histogram::new();
        h.record_us(100);
        h.record_us(200);
        assert_eq!(h.sum_us(false), 300);
        assert_eq!(h.sum_us(true), 300);
        assert_eq!(h.sum_us(false), 0);
    }

    #[test]
    fn registry_returns_the_same_handle_for_the_same_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prometheus_text_emits_one_type_line_per_metric() {
        let r0 = MetricsRegistry::new();
        let r1 = MetricsRegistry::new();
        r0.counter("requests_total").add(2);
        r1.counter("requests_total").add(3);
        r0.histogram("latency_us").record_us(10);
        r1.histogram("latency_us").record_us(2000);
        let text = prometheus_text(&[&r0, &r1], "causality_");
        assert_eq!(
            text.matches("# TYPE causality_requests_total counter")
                .count(),
            1
        );
        assert!(text.contains("causality_requests_total{shard=\"0\"} 2"));
        assert!(text.contains("causality_requests_total{shard=\"1\"} 3"));
        assert!(text.contains("causality_latency_us_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("causality_latency_us_sum{shard=\"1\"} 2000"));
        assert!(text.contains("causality_latency_us_count{shard=\"1\"} 1"));
    }

    #[test]
    fn metrics_jsonl_carries_full_bucket_vectors() {
        let reg = MetricsRegistry::new();
        reg.histogram("latency_us").record_us(3);
        let line = metrics_jsonl(&[&reg]);
        assert!(line.contains("\"metric\":\"latency_us\""));
        assert!(line.contains("\"kind\":\"histogram\""));
        assert!(line.contains("\"buckets\":[0,1,0"));
        assert!(line.ends_with("}\n"));
    }
}
