//! Std-only observability primitives for the causality serving tier.
//!
//! Three pieces, designed to be threaded through a sharded service
//! without adding dependencies or hot-path locks:
//!
//! - **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): named atomics handed out as shared handles, with
//!   Prometheus-text and JSONL exporters that expose full histogram
//!   bucket vectors.
//! - **Tracing** ([`TraceBuilder`], [`Span`], [`Stage`]): per-request
//!   span chains measured against a single origin instant so timestamps
//!   stay monotone across the frontend→worker thread hop, sampled by a
//!   deterministic fixed-point [`Sampler`] and retained in a bounded
//!   per-shard [`TraceRing`].
//! - **Slow-log** (part of [`Telemetry`]): finished traces that exceed a
//!   configurable latency threshold — or come too close to (or past)
//!   their deadline — are copied into a second ring so NP-hard outliers
//!   remain diagnosable after the fact.
//!
//! The crate knows nothing about queries or lineage; the service layer
//! stamps domain attributes (dichotomy class, conjunct counts, ρ) onto
//! traces through plain setters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::traces_jsonl;
pub use metrics::{
    metrics_jsonl, prometheus_text, quantile_us, Counter, Gauge, Histogram, MetricKind,
    MetricSample, MetricsRegistry, LATENCY_BUCKETS,
};
pub use trace::{RequestTrace, Sampler, Span, Stage, StageSpan, TraceBuilder, TraceRing};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tracing and slow-log configuration, carried inside the service
/// config. `Copy` so existing `..Default::default()` construction sites
/// keep working.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Fraction of requests to trace, in `[0.0, 1.0]`. 1.0 traces every
    /// request; 0.0 disables tracing entirely (no allocation per
    /// request).
    pub sample_rate: f64,
    /// Per-shard capacity of the recent-trace ring.
    pub trace_ring: usize,
    /// Per-shard capacity of the slow-log ring.
    pub slow_ring: usize,
    /// Traces at least this slow enter the slow-log.
    pub slow_latency: Option<Duration>,
    /// Traces finishing with less deadline slack than this (including
    /// negative slack, i.e. missed deadlines) enter the slow-log. Only
    /// applies to requests that carried a deadline.
    pub slow_slack: Option<Duration>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_rate: 1.0,
            trace_ring: 256,
            slow_ring: 64,
            slow_latency: None,
            slow_slack: None,
        }
    }
}

impl TelemetryConfig {
    /// Clamps the sample rate into `[0.0, 1.0]` (NaN → 0).
    pub fn sanitized(self) -> Self {
        let rate = if self.sample_rate.is_nan() {
            0.0
        } else {
            self.sample_rate.clamp(0.0, 1.0)
        };
        Self {
            sample_rate: rate,
            ..self
        }
    }

    /// Convenience: tracing fully disabled.
    pub fn disabled() -> Self {
        Self {
            sample_rate: 0.0,
            ..Self::default()
        }
    }
}

/// Per-shard telemetry hub: owns the sampler, trace sequence, the
/// recent-trace and slow-log rings, and the counters describing them.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    sampler: Sampler,
    seq: AtomicU64,
    ring: TraceRing,
    slow: TraceRing,
    sampled: Arc<Counter>,
    overwritten: Arc<Counter>,
    slow_records: Arc<Counter>,
}

impl Telemetry {
    /// Builds a hub for one shard, registering its bookkeeping counters
    /// (`traces_sampled_total`, `traces_overwritten_total`,
    /// `slow_log_records_total`) in `registry`.
    pub fn new(cfg: TelemetryConfig, registry: &MetricsRegistry) -> Self {
        let cfg = cfg.sanitized();
        Self {
            cfg,
            sampler: Sampler::new(cfg.sample_rate),
            seq: AtomicU64::new(0),
            ring: TraceRing::new(cfg.trace_ring),
            slow: TraceRing::new(cfg.slow_ring),
            sampled: registry.counter("traces_sampled_total"),
            overwritten: registry.counter("traces_overwritten_total"),
            slow_records: registry.counter("slow_log_records_total"),
        }
    }

    /// The (sanitized) configuration this hub runs with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Starts a trace for a request that entered the frontend at
    /// `origin`, if the sampler selects it. Returns `None` — without
    /// allocating — for unsampled requests.
    pub fn start(&self, origin: Instant) -> Option<Box<TraceBuilder>> {
        if !self.sampler.sample() {
            return None;
        }
        self.sampled.inc();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        Some(Box::new(TraceBuilder::new(origin, seq)))
    }

    /// Records a finished trace into the ring, copying it into the
    /// slow-log if it crossed a configured threshold.
    pub fn record(&self, trace: RequestTrace) {
        if self.is_slow(&trace) {
            self.slow_records.inc();
            self.slow.push(trace.clone());
        }
        if self.ring.push(trace) {
            self.overwritten.inc();
        }
    }

    fn is_slow(&self, trace: &RequestTrace) -> bool {
        if let Some(threshold) = self.cfg.slow_latency {
            if u128::from(trace.total_us) >= threshold.as_micros() {
                return true;
            }
        }
        if let (Some(threshold), Some(slack)) = (self.cfg.slow_slack, trace.deadline_slack_us) {
            if i128::from(slack) < threshold.as_micros() as i128 {
                return true;
            }
        }
        false
    }

    /// Copies out the retained recent traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.ring.snapshot()
    }

    /// Copies out the retained slow-log records, oldest first.
    pub fn slow_log(&self) -> Vec<RequestTrace> {
        self.slow.snapshot()
    }

    /// Number of traces the sampler has selected so far.
    pub fn sampled_count(&self) -> u64 {
        self.sampled.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampling_never_allocates_a_builder() {
        let registry = MetricsRegistry::new();
        let hub = Telemetry::new(TelemetryConfig::disabled(), &registry);
        for _ in 0..50 {
            assert!(hub.start(Instant::now()).is_none());
        }
        assert_eq!(hub.sampled_count(), 0);
        assert!(hub.traces().is_empty());
    }

    #[test]
    fn full_sampling_traces_every_request_with_monotone_seq() {
        let registry = MetricsRegistry::new();
        let hub = Telemetry::new(TelemetryConfig::default(), &registry);
        for expect in 0..5u64 {
            let tb = hub.start(Instant::now()).expect("rate 1.0 samples all");
            let trace = tb.finish();
            assert_eq!(trace.seq, expect);
            hub.record(trace);
        }
        assert_eq!(hub.sampled_count(), 5);
        assert_eq!(hub.traces().len(), 5);
    }

    #[test]
    fn slow_log_catches_latency_threshold_crossers() {
        let registry = MetricsRegistry::new();
        let cfg = TelemetryConfig {
            slow_latency: Some(Duration::from_micros(1)),
            ..TelemetryConfig::default()
        };
        let hub = Telemetry::new(cfg, &registry);
        let tb = hub.start(Instant::now()).unwrap();
        std::thread::sleep(Duration::from_millis(1));
        hub.record(tb.finish());
        assert_eq!(hub.slow_log().len(), 1);
        assert_eq!(registry.counter("slow_log_records_total").get(), 1);
    }

    #[test]
    fn slow_log_catches_deadline_slack_below_threshold() {
        let registry = MetricsRegistry::new();
        let cfg = TelemetryConfig {
            slow_slack: Some(Duration::from_millis(100)),
            ..TelemetryConfig::default()
        };
        let hub = Telemetry::new(cfg, &registry);

        let origin = Instant::now();
        let mut tight = hub.start(origin).unwrap();
        tight.set_deadline(origin + Duration::from_millis(1));
        hub.record(tight.finish());
        assert_eq!(hub.slow_log().len(), 1, "sub-threshold slack is slow");

        let mut roomy = hub.start(Instant::now()).unwrap();
        roomy.set_deadline(Instant::now() + Duration::from_secs(60));
        hub.record(roomy.finish());
        assert_eq!(hub.slow_log().len(), 1, "ample slack is not slow");

        let undeadlined = hub.start(Instant::now()).unwrap();
        hub.record(undeadlined.finish());
        assert_eq!(hub.slow_log().len(), 1, "no deadline, no slack rule");
    }

    #[test]
    fn ring_overwrites_are_counted() {
        let registry = MetricsRegistry::new();
        let cfg = TelemetryConfig {
            trace_ring: 2,
            ..TelemetryConfig::default()
        };
        let hub = Telemetry::new(cfg, &registry);
        for _ in 0..5 {
            let tb = hub.start(Instant::now()).unwrap();
            hub.record(tb.finish());
        }
        assert_eq!(hub.traces().len(), 2);
        assert_eq!(registry.counter("traces_overwritten_total").get(), 3);
    }

    #[test]
    fn config_sanitizes_nan_and_out_of_range_rates() {
        assert_eq!(
            TelemetryConfig {
                sample_rate: f64::NAN,
                ..TelemetryConfig::default()
            }
            .sanitized()
            .sample_rate,
            0.0
        );
        assert_eq!(
            TelemetryConfig {
                sample_rate: 7.5,
                ..TelemetryConfig::default()
            }
            .sanitized()
            .sample_rate,
            1.0
        );
    }
}
