//! Multi-tenant open-loop workload generation for the serving-tier load
//! harness.
//!
//! The harness (`crates/bench/benches/load_harness.rs`) drives a
//! [`ShardedService`](../causality_service) the way an interactive
//! explanation front end would be driven: many tenants, each with its own
//! database, issuing a skewed mix of Why-So / Why-No / rank-top-k reads
//! interleaved with writes. This module generates that workload
//! deterministically:
//!
//! * **tenants** are Zipf-hot: a few tenants receive most of the traffic
//!   (rank sampled from `Zipf(tenants, tenant_alpha)`);
//! * **answers** within a tenant are Zipf-hot too, so responsibility
//!   caches see realistic re-reference;
//! * **writes** append fresh rows to the written tenant's `S` relation —
//!   bumping its content version (and thus invalidating that tenant's
//!   dependent cache lines) without disturbing any existing answer.
//!
//! Everything is seeded: the same [`TenantWorkloadConfig`] always yields
//! byte-identical databases and op streams, so two harness runs measure
//! the same work.

use crate::zipf::Zipf;
use causality_engine::{ConjunctiveQuery, Database, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the multi-tenant workload.
#[derive(Clone, Debug)]
pub struct TenantWorkloadConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Join rows per tenant database (`R` rows; half of them join `S`).
    pub rows_per_tenant: usize,
    /// Zipf exponent over tenants (≥ 0; higher ⇒ hotter hot tenants).
    pub tenant_alpha: f64,
    /// Zipf exponent over answers within a tenant.
    pub answer_alpha: f64,
    /// Number of ops to generate.
    pub ops: usize,
    /// Fraction of ops that are writes (appends to `S`).
    pub write_fraction: f64,
    /// Fraction of *reads* that are Why-No questions.
    pub why_no_fraction: f64,
    /// Fraction of *reads* that are rank-top-k questions.
    pub topk_fraction: f64,
    /// The `k` used by rank-top-k reads.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TenantWorkloadConfig {
    fn default() -> Self {
        TenantWorkloadConfig {
            tenants: 8,
            rows_per_tenant: 24,
            tenant_alpha: 1.2,
            answer_alpha: 1.1,
            ops: 1_000,
            write_fraction: 0.05,
            why_no_fraction: 0.2,
            topk_fraction: 0.1,
            top_k: 3,
            seed: 6,
        }
    }
}

/// One tenant: its name, database, and the query its traffic asks about.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Routing name (`"tenant-{i}"`).
    pub name: String,
    /// The tenant's private database (`R(x, y)`, `S(y)`).
    pub db: Database,
    /// `q(x) :- R(x, y), S(y)` — answers are the even rows.
    pub query: ConjunctiveQuery,
    /// `x` values that are answers (even rows: their `y` is in `S`).
    pub answers: Vec<Value>,
    /// `x` values that are non-answers (odd rows), for Why-No.
    pub non_answers: Vec<Value>,
}

/// One generated operation against the tier.
#[derive(Clone, Debug, PartialEq)]
pub enum TenantOp {
    /// Ask why `answer` is an answer of the tenant's query.
    WhySo {
        /// Tenant index into [`TenantWorkload::tenants`].
        tenant: usize,
        /// The answer tuple to explain.
        answer: Vec<Value>,
    },
    /// Ask why `answer` is *not* an answer.
    WhyNo {
        /// Tenant index.
        tenant: usize,
        /// The non-answer tuple to explain.
        answer: Vec<Value>,
    },
    /// Rank the top-`k` causes of `answer` by responsibility.
    RankTopK {
        /// Tenant index.
        tenant: usize,
        /// The answer tuple to rank causes for.
        answer: Vec<Value>,
        /// How many causes to keep.
        k: usize,
    },
    /// Append a fresh row `S(value)` to the tenant's database — a
    /// content-version bump that invalidates the tenant's dependent
    /// cache lines without changing any existing answer.
    Write {
        /// Tenant index.
        tenant: usize,
        /// The fresh (never-joining) value to insert into `S`.
        value: Value,
    },
}

impl TenantOp {
    /// The tenant this op targets.
    pub fn tenant(&self) -> usize {
        match self {
            TenantOp::WhySo { tenant, .. }
            | TenantOp::WhyNo { tenant, .. }
            | TenantOp::RankTopK { tenant, .. }
            | TenantOp::Write { tenant, .. } => *tenant,
        }
    }

    /// Is this op a write?
    pub fn is_write(&self) -> bool {
        matches!(self, TenantOp::Write { .. })
    }
}

/// A fully generated multi-tenant workload: tenant databases plus a
/// deterministic op stream.
#[derive(Clone, Debug)]
pub struct TenantWorkload {
    /// The tenants, index-addressed by the ops.
    pub tenants: Vec<TenantSpec>,
    /// The op stream, in issue order.
    pub ops: Vec<TenantOp>,
}

/// Build one tenant's database: `R(x, y)` with `rows` rows
/// `(t{i}_x{r}, t{i}_y{r})`, and `S(y)` holding the `y` of every even
/// row — so even `x`s are answers of `q(x) :- R(x, y), S(y)` with two
/// causes each (`R` row and `S` row), and odd `x`s are non-answers with
/// a one-insertion Why-No fix. Values embed the tenant index, so no two
/// tenants ever share a request (identical queries over different
/// databases must not coalesce).
fn tenant_spec(i: usize, rows: usize) -> TenantSpec {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    let mut answers = Vec::new();
    let mut non_answers = Vec::new();
    for row in 0..rows {
        let x = Value::str(format!("t{i}_x{row}"));
        let y = Value::str(format!("t{i}_y{row}"));
        db.insert_endo(r, vec![x.clone(), y.clone()]);
        if row % 2 == 0 {
            db.insert_endo(s, vec![y]);
            answers.push(x);
        } else {
            non_answers.push(x);
        }
    }
    TenantSpec {
        name: format!("tenant-{i}"),
        db,
        query: ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").expect("workload query parses"),
        answers,
        non_answers,
    }
}

/// Generate the workload described by `cfg`. Deterministic: equal
/// configs yield equal workloads.
///
/// # Panics
/// Panics if `cfg.tenants == 0`, `cfg.rows_per_tenant < 2`, or any
/// fraction is outside `[0, 1]`.
pub fn tenant_workload(cfg: &TenantWorkloadConfig) -> TenantWorkload {
    assert!(cfg.tenants > 0, "need at least one tenant");
    assert!(cfg.rows_per_tenant >= 2, "need answers and non-answers");
    for f in [cfg.write_fraction, cfg.why_no_fraction, cfg.topk_fraction] {
        assert!((0.0..=1.0).contains(&f), "fractions must be in [0, 1]");
    }

    let tenants: Vec<TenantSpec> = (0..cfg.tenants)
        .map(|i| tenant_spec(i, cfg.rows_per_tenant))
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tenant_zipf = Zipf::new(cfg.tenants, cfg.tenant_alpha);
    let answer_zipf = Zipf::new(tenants[0].answers.len(), cfg.answer_alpha);
    let non_answer_zipf = Zipf::new(tenants[0].non_answers.len(), cfg.answer_alpha);

    let mut write_seq = 0usize;
    let ops = (0..cfg.ops)
        .map(|_| {
            let tenant = tenant_zipf.sample(&mut rng);
            let mix: f64 = rng.gen();
            if mix < cfg.write_fraction {
                write_seq += 1;
                return TenantOp::Write {
                    tenant,
                    value: Value::str(format!("t{tenant}_w{write_seq}")),
                };
            }
            let read: f64 = rng.gen();
            if read < cfg.why_no_fraction {
                let pick = non_answer_zipf.sample(&mut rng);
                TenantOp::WhyNo {
                    tenant,
                    answer: vec![tenants[tenant].non_answers[pick].clone()],
                }
            } else if read < cfg.why_no_fraction + cfg.topk_fraction {
                let pick = answer_zipf.sample(&mut rng);
                TenantOp::RankTopK {
                    tenant,
                    answer: vec![tenants[tenant].answers[pick].clone()],
                    k: cfg.top_k,
                }
            } else {
                let pick = answer_zipf.sample(&mut rng);
                TenantOp::WhySo {
                    tenant,
                    answer: vec![tenants[tenant].answers[pick].clone()],
                }
            }
        })
        .collect();

    TenantWorkload { tenants, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::{evaluate, Tuple};

    fn small() -> TenantWorkloadConfig {
        TenantWorkloadConfig {
            tenants: 4,
            rows_per_tenant: 8,
            ops: 400,
            ..TenantWorkloadConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tenant_workload(&small());
        let b = tenant_workload(&small());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.tenants.len(), b.tenants.len());
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.name, tb.name);
            assert_eq!(ta.answers, tb.answers);
        }
    }

    #[test]
    fn declared_answers_match_evaluation() {
        let w = tenant_workload(&small());
        for spec in &w.tenants {
            let result = evaluate(&spec.db, &spec.query).unwrap();
            for x in &spec.answers {
                assert!(
                    result.answers.contains(&Tuple::new(vec![x.clone()])),
                    "{x:?} must be an answer of {}",
                    spec.name
                );
            }
            for x in &spec.non_answers {
                assert!(
                    !result.answers.contains(&Tuple::new(vec![x.clone()])),
                    "{x:?} must be a non-answer of {}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn traffic_is_tenant_skewed_and_mixed() {
        let w = tenant_workload(&TenantWorkloadConfig {
            ops: 4_000,
            ..small()
        });
        assert_eq!(w.ops.len(), 4_000);
        let mut per_tenant = [0usize; 4];
        let (mut writes, mut why_no, mut topk, mut why_so) = (0, 0, 0, 0);
        for op in &w.ops {
            per_tenant[op.tenant()] += 1;
            match op {
                TenantOp::Write { .. } => writes += 1,
                TenantOp::WhyNo { .. } => why_no += 1,
                TenantOp::RankTopK { .. } => topk += 1,
                TenantOp::WhySo { .. } => why_so += 1,
            }
        }
        assert!(
            per_tenant[0] > per_tenant[3],
            "Zipf makes tenant 0 hotter than tenant 3: {per_tenant:?}"
        );
        for count in [writes, why_no, topk, why_so] {
            assert!(count > 0, "every op kind appears in the mix");
        }
        assert!(why_so > why_no && why_no > writes, "mix follows fractions");
    }

    #[test]
    fn writes_never_disturb_existing_answers() {
        let w = tenant_workload(&small());
        let mut spec = w.tenants[0].clone();
        let before = evaluate(&spec.db, &spec.query).unwrap().answers.len();
        let s = spec.db.relation_id("S").unwrap();
        for op in &w.ops {
            if let TenantOp::Write { tenant: 0, value } = op {
                spec.db.insert_endo(s, vec![value.clone()]);
            }
        }
        let after = evaluate(&spec.db, &spec.query).unwrap().answers.len();
        assert_eq!(before, after, "write values never join R");
    }
}
