//! NP-hard responsibility instances with *known* exact answers.
//!
//! The dichotomy (Cor. 4.14) says Why-So responsibility is NP-hard for
//! non-linear queries like the triangle `h2 :- R(x,y), S(y,z), T(z,x)`
//! and open for most self-joins. Testing an anytime solver against
//! those queries needs instances where the exact responsibility is
//! known *by construction*, not by running another solver:
//!
//! * [`triangle_fan`] — `k` triangles sharing one `R` tuple. The shared
//!   `R` tuple is counterfactual (`ρ = 1`); the probe `S` tuple of the
//!   first triangle needs a contingency hitting the other `k − 1`
//!   triangles, so `ρ = 1/k` exactly.
//! * [`selfjoin_star`] — the same fan shape expressed through a single
//!   self-joined edge relation `q :- E(x, y), E(y, z)`: a hub edge
//!   (`ρ = 1`) feeding `k` leaf edges (probe `ρ = 1/k`).
//! * [`dense_triangles`] — a small-domain, high-density random triangle
//!   database (no closed-form ρ) whose heavily overlapping witnesses
//!   make exact min-contingency search genuinely expensive: the load
//!   harness's "hard tenant" traffic.
//!
//! All generators are deterministic: the fan/star families use no
//! randomness at all, and the dense family is seeded.

use crate::workloads::{self, TriangleInstance};
use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};

/// A generated hard instance whose probe responsibility is known exactly.
#[derive(Clone, Debug)]
pub struct HardInstance {
    /// The database (all tuples endogenous).
    pub db: Database,
    /// The Boolean non-linear query.
    pub query: ConjunctiveQuery,
    /// A tuple whose exact Why-So responsibility is [`HardInstance::rho`].
    pub probe: TupleRef,
    /// The exact responsibility of [`HardInstance::probe`].
    pub rho: f64,
    /// A tuple shared by every witness — counterfactual, `ρ = 1`.
    pub counterfactual: TupleRef,
}

/// `k` triangles fanned out of one shared `R` tuple.
///
/// The database is `R(x0, y0)` plus `S(y0, zi), T(zi, x0)` for
/// `i in 0..k`, so the query has exactly `k` witnesses, all through the
/// shared `R` tuple. Removing `R(x0, y0)` alone falsifies the query
/// (`ρ = 1`); the probe `S(y0, z0)` needs one tuple from each of the
/// other `k − 1` triangles in its contingency, so `|Γ_min| = k − 1` and
/// `ρ = 1/k` exactly.
pub fn triangle_fan(k: usize) -> HardInstance {
    assert!(k >= 1, "a fan needs at least one triangle");
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));
    let zv = |i: usize| Value::str(format!("z{i}"));

    let counterfactual = db.insert_endo(r, vec![Value::str("x0"), Value::str("y0")]);
    let mut probe = None;
    for i in 0..k {
        let st = db.insert_endo(s, vec![Value::str("y0"), zv(i)]);
        db.insert_endo(t, vec![zv(i), Value::str("x0")]);
        if i == 0 {
            probe = Some(st);
        }
    }
    HardInstance {
        db,
        query: ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").expect("static"),
        probe: probe.expect("k >= 1"),
        rho: 1.0 / k as f64,
        counterfactual,
    }
}

/// The fan shape expressed through one self-joined relation:
/// `q :- E(x, y), E(y, z)` over a hub edge `E(h, c)` and `k` leaf edges
/// `E(c, li)`.
///
/// Every witness is `{E(h, c), E(c, li)}`, so the hub edge is
/// counterfactual (`ρ = 1`) and the probe leaf `E(c, l0)` needs the
/// other `k − 1` leaves in its contingency (`ρ = 1/k`). The query
/// self-joins, so the dichotomy classifier routes it through the hard
/// (or open) self-join tier — the anytime kernel itself is
/// query-agnostic and sees only the lineage.
pub fn selfjoin_star(k: usize) -> HardInstance {
    assert!(k >= 1, "a star needs at least one leaf");
    let mut db = Database::new();
    let e = db.add_relation(Schema::new("E", &["from", "to"]));
    let counterfactual = db.insert_endo(e, vec![Value::str("h"), Value::str("c")]);
    let mut probe = None;
    for i in 0..k {
        let leaf = db.insert_endo(e, vec![Value::str("c"), Value::str(format!("l{i}"))]);
        if i == 0 {
            probe = Some(leaf);
        }
    }
    HardInstance {
        db,
        query: ConjunctiveQuery::parse("q :- E(x, y), E(y, z)").expect("static"),
        probe: probe.expect("k >= 1"),
        rho: 1.0 / k as f64,
        counterfactual,
    }
}

/// A dense random triangle database for the load harness's hard tenant.
///
/// Small domain + many draws ⇒ most of the `nodes³` possible triangles
/// exist and share tuples, so the exact min-contingency search branches
/// over heavily overlapping witness sets instead of collapsing via the
/// packing bound (which is what makes [`triangle_fan`] easy for exact
/// solvers). No closed-form ρ — this family exists to burn deadline
/// budget, not to check answers.
pub fn dense_triangles(nodes: usize, tuples_per_relation: usize, seed: u64) -> TriangleInstance {
    workloads::triangles(nodes, tuples_per_relation, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::{evaluate, holds_masked, EndoMask};
    use std::collections::HashSet;

    fn counterfactual_flips(inst: &HardInstance) {
        let result = evaluate(&inst.db, &inst.query).unwrap();
        assert!(result.holds(), "the query must hold before removal");
        let gone: HashSet<TupleRef> = [inst.counterfactual].into_iter().collect();
        assert!(
            !holds_masked(&inst.db, &inst.query, EndoMask::Except(&gone)).unwrap(),
            "removing the shared tuple alone must falsify the query"
        );
    }

    #[test]
    fn fan_counterfactual_is_counterfactual() {
        for k in 1..=6 {
            counterfactual_flips(&triangle_fan(k));
        }
    }

    #[test]
    fn star_counterfactual_is_counterfactual() {
        for k in 1..=6 {
            counterfactual_flips(&selfjoin_star(k));
        }
    }

    #[test]
    fn fan_probe_needs_the_other_triangles() {
        let k = 5;
        let inst = triangle_fan(k);
        let result = evaluate(&inst.db, &inst.query).unwrap();
        assert_eq!(result.valuations.len(), k, "one witness per triangle");
        // The S tuple of every triangle the probe is not part of: a
        // feasible contingency of size k − 1 (removing it plus the probe
        // falsifies the query).
        let others: Vec<TupleRef> = result
            .valuations
            .iter()
            .filter(|v| !v.atom_tuples.contains(&inst.probe))
            .map(|v| v.atom_tuples[1])
            .collect();
        assert_eq!(others.len(), k - 1);
        let mut gone: HashSet<TupleRef> = others.iter().copied().collect();
        gone.insert(inst.probe);
        assert!(!holds_masked(&inst.db, &inst.query, EndoMask::Except(&gone)).unwrap());
        // Removing the probe plus only k − 2 of them leaves one triangle
        // alive, so no smaller contingency exists on this S-only support.
        let mut partial: HashSet<TupleRef> = others.iter().copied().take(k - 2).collect();
        partial.insert(inst.probe);
        assert!(holds_masked(&inst.db, &inst.query, EndoMask::Except(&partial)).unwrap());
    }

    #[test]
    fn dense_family_has_many_overlapping_witnesses() {
        let inst = dense_triangles(5, 80, 11);
        let result = evaluate(&inst.db, &inst.query).unwrap();
        assert!(result.holds());
        assert!(
            result.valuations.len() >= 20,
            "density too low to be a hard instance: {} witnesses",
            result.valuations.len()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = triangle_fan(4);
        let b = triangle_fan(4);
        assert_eq!(a.probe, b.probe);
        assert_eq!(a.counterfactual, b.counterfactual);
        assert_eq!(a.db.tuple_count(), b.db.tuple_count());

        let c = dense_triangles(5, 40, 9);
        let d = dense_triangles(5, 40, 9);
        assert_eq!(c.db.tuple_count(), d.db.tuple_count());
        assert_eq!(c.probe, d.probe);

        let e = selfjoin_star(3);
        let f = selfjoin_star(3);
        assert_eq!(e.db.tuple_count(), f.db.tuple_count());
        assert_eq!(e.probe, f.probe);
    }
}
