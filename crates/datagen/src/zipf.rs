//! A seeded Zipf(α) sampler.
//!
//! Real catalogue data (movie genres, director fan-out) is heavily
//! skewed; the IMDB generator uses a Zipf distribution to reproduce that
//! shape. Implementation: precomputed cumulative weights + binary search,
//! deterministic under a seeded [`rand::Rng`].

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `alpha`:
/// `P(k) ∝ 1 / (k+1)^alpha`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(10, 1.2);
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = Zipf::new(6, 1.0);
        for k in 1..6 {
            assert!(z.pmf(k - 1) > z.pmf(k), "Zipf pmf must decrease");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_skewed() {
        let z = Zipf::new(8, 1.5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[0] > 3_000, "rank 0 dominates under α=1.5");
        // Determinism.
        let mut rng2 = StdRng::seed_from_u64(11);
        let first: Vec<usize> = (0..5).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = StdRng::seed_from_u64(11);
        let second: Vec<usize> = (0..5).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
