//! # causality-datagen — synthetic data and workloads
//!
//! The paper's running example queries the IMDB dataset (Fig. 1/2), which
//! is proprietary and not distributable. This crate substitutes:
//!
//! * [`imdb`] — the IMDB schema (`Director`, `Movie`, `Movie_Directors`,
//!   `Genre`), the *exact* ten-tuple Fig. 2a micro-instance (three
//!   directors named Burton, six musicals including "Sweeney Todd"), and
//!   a seeded scalable generator with Zipf-skewed genres and director
//!   fan-out. The Fig. 2b ranking depends only on the lineage structure,
//!   which the micro-instance replicates tuple for tuple.
//! * [`workloads`] — parameterized instance families for the benches:
//!   layered chain-join databases (Algorithm 1's PTIME scaling), random
//!   triangle databases (h2*'s hard shape), and random graphs.
//! * [`hard_instances`] — NP-hard responsibility instances with *known*
//!   exact answers by construction (triangle fans, self-join stars) plus
//!   a dense random family for the load harness's hard tenant — the
//!   shared ground truth for the anytime-approximation test layer.
//! * [`tenants`] — multi-tenant serving workloads for the load harness:
//!   per-tenant databases plus a seeded, Zipf-skewed op stream mixing
//!   Why-So / Why-No / rank-top-k reads with cache-invalidating writes.
//! * [`zipf`] — a seeded Zipf(α) sampler (inverse-CDF table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hard_instances;
pub mod imdb;
pub mod tenants;
pub mod workloads;
pub mod zipf;

pub use hard_instances::{dense_triangles, selfjoin_star, triangle_fan, HardInstance};
pub use imdb::{fig2a_instance, Fig2aRefs};
pub use tenants::{tenant_workload, TenantOp, TenantSpec, TenantWorkload, TenantWorkloadConfig};
pub use zipf::Zipf;
