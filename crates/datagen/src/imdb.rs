//! The IMDB schema, the Fig. 2a micro-instance, and a scalable generator.
//!
//! Substitution note (see DESIGN.md): the paper runs on the real IMDB
//! dump. We reproduce (a) the *exact* lineage of the `Musical` answer
//! from Fig. 2a — three directors with last name Burton, six musicals
//! with the paper's titles and director links — so the Fig. 2b
//! responsibility ranking is recomputed from identical structure, and
//! (b) seeded large instances with the same schema and realistic skew
//! for the scaling benches.

use crate::zipf::Zipf;
use causality_engine::{Database, RelId, Schema, TupleRef, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relation ids of an IMDB-schema database.
#[derive(Clone, Copy, Debug)]
pub struct ImdbIds {
    /// `Director(did, firstName, lastName)`
    pub director: RelId,
    /// `Movie(mid, name, year, rank)`
    pub movie: RelId,
    /// `Movie_Directors(did, mid)`
    pub movie_directors: RelId,
    /// `Genre(mid, genre)`
    pub genre: RelId,
}

/// Add the four IMDB relations (Fig. 1's schema) to a database.
pub fn add_imdb_schema(db: &mut Database) -> ImdbIds {
    ImdbIds {
        director: db.add_relation(Schema::new("Director", &["did", "firstName", "lastName"])),
        movie: db.add_relation(Schema::new("Movie", &["mid", "name", "year", "rank"])),
        movie_directors: db.add_relation(Schema::new("MovieDirectors", &["did", "mid"])),
        genre: db.add_relation(Schema::new("Genre", &["mid", "genre"])),
    }
}

/// Tuple refs of the Fig. 2a instance, for assertions and display.
#[derive(Clone, Debug)]
pub struct Fig2aRefs {
    /// Relation ids.
    pub ids: ImdbIds,
    /// Director(23456, David, Burton)
    pub david: TupleRef,
    /// Director(23468, Humphrey, Burton)
    pub humphrey: TupleRef,
    /// Director(23488, Tim, Burton)
    pub tim: TupleRef,
    /// Movie(526338, "Sweeney Todd: …", 2007) — Tim's musical.
    pub sweeney: TupleRef,
    /// Movie(359516, "Let's Fall in Love", 1933) — David.
    pub falls_in_love: TupleRef,
    /// Movie(565577, "The Melody Lingers On", 1935) — David.
    pub melody: TupleRef,
    /// Movie(6539, "Candide", 1989) — Humphrey.
    pub candide: TupleRef,
    /// Movie(173629, "Flight", 1999) — Humphrey.
    pub flight: TupleRef,
    /// Movie(389987, "Manon Lescaut", 1997) — Humphrey.
    pub manon: TupleRef,
}

/// Build the exact Fig. 2a instance: `Director` and `Movie` endogenous
/// (the partition of Example 1.1 / Fig. 2b), `Movie_Directors` and
/// `Genre` exogenous.
pub fn fig2a_instance() -> (Database, Fig2aRefs) {
    let mut db = Database::new();
    let ids = add_imdb_schema(&mut db);

    let director = |db: &mut Database, did: i64, first: &str| {
        db.insert_endo(
            ids.director,
            vec![Value::int(did), Value::str(first), Value::str("Burton")],
        )
    };
    let david = director(&mut db, 23456, "David");
    let humphrey = director(&mut db, 23468, "Humphrey");
    let tim = director(&mut db, 23488, "Tim");

    let movie = |db: &mut Database, mid: i64, name: &str, year: i64| {
        db.insert_endo(
            ids.movie,
            vec![
                Value::int(mid),
                Value::str(name),
                Value::int(year),
                Value::int(0),
            ],
        )
    };
    let melody = movie(&mut db, 565577, "The Melody Lingers On", 1935);
    let falls_in_love = movie(&mut db, 359516, "Let's Fall in Love", 1933);
    let manon = movie(&mut db, 389987, "Manon Lescaut", 1997);
    let flight = movie(&mut db, 173629, "Flight", 1999);
    let candide = movie(&mut db, 6539, "Candide", 1989);
    let sweeney = movie(
        &mut db,
        526338,
        "Sweeney Todd: The Demon Barber of Fleet Street",
        2007,
    );

    // Fig. 2a's links: David → {Melody, Let's Fall in Love};
    // Humphrey → {Manon, Flight, Candide}; Tim → {Sweeney Todd}.
    for (did, mid) in [
        (23456i64, 565577i64),
        (23456, 359516),
        (23468, 389987),
        (23468, 173629),
        (23468, 6539),
        (23488, 526338),
    ] {
        db.insert_exo(ids.movie_directors, vec![Value::int(did), Value::int(mid)]);
    }
    for mid in [565577i64, 359516, 389987, 173629, 6539, 526338] {
        db.insert_exo(ids.genre, vec![Value::int(mid), Value::str("Musical")]);
    }

    (
        db,
        Fig2aRefs {
            ids,
            david,
            humphrey,
            tim,
            sweeney,
            falls_in_love,
            melody,
            candide,
            flight,
            manon,
        },
    )
}

/// The Fig. 1 query, grounded by genre at call sites:
/// `q(g) :- Director(d, f, 'Burton'), MovieDirectors(d, m),
///          Movie(m, n, y, r), Genre(m, g)`.
pub fn burton_genre_query() -> causality_engine::ConjunctiveQuery {
    causality_engine::ConjunctiveQuery::parse(
        "q(g) :- Director(d, f, 'Burton'), MovieDirectors(d, m), Movie(m, n, y, r), Genre(m, g)",
    )
    .expect("static query")
}

/// Configuration of the scalable IMDB generator.
#[derive(Clone, Debug)]
pub struct ImdbConfig {
    /// Number of directors (three Burtons are always added on top).
    pub directors: usize,
    /// Number of movies (the six Fig. 2a musicals are always added).
    pub movies: usize,
    /// Genre vocabulary size (drawn Zipf-skewed).
    pub genres: usize,
    /// Zipf exponent for genre popularity.
    pub genre_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            directors: 100,
            movies: 500,
            genres: 20,
            genre_skew: 1.1,
            seed: 42,
        }
    }
}

/// Names used for synthetic genres (cycled with numeric suffixes beyond).
const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Documentary",
    "Horror",
    "Romance",
    "Action",
    "Thriller",
    "Fantasy",
    "Sci-Fi",
    "Music",
    "Musical",
    "Mystery",
    "Family",
    "History",
    "Crime",
    "Adventure",
    "Animation",
    "War",
    "Western",
    "Biography",
];

/// Generate a seeded IMDB instance embedding the Fig. 2a micro-pattern.
/// `Director` and `Movie` are endogenous, link tables exogenous.
pub fn generate(cfg: &ImdbConfig) -> (Database, Fig2aRefs) {
    let (mut db, refs) = fig2a_instance();
    let ids = refs.ids;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.genres.max(1), cfg.genre_skew);

    let first_names = [
        "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Heidi",
    ];
    let last_names = [
        "Smith", "Jones", "Kurosawa", "Varda", "Lang", "Wilder", "Leone", "Burton",
    ];
    for i in 0..cfg.directors {
        let did = 100_000 + i as i64;
        let first = first_names[rng.gen_range(0..first_names.len())];
        // A small fraction of extra Burtons keeps the ambiguity realistic.
        let last = if rng.gen_bool(0.02) {
            "Burton"
        } else {
            last_names[rng.gen_range(0..last_names.len() - 1)]
        };
        db.insert_endo(
            ids.director,
            vec![Value::int(did), Value::str(first), Value::str(last)],
        );
    }
    for j in 0..cfg.movies {
        let mid = 1_000_000 + j as i64;
        let year = rng.gen_range(1920..=2010);
        let rank = rng.gen_range(0..10);
        db.insert_endo(
            ids.movie,
            vec![
                Value::int(mid),
                Value::str(format!("Movie #{j}")),
                Value::int(year),
                Value::int(rank),
            ],
        );
        // 1–2 directors per movie.
        let n_dirs = 1 + usize::from(rng.gen_bool(0.2));
        for _ in 0..n_dirs {
            let did = 100_000 + rng.gen_range(0..cfg.directors.max(1)) as i64;
            db.insert_exo(ids.movie_directors, vec![Value::int(did), Value::int(mid)]);
        }
        // 1–3 genres per movie, Zipf-skewed.
        let n_genres = 1 + rng.gen_range(0..3usize);
        for _ in 0..n_genres {
            let g = zipf.sample(&mut rng);
            let name = if g < GENRES.len() {
                GENRES[g].to_string()
            } else {
                format!("Genre{g}")
            };
            db.insert_exo(ids.genre, vec![Value::int(mid), Value::str(name)]);
        }
    }
    (db, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::{evaluate, tup, Value};

    #[test]
    fn fig2a_has_ten_lineage_tuples() {
        let (db, refs) = fig2a_instance();
        assert_eq!(db.relation(refs.ids.director).len(), 3);
        assert_eq!(db.relation(refs.ids.movie).len(), 6);
        assert_eq!(db.relation(refs.ids.movie_directors).len(), 6);
        assert_eq!(db.relation(refs.ids.genre).len(), 6);
        // Endogenous: directors + movies only (Example 1.1's partition).
        assert_eq!(db.endogenous_count(), 9);
    }

    #[test]
    fn musical_is_an_answer_with_six_derivations() {
        let (db, _) = fig2a_instance();
        let q = burton_genre_query();
        let result = evaluate(&db, &q).unwrap();
        assert_eq!(result.answers, vec![tup!["Musical"]]);
        assert_eq!(result.valuations.len(), 6, "one derivation per movie");
    }

    #[test]
    fn director_links_match_fig2a() {
        let (db, refs) = fig2a_instance();
        let md = refs.ids.movie_directors;
        // Tim directs only Sweeney Todd.
        assert!(db.relation(md).find(&tup![23488, 526338]).is_some());
        assert!(db.relation(md).find(&tup![23488, 565577]).is_none());
        // Humphrey directs three musicals.
        let humphrey_count = db
            .relation(md)
            .iter()
            .filter(|(_, t, _)| t[0] == Value::int(23468))
            .count();
        assert_eq!(humphrey_count, 3);
    }

    #[test]
    fn generator_embeds_micro_instance_and_scales() {
        let cfg = ImdbConfig {
            directors: 50,
            movies: 200,
            ..ImdbConfig::default()
        };
        let (db, refs) = generate(&cfg);
        assert!(db.relation(refs.ids.movie).len() >= 206);
        assert!(db.relation(refs.ids.director).len() >= 53);
        // The Musical answer is still derivable.
        let q = burton_genre_query();
        let result = evaluate(&db, &q).unwrap();
        assert!(result.answers.contains(&tup!["Musical"]));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = ImdbConfig::default();
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        assert_eq!(a.tuple_count(), b.tuple_count());
        let ga = a.relation(a.relation_id("Genre").unwrap());
        let gb = b.relation(b.relation_id("Genre").unwrap());
        for ((_, ta, _), (_, tb, _)) in ga.iter().zip(gb.iter()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ImdbConfig {
            seed: 1,
            ..ImdbConfig::default()
        })
        .0;
        let b = generate(&ImdbConfig {
            seed: 2,
            ..ImdbConfig::default()
        })
        .0;
        // Extremely unlikely to coincide.
        let ga = a.relation(a.relation_id("Genre").unwrap());
        let gb = b.relation(b.relation_id("Genre").unwrap());
        let same = ga
            .iter()
            .zip(gb.iter())
            .all(|((_, ta, _), (_, tb, _))| ta == tb);
        assert!(!same);
    }
}
