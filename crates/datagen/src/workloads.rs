//! Parameterized workload generators for the benches.
//!
//! Three instance families cover the paper's complexity landscape:
//!
//! * **chains** `q :- R1(x0,x1), …, Rk(x_{k-1},xk)` — linear queries,
//!   Algorithm 1's PTIME scaling (Fig. 4 / Theorem 4.5);
//! * **triangles** `h2* :- R(x,y), S(y,z), T(z,x)` — the canonical hard
//!   query, for exact-solver scaling;
//! * **random graphs** — inputs for the vertex-cover style reductions.

use causality_engine::{ConjunctiveQuery, Database, Schema, TupleRef, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a layered chain-join database.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Number of atoms `k` (relations `R1..Rk`).
    pub atoms: usize,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Distinct values per variable layer (smaller ⇒ denser joins).
    pub domain_per_layer: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            atoms: 2,
            tuples_per_relation: 100,
            domain_per_layer: 20,
            seed: 7,
        }
    }
}

/// A generated chain instance.
#[derive(Clone, Debug)]
pub struct ChainInstance {
    /// The database (`R1..Rk`, all endogenous).
    pub db: Database,
    /// The Boolean chain query.
    pub query: ConjunctiveQuery,
    /// One tuple of `R1` guaranteed to participate in a valuation.
    pub probe: TupleRef,
}

/// Generate a chain database. Layer `i` values are strings `L{i}_{v}`,
/// so adjacent relations join only on the shared layer. A designated
/// "spine" valuation guarantees the probe tuple joins end-to-end.
pub fn chain(cfg: &ChainConfig) -> ChainInstance {
    assert!(cfg.atoms >= 1);
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rels: Vec<_> = (1..=cfg.atoms)
        .map(|i| db.add_relation(Schema::new(format!("R{i}"), &["from", "to"])))
        .collect();
    let val = |layer: usize, v: usize| Value::str(format!("L{layer}_{v}"));

    // Spine: value 0 at every layer.
    let mut probe = None;
    for (i, &rel) in rels.iter().enumerate() {
        let t = db.insert_endo(rel, vec![val(i, 0), val(i + 1, 0)]);
        if i == 0 {
            probe = Some(t);
        }
    }
    for (i, &rel) in rels.iter().enumerate() {
        for _ in 0..cfg.tuples_per_relation.saturating_sub(1) {
            let from = rng.gen_range(0..cfg.domain_per_layer);
            let to = rng.gen_range(0..cfg.domain_per_layer);
            db.insert_endo(rel, vec![val(i, from), val(i + 1, to)]);
        }
    }

    let atoms_text: Vec<String> = (1..=cfg.atoms)
        .map(|i| format!("R{i}(x{}, x{})", i - 1, i))
        .collect();
    let query = ConjunctiveQuery::parse(&format!("chain :- {}", atoms_text.join(", ")))
        .expect("generated chain query parses");
    ChainInstance {
        db,
        query,
        probe: probe.expect("at least one atom"),
    }
}

/// A generated triangle (h2*) instance.
#[derive(Clone, Debug)]
pub struct TriangleInstance {
    /// The database (`R`, `S`, `T`, all endogenous).
    pub db: Database,
    /// `h2 :- R(x, y), S(y, z), T(z, x)`.
    pub query: ConjunctiveQuery,
    /// One `R` tuple guaranteed to close a triangle.
    pub probe: TupleRef,
}

/// Generate a random triangle database over `n` node ids per role with
/// `m` tuples per relation; one guaranteed triangle `(0, 0, 0)`.
pub fn triangles(n: usize, m: usize, seed: u64) -> TriangleInstance {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));
    let xv = |i: usize| Value::str(format!("x{i}"));
    let yv = |i: usize| Value::str(format!("y{i}"));
    let zv = |i: usize| Value::str(format!("z{i}"));

    let probe = db.insert_endo(r, vec![xv(0), yv(0)]);
    db.insert_endo(s, vec![yv(0), zv(0)]);
    db.insert_endo(t, vec![zv(0), xv(0)]);
    for _ in 0..m.saturating_sub(1) {
        db.insert_endo(r, vec![xv(rng.gen_range(0..n)), yv(rng.gen_range(0..n))]);
        db.insert_endo(s, vec![yv(rng.gen_range(0..n)), zv(rng.gen_range(0..n))]);
        db.insert_endo(t, vec![zv(rng.gen_range(0..n)), xv(rng.gen_range(0..n))]);
    }
    TriangleInstance {
        db,
        query: ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").expect("static"),
        probe,
    }
}

/// A random simple graph's edge list over `0..n` with `m` attempted
/// edges (self-loops and duplicates dropped).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !edges.contains(&(u, v)) && !edges.contains(&(v, u)) {
            edges.push((u, v));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::evaluate;

    #[test]
    fn chain_spine_guarantees_valuation() {
        for atoms in 1..=5 {
            let inst = chain(&ChainConfig {
                atoms,
                tuples_per_relation: 30,
                domain_per_layer: 5,
                seed: 3,
            });
            let result = evaluate(&inst.db, &inst.query).unwrap();
            assert!(result.holds(), "k={atoms}");
            assert!(
                result
                    .valuations
                    .iter()
                    .any(|v| v.atom_tuples.contains(&inst.probe)),
                "probe participates"
            );
        }
    }

    #[test]
    fn chain_layers_do_not_cross() {
        let inst = chain(&ChainConfig::default());
        // R1 'to' values live in layer 1, R2 'from' values too: they join;
        // but R1 'from' (layer 0) never joins R2 'to' (layer 2).
        let r1 = inst.db.relation_id("R1").unwrap();
        let vals = inst.db.relation(r1).column_values(0);
        assert!(vals.iter().all(|v| v.as_str().unwrap().starts_with("L0_")));
    }

    #[test]
    fn chain_sizes_match_config() {
        let cfg = ChainConfig {
            atoms: 3,
            tuples_per_relation: 50,
            domain_per_layer: 10,
            seed: 9,
        };
        let inst = chain(&cfg);
        assert_eq!(inst.db.relation_count(), 3);
        for (_, rel) in inst.db.relations() {
            assert!(rel.len() <= 50, "duplicates may reduce below the target");
            // With domain 10x10 = 100 pairs and 50 draws, collisions are
            // expected; just require a healthy fraction of distinct tuples.
            assert!(rel.len() >= 30, "got {}", rel.len());
        }
    }

    #[test]
    fn triangle_probe_closes_triangle() {
        let inst = triangles(10, 50, 4);
        let result = evaluate(&inst.db, &inst.query).unwrap();
        assert!(result.holds());
        assert!(result
            .valuations
            .iter()
            .any(|v| v.atom_tuples.contains(&inst.probe)));
    }

    #[test]
    fn random_graph_is_simple() {
        let edges = random_graph(8, 30, 5);
        for &(u, v) in &edges {
            assert_ne!(u, v);
            assert!(u < 8 && v < 8);
        }
        for (i, &(u, v)) in edges.iter().enumerate() {
            for &(a, b) in &edges[i + 1..] {
                let duplicate = (a == u && b == v) || (a == v && b == u);
                assert!(!duplicate, "duplicate edge");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = chain(&ChainConfig::default());
        let b = chain(&ChainConfig::default());
        assert_eq!(a.db.tuple_count(), b.db.tuple_count());
        assert_eq!(random_graph(6, 10, 1), random_graph(6, 10, 1));
    }
}
