//! Errors of the causality core.

use causality_datalog::eval::DatalogError;
use causality_engine::EngineError;
use std::fmt;

/// Errors raised by cause / responsibility computations.
#[derive(Clone, Debug)]
pub enum CoreError {
    /// Propagated engine error (unknown relation, arity, parse, …).
    Engine(EngineError),
    /// Propagated Datalog error.
    Datalog(DatalogError),
    /// The operation requires a self-join-free query.
    SelfJoin {
        /// Query text.
        query: String,
    },
    /// Algorithm 1 requires a weakly linear query.
    NotWeaklyLinear {
        /// Query text.
        query: String,
    },
    /// The tuple is not endogenous (only endogenous tuples can be causes).
    NotEndogenous,
    /// The dichotomy machinery supports at most 64 variables / atoms.
    TooLarge {
        /// What overflowed.
        what: &'static str,
    },
    /// A bounded search (weakening BFS, image enumeration) exceeded its
    /// budget; the query is far beyond the sizes the paper's analysis
    /// targets.
    BudgetExceeded {
        /// Which search gave up.
        search: &'static str,
    },
    /// The dichotomy requires every atom to be marked `^n` or `^x`
    /// ("w.l.o.g. each relation is either fully endogenous or exogenous",
    /// Sect. 4.1).
    UnmarkedAtom {
        /// The offending atom's relation name.
        relation: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
            CoreError::SelfJoin { query } => {
                write!(f, "query `{query}` has a self-join; this operation requires self-join-free queries")
            }
            CoreError::NotWeaklyLinear { query } => {
                write!(f, "query `{query}` is not weakly linear; Algorithm 1 does not apply (responsibility is NP-hard, use the exact solver)")
            }
            CoreError::NotEndogenous => write!(
                f,
                "tuple is exogenous; only endogenous tuples can be causes"
            ),
            CoreError::TooLarge { what } => write!(f, "too many {what} (limit 64)"),
            CoreError::BudgetExceeded { search } => {
                write!(f, "search budget exceeded in {search}")
            }
            CoreError::UnmarkedAtom { relation } => {
                write!(
                    f,
                    "atom `{relation}` must be marked ^n or ^x for the dichotomy analysis"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<DatalogError> for CoreError {
    fn from(e: DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::SelfJoin {
            query: "q :- R(x), R(y)".into(),
        };
        assert!(e.to_string().contains("self-join"));
        assert!(CoreError::NotEndogenous.to_string().contains("exogenous"));
        assert!(CoreError::TooLarge { what: "variables" }
            .to_string()
            .contains("variables"));
        assert!(CoreError::BudgetExceeded {
            search: "weakening BFS"
        }
        .to_string()
        .contains("weakening"));
        let e: CoreError = EngineError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("unknown relation"));
    }
}
