//! The user-facing explanation API.
//!
//! The paper's motivating workflow (Fig. 1 / Fig. 2): a user sees a
//! surprising answer (or misses an expected one) and asks *why*. An
//! [`Explainer`] wraps a database and a (non-Boolean) query; [`Explainer::why`]
//! grounds an answer, computes its causes and responsibilities, and
//! returns a ranked, renderable [`Explanation`] — the Fig. 2b table.

use crate::causes::causes_from_minimized_whyso;
use crate::dichotomy::classify::DichotomyTag;
use crate::error::CoreError;
use crate::ranking::{
    rank_why_no_metered, rank_why_so_metered, rank_why_so_parallel, Method, RankConfig, RankMeta,
    RankStats, RankedCause,
};
use crate::resp::approx::{anytime_min_contingency, ApproxBudget, RhoBounds};
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, Tuple, TupleRef, Value};
use causality_lineage::{n_lineage_cached, LineageArena};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why-So or Why-No.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExplanationKind {
    /// Why is this tuple an answer?
    WhySo,
    /// Why is this tuple *not* an answer?
    WhyNo,
}

/// How an explanation's responsibilities were computed.
///
/// The serving tier's hardness router produces [`ExplainMode::Approximate`]
/// when an NP-hard instance runs under a deadline: every ρ then carries a
/// certified `[lower, upper]` bracket instead of an exact value (the
/// reported `rho` is the certified lower bound).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExplainMode {
    /// Every ρ is exact (the flow/bitset kernels ran to completion).
    Exact,
    /// ρ values are certified anytime bounds from
    /// [`crate::resp::approx`].
    Approximate {
        /// Bracket on the explanation's ρ_max (the per-cause brackets
        /// live on [`ExplainedCause::bounds`]).
        bounds: RhoBounds,
        /// Wall-clock µs the anytime solves consumed.
        budget_spent_us: u64,
        /// Completed refinement levels across all causes.
        refinements: u32,
    },
}

/// One ranked cause, resolved to displayable tuple values.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainedCause {
    /// The causing tuple's identity.
    pub tuple: TupleRef,
    /// Relation name.
    pub relation: String,
    /// The tuple's values.
    pub values: Tuple,
    /// Responsibility ρ. Under [`ExplainMode::Approximate`] this is the
    /// certified *lower* bound (`bounds.lower`).
    pub rho: f64,
    /// Whether the cause is counterfactual (ρ = 1).
    pub counterfactual: bool,
    /// A witnessing minimum contingency, rendered as `Rel(values)` strings.
    /// Under [`ExplainMode::Approximate`] it is the best *feasible*
    /// contingency found (witnessing `bounds.lower`, not necessarily
    /// minimum).
    pub contingency: Vec<String>,
    /// Certified `[lower, upper]` bracket on ρ; `None` on exact paths.
    pub bounds: Option<RhoBounds>,
}

/// A ranked explanation of one (non-)answer.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// Which question was asked.
    pub kind: ExplanationKind,
    /// The answer (or non-answer) tuple.
    pub answer: Vec<Value>,
    /// Causes, ranked by responsibility (descending).
    pub causes: Vec<ExplainedCause>,
    /// The dichotomy verdict for the grounded query (Cor. 4.14). Why-No
    /// explanations are always [`DichotomyTag::PTime`] (Theorem 4.17).
    pub dichotomy: DichotomyTag,
    /// Conjunct count of the minimized lineage the causes were ranked
    /// against — the paper's per-request cost driver.
    pub lineage_conjuncts: usize,
    /// Exact or anytime-approximate responsibilities (the hardness
    /// router's verdict; always [`ExplainMode::Exact`] off the anytime
    /// path).
    pub mode: ExplainMode,
}

impl Explanation {
    /// The highest responsibility among the causes (0.0 when none).
    pub fn rho_max(&self) -> f64 {
        self.causes.first().map(|c| c.rho).unwrap_or(0.0)
    }
}

/// Where the time went inside one `why`/`why_not` call, for tracing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExplainTiming {
    /// µs computing, interning, and minimizing the lineage.
    pub lineage_us: u64,
    /// µs in the per-cause responsibility solves.
    pub solve_us: u64,
}

impl ExplainTiming {
    fn of(meta: &RankMeta) -> Self {
        Self {
            lineage_us: meta.lineage_us,
            solve_us: meta.solve_us,
        }
    }

    fn of_stats(stats: &RankStats) -> Self {
        Self {
            lineage_us: stats.lineage_us,
            solve_us: stats.solve_us,
        }
    }
}

/// Explains answers and non-answers of one query over one database.
///
/// Every ranking an explainer produces runs on the interned lineage
/// arena ([`causality_lineage::arena`]): the (non-)answer's lineage is
/// computed, interned to dense variable ids, and minimized **once** per
/// call, and all per-cause responsibility kernels operate on packed
/// bitsets — `TupleRef`s reappear only in the returned
/// [`ExplainedCause`]s.
///
/// The explainer owns a [`SharedIndexCache`]: the join indexes built for
/// the first `why`/`why_not` call are reused by every later call on the
/// same explainer. A serving layer that maintains a long-lived cache
/// injects it via [`Explainer::with_index_cache`] — cache entries are
/// keyed on per-relation content stamps, so one cache is sound across
/// explainers, databases, and snapshot versions alike.
pub struct Explainer<'a> {
    db: &'a Database,
    query: &'a ConjunctiveQuery,
    method: Method,
    parallelism: usize,
    cache: Arc<SharedIndexCache>,
}

impl<'a> Explainer<'a> {
    /// Create an explainer (automatic responsibility algorithm choice).
    pub fn new(db: &'a Database, query: &'a ConjunctiveQuery) -> Self {
        Explainer {
            db,
            query,
            method: Method::Auto,
            parallelism: 1,
            cache: Arc::new(SharedIndexCache::new()),
        }
    }

    /// Select the responsibility algorithm.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Fan per-cause responsibility runs out over `parallelism` threads
    /// (min 1). The ranked output is bit-identical at every level — see
    /// [`crate::ranking::parallel`].
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Share an externally owned index cache (e.g. the one long-lived
    /// cache of a serving layer). Always sound: entries are keyed on
    /// per-relation content stamps, so indexes built from other database
    /// states can never be served against this one.
    pub fn with_index_cache(mut self, cache: Arc<SharedIndexCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The index cache populated by this explainer's calls.
    pub fn index_cache(&self) -> &Arc<SharedIndexCache> {
        &self.cache
    }

    /// Why is `answer` in the result? Ranked causes per Fig. 2b.
    ///
    /// An answer that does not match the query head (arity, constants) is
    /// an error, not a panic.
    pub fn why(&self, answer: &[Value]) -> Result<Explanation, CoreError> {
        self.why_timed(answer).map(|(explanation, _)| explanation)
    }

    /// [`Explainer::why`] plus an [`ExplainTiming`] splitting the cost
    /// into lineage and solve time. The explanation itself is identical
    /// (timings never live on [`Explanation`], which stays comparable
    /// across runs).
    pub fn why_timed(&self, answer: &[Value]) -> Result<(Explanation, ExplainTiming), CoreError> {
        let grounded = self.query.try_ground(answer)?;
        let tag = DichotomyTag::of_why_so(&grounded);
        let (ranked, conjuncts, timing) = if self.parallelism > 1 {
            let cfg = RankConfig {
                method: self.method,
                parallelism: self.parallelism,
                top_k: None,
            };
            let out = rank_why_so_parallel(self.db, &grounded, &cfg, Some(&self.cache))?;
            let timing = ExplainTiming::of_stats(&out.stats);
            (out.causes, out.stats.lineage_conjuncts, timing)
        } else {
            let (ranked, meta) =
                rank_why_so_metered(self.db, &grounded, self.method, Some(&self.cache))?;
            (ranked, meta.lineage_conjuncts, ExplainTiming::of(&meta))
        };
        Ok((
            self.build(ExplanationKind::WhySo, answer, ranked, tag, conjuncts),
            timing,
        ))
    }

    /// [`Explainer::why`] with certified anytime bounds instead of exact
    /// responsibilities: the NP-hard escape hatch of the dichotomy-aware
    /// serving tier.
    ///
    /// The cause *set* is exact (Theorem 3.2 is PTIME); only the ρ
    /// values are bracketed. Each cause carries a
    /// [`RhoBounds`] with `lower ≤ ρ ≤ upper`, its `rho` field is the
    /// certified lower bound, and causes are ranked by that bound. The
    /// step budget is split evenly across the candidate causes; the
    /// deadline (if any) is shared. With [`ApproxBudget::zero`] the
    /// result is the polynomial greedy bracket; with
    /// [`ApproxBudget::unlimited`] every bracket collapses to the exact
    /// ρ.
    pub fn why_anytime(
        &self,
        answer: &[Value],
        budget: ApproxBudget,
    ) -> Result<(Explanation, ExplainTiming), CoreError> {
        let grounded = self.query.try_ground(answer)?;
        let tag = DichotomyTag::of_why_so(&grounded);
        let lineage_started = Instant::now();
        let phi = n_lineage_cached(self.db, &grounded, Some(&self.cache))?;
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let phin = bits.minimized();
        let causes = causes_from_minimized_whyso(&arena, &phin);
        let lineage_us = lineage_started.elapsed().as_micros() as u64;

        let solve_started = Instant::now();
        let per_cause = ApproxBudget {
            max_steps: budget.max_steps / causes.actual.len().max(1) as u64,
            deadline: budget.deadline,
        };
        let mut refinements = 0u32;
        let mut explained: Vec<ExplainedCause> = Vec::with_capacity(causes.actual.len());
        for &t in &causes.actual {
            let v = arena.id(t).expect("actual cause is interned");
            let out = anytime_min_contingency(&phin, v, per_cause);
            refinements += out.refinements;
            let contingency = out
                .contingency
                .as_deref()
                .unwrap_or_default()
                .iter()
                .map(|&id| self.render_tuple(arena.resolve(id)))
                .collect();
            explained.push(ExplainedCause {
                tuple: t,
                relation: self.db.relation(t.rel).name().to_string(),
                values: self.db.tuple(t).clone(),
                rho: out.bounds.lower,
                counterfactual: out.is_exact() && out.bounds.lower == 1.0,
                contingency,
                bounds: Some(out.bounds),
            });
        }
        // Rank by certified lower bound, then tighter upper bound, then
        // tuple id — deterministic like the exact ranker's order.
        explained.sort_by(|a, b| {
            b.rho
                .total_cmp(&a.rho)
                .then(
                    b.bounds
                        .expect("anytime cause")
                        .upper
                        .total_cmp(&a.bounds.expect("anytime cause").upper),
                )
                .then(a.tuple.cmp(&b.tuple))
        });
        let solve_us = solve_started.elapsed().as_micros() as u64;

        // Bracket on ρ_max: the max of the per-cause brackets.
        let bounds =
            explained
                .iter()
                .filter_map(|c| c.bounds)
                .fold(RhoBounds::exact(0.0), |acc, b| RhoBounds {
                    lower: acc.lower.max(b.lower),
                    upper: acc.upper.max(b.upper),
                });
        let explanation = Explanation {
            kind: ExplanationKind::WhySo,
            answer: answer.to_vec(),
            causes: explained,
            dichotomy: tag,
            lineage_conjuncts: phin.conjuncts().len(),
            mode: ExplainMode::Approximate {
                bounds,
                budget_spent_us: solve_us,
                refinements,
            },
        };
        Ok((
            explanation,
            ExplainTiming {
                lineage_us,
                solve_us,
            },
        ))
    }

    /// Like [`Explainer::why`], but computes (and returns) only the `k`
    /// most responsible causes: candidates are screened with a cheap
    /// upper bound and full responsibility is only solved while it can
    /// still change the top k (see [`crate::ranking::parallel`]). The
    /// returned causes are bit-identical to the first `k` of
    /// [`Explainer::why`]; the [`RankStats`] report how much work the
    /// screen saved.
    pub fn why_top_k(
        &self,
        answer: &[Value],
        k: usize,
    ) -> Result<(Explanation, RankStats), CoreError> {
        let grounded = self.query.try_ground(answer)?;
        let tag = DichotomyTag::of_why_so(&grounded);
        let cfg = RankConfig {
            method: self.method,
            parallelism: self.parallelism,
            top_k: Some(k),
        };
        let out = rank_why_so_parallel(self.db, &grounded, &cfg, Some(&self.cache))?;
        let conjuncts = out.stats.lineage_conjuncts;
        Ok((
            self.build(ExplanationKind::WhySo, answer, out.causes, tag, conjuncts),
            out.stats,
        ))
    }

    /// Why is `answer` *not* in the result? The database's endogenous
    /// tuples are interpreted as candidate insertions (Sect. 2's Why-No
    /// setting).
    pub fn why_not(&self, answer: &[Value]) -> Result<Explanation, CoreError> {
        self.why_not_timed(answer)
            .map(|(explanation, _)| explanation)
    }

    /// [`Explainer::why_not`] plus an [`ExplainTiming`]. Why-No is
    /// always PTIME (Theorem 4.17), so the dichotomy tag is fixed.
    pub fn why_not_timed(
        &self,
        answer: &[Value],
    ) -> Result<(Explanation, ExplainTiming), CoreError> {
        let grounded = self.query.try_ground(answer)?;
        let (ranked, meta) = rank_why_no_metered(self.db, &grounded, Some(&self.cache))?;
        Ok((
            self.build(
                ExplanationKind::WhyNo,
                answer,
                ranked,
                DichotomyTag::PTime,
                meta.lineage_conjuncts,
            ),
            ExplainTiming::of(&meta),
        ))
    }

    fn build(
        &self,
        kind: ExplanationKind,
        answer: &[Value],
        ranked: Vec<RankedCause>,
        dichotomy: DichotomyTag,
        lineage_conjuncts: usize,
    ) -> Explanation {
        let causes = ranked
            .into_iter()
            .map(|rc| {
                let contingency = rc
                    .responsibility
                    .min_contingency
                    .clone()
                    .unwrap_or_default()
                    .iter()
                    .map(|&t| self.render_tuple(t))
                    .collect();
                ExplainedCause {
                    tuple: rc.tuple,
                    relation: self.db.relation(rc.tuple.rel).name().to_string(),
                    values: self.db.tuple(rc.tuple).clone(),
                    rho: rc.responsibility.rho,
                    counterfactual: rc.responsibility.is_counterfactual(),
                    contingency,
                    bounds: None,
                }
            })
            .collect();
        Explanation {
            kind,
            answer: answer.to_vec(),
            causes,
            dichotomy,
            lineage_conjuncts,
            mode: ExplainMode::Exact,
        }
    }

    fn render_tuple(&self, t: TupleRef) -> String {
        format!("{}{}", self.db.relation(t.rel).name(), self.db.tuple(t))
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let answer = self
            .answer
            .iter()
            .map(Value::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        match self.kind {
            ExplanationKind::WhySo => writeln!(f, "Why is ({answer}) an answer?")?,
            ExplanationKind::WhyNo => writeln!(f, "Why is ({answer}) not an answer?")?,
        }
        if let ExplainMode::Approximate {
            bounds,
            refinements,
            ..
        } = self.mode
        {
            writeln!(
                f,
                "(anytime: ρ_max ∈ [{:.3}, {:.3}] after {refinements} refinements)",
                bounds.lower, bounds.upper
            )?;
        }
        writeln!(f, "{:>6}  cause", "ρ")?;
        for c in &self.causes {
            writeln!(f, "{:>6.2}  {}{}", c.rho, c.relation, c.values)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn why_explains_example_2_2() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let explanation = Explainer::new(&db, &query)
            .why(&[Value::str("a2")])
            .unwrap();
        assert_eq!(explanation.kind, ExplanationKind::WhySo);
        assert_eq!(explanation.causes.len(), 2);
        assert!(explanation.causes.iter().all(|c| c.counterfactual));
        let rendered = explanation.to_string();
        assert!(rendered.contains("Why is (a2) an answer?"));
        assert!(rendered.contains("S(a1)"));
        assert!(rendered.contains("R(a2, a1)"));
    }

    #[test]
    fn contingencies_are_rendered() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let explanation = Explainer::new(&db, &query)
            .why(&[Value::str("a4")])
            .unwrap();
        let s_a3 = explanation
            .causes
            .iter()
            .find(|c| c.relation == "S" && c.values == tup!["a3"])
            .expect("S(a3) is a cause");
        assert_eq!(s_a3.contingency.len(), 1);
        assert!(!s_a3.counterfactual);
    }

    #[test]
    fn why_not_explains_missing_answers() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]); // candidate insertion
        let query = q("q(x) :- R(x, y), S(y)");
        let explanation = Explainer::new(&db, &query)
            .why_not(&[Value::int(1)])
            .unwrap();
        assert_eq!(explanation.kind, ExplanationKind::WhyNo);
        assert_eq!(explanation.causes.len(), 1);
        assert_eq!(explanation.causes[0].rho, 1.0);
        assert!(explanation.to_string().contains("not an answer"));
    }

    #[test]
    fn method_selection_is_respected() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let exact = Explainer::new(&db, &query)
            .with_method(Method::Exact)
            .why(&[Value::str("a3")])
            .unwrap();
        let flow = Explainer::new(&db, &query)
            .with_method(Method::Flow)
            .why(&[Value::str("a3")])
            .unwrap();
        let rhos = |e: &Explanation| e.causes.iter().map(|c| c.rho).collect::<Vec<_>>();
        assert_eq!(rhos(&exact), rhos(&flow));
    }

    #[test]
    fn index_cache_is_reused_across_calls() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let explainer = Explainer::new(&db, &query);
        let cold = explainer.why(&[Value::str("a4")]).unwrap();
        let built = explainer.index_cache().len();
        assert!(built > 0, "first call populates the cache");
        let warm = explainer.why(&[Value::str("a4")]).unwrap();
        assert_eq!(
            explainer.index_cache().len(),
            built,
            "same grounded shape builds no new indexes"
        );
        assert_eq!(cold, warm, "cached indexes do not change the answer");

        // An injected cache is shared between explainer instances.
        let shared = std::sync::Arc::clone(explainer.index_cache());
        let other = Explainer::new(&db, &query).with_index_cache(shared);
        let again = other.why(&[Value::str("a4")]).unwrap();
        assert_eq!(cold, again);
    }

    #[test]
    fn parallel_why_and_top_k_match_sequential() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let sequential = Explainer::new(&db, &query)
            .why(&[Value::str("a4")])
            .unwrap();
        let parallel = Explainer::new(&db, &query)
            .with_parallelism(4)
            .why(&[Value::str("a4")])
            .unwrap();
        assert_eq!(sequential, parallel, "fan-out is bit-identical");

        let (top2, stats) = Explainer::new(&db, &query)
            .with_parallelism(2)
            .why_top_k(&[Value::str("a4")], 2)
            .unwrap();
        assert_eq!(top2.causes.len(), 2);
        assert_eq!(top2.causes, sequential.causes[..2].to_vec());
        assert_eq!(stats.candidates, sequential.causes.len());
    }

    #[test]
    fn explanations_carry_the_dichotomy_and_lineage_size() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let (explanation, timing) = Explainer::new(&db, &query)
            .why_timed(&[Value::str("a4")])
            .unwrap();
        assert_eq!(explanation.dichotomy, DichotomyTag::PTime);
        assert_eq!(explanation.dichotomy.label(), "PTIME");
        assert!(explanation.lineage_conjuncts > 0);
        assert!((explanation.rho_max() - 0.5).abs() < 1e-12);
        // The timed and untimed calls agree on the explanation itself.
        let untimed = Explainer::new(&db, &query)
            .why(&[Value::str("a4")])
            .unwrap();
        assert_eq!(explanation, untimed);
        let _ = timing; // timings are environment-dependent; no assertion

        // The triangle h2* is NP-hard, and the tag says so.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(t, tup![3, 1]);
        let hard = q("h2 :- R(x, y), S(y, z), T(z, x)");
        let explanation = Explainer::new(&db, &hard).why(&[]).unwrap();
        assert_eq!(explanation.dichotomy, DichotomyTag::NpHard);
        assert_eq!(explanation.rho_max(), 1.0);
    }

    #[test]
    fn why_not_is_tagged_ptime_per_theorem_4_17() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        let query = q("q(x) :- R(x, y), S(y)");
        let (explanation, _timing) = Explainer::new(&db, &query)
            .why_not_timed(&[Value::int(1)])
            .unwrap();
        assert_eq!(explanation.dichotomy, DichotomyTag::PTime);
        assert!(explanation.lineage_conjuncts > 0);
    }

    #[test]
    fn why_anytime_brackets_and_collapses_on_the_triangle() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        // A fan of 3 triangles sharing R(1,2): Γ_min for S(2,3) is the
        // 2 off-fan triangles, so ρ = 1/3; R(1,2) is counterfactual.
        db.insert_endo(r, tup![1, 2]);
        for i in 0..3 {
            db.insert_endo(s, tup![2, 10 + i]);
            db.insert_endo(t, tup![10 + i, 1]);
        }
        let hard = q("h2 :- R(x, y), S(y, z), T(z, x)");
        let explainer = Explainer::new(&db, &hard);

        let exact = explainer.why(&[]).unwrap();
        assert_eq!(exact.mode, ExplainMode::Exact);

        let (greedy, _) = explainer.why_anytime(&[], ApproxBudget::zero()).unwrap();
        let ExplainMode::Approximate { bounds, .. } = greedy.mode else {
            panic!("anytime path reports Approximate");
        };
        assert_eq!(greedy.dichotomy, DichotomyTag::NpHard);
        assert!(bounds.contains(exact.rho_max()), "{bounds:?}");
        // Same cause set, every cause bracketing its exact ρ.
        assert_eq!(greedy.causes.len(), exact.causes.len());
        for c in &greedy.causes {
            let e = exact.causes.iter().find(|e| e.tuple == c.tuple).unwrap();
            assert!(c.bounds.unwrap().contains(e.rho), "{:?}", c.bounds);
        }

        let (full, _) = explainer
            .why_anytime(&[], ApproxBudget::unlimited())
            .unwrap();
        for c in &full.causes {
            let e = exact.causes.iter().find(|e| e.tuple == c.tuple).unwrap();
            assert!(c.bounds.unwrap().is_exact());
            assert!((c.rho - e.rho).abs() < 1e-12, "collapsed to exact ρ");
            assert_eq!(c.counterfactual, e.counterfactual);
        }
        assert_eq!(full.rho_max(), 1.0, "R(1,2) is counterfactual");
    }

    #[test]
    fn non_answer_of_why_gives_empty_causes() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)");
        let explanation = Explainer::new(&db, &query)
            .why(&[Value::str("zzz")])
            .unwrap();
        assert!(explanation.causes.is_empty());
    }
}
