//! Parallel top-k responsibility ranking.
//!
//! The paper's headline use case is ranking candidate causes by
//! responsibility over large instances ("it is critical to rank the
//! candidate causes by their responsibility", Sect. 1), and per-cause
//! responsibility runs are *independent*: each one reads the database,
//! the query, and the shared lineage — nothing else. This module
//! exploits that independence twice:
//!
//! * **Fan-out** — the candidate-cause list is sharded across a
//!   configurable number of scoped std threads (no work-stealing
//!   runtime; an atomic cursor over a screened candidate list is
//!   enough). The n-lineage is interned and minimized **once** in arena
//!   form ([`LineageArena`] + [`BitDnf`]); workers borrow the same
//!   conjunct bitsets (`&VarSet` slices) in place — zero per-candidate
//!   cloning — and the thread-safe [`SharedIndexCache`] makes every
//!   per-cause flow run reuse one set of join indexes.
//! * **Top-k early termination** — when only the `k` most responsible
//!   causes are wanted (the Fig. 2b table is rarely shown in full),
//!   candidates are screened with a cheap, sound upper bound on ρ and
//!   full Algorithm-1 / branch-and-bound responsibility is computed
//!   only while the candidate could still enter the top k.
//!
//! # The upper bound
//!
//! For a candidate `t` over the minimized n-lineage `Φⁿ` (computed once
//! and shared by every screen):
//!
//! * if `t` occurs in **every** conjunct it is a counterfactual cause —
//!   ρ = 1 exactly (Theorem 3.2), so `ub = 1`;
//! * otherwise any contingency `Γ` must hit every conjunct **not**
//!   containing `t`, hence `|Γ|` is at least the size of any packing of
//!   pairwise-disjoint such conjuncts, and
//!   `ρ_t = 1/(1 + min|Γ|) ≤ 1/(1 + packing)`.
//!
//! The bound is sound for *both* responsibility algorithms (they compute
//! the same Def. 2.3 optimum), so pruning never changes the result: a
//! candidate is skipped only when `k` already-computed causes are
//! **strictly** more responsible than its bound allows, which keeps the
//! returned prefix bit-identical to the sequential full ranking — ties
//! included, since tie-breaking is by tuple identity and strict pruning
//! never discards a potential tie.

use crate::causes::causes_from_minimized_whyso;
use crate::error::CoreError;
use crate::ranking::{sort_ranked, Method, RankedCause};
use crate::resp::exact::responsibility_from_bits;
use crate::resp::{self, Responsibility};
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};
use causality_lineage::{n_lineage_cached, BitDnf, LineageArena, VarSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs of a ranking run.
#[derive(Clone, Copy, Debug)]
pub struct RankConfig {
    /// Which responsibility algorithm ranks the causes.
    pub method: Method,
    /// Worker threads sharding the candidate list (min 1; 1 = run on
    /// the calling thread, no spawn).
    pub parallelism: usize,
    /// `Some(k)`: return only the `k` most responsible causes, enabling
    /// upper-bound pruning. `None`: rank every cause.
    pub top_k: Option<usize>,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig {
            method: Method::Auto,
            parallelism: 1,
            top_k: None,
        }
    }
}

impl RankConfig {
    /// A config ranking all causes on `parallelism` threads.
    pub fn with_parallelism(parallelism: usize) -> Self {
        RankConfig {
            parallelism,
            ..RankConfig::default()
        }
    }

    /// Restrict the output (and the computation) to the top `k`.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }
}

/// What a ranking run did: candidate counts and pruning effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Actual causes found by the lineage screen (Theorem 3.2).
    pub candidates: usize,
    /// Candidates whose full responsibility was computed.
    pub computed: usize,
    /// Candidates skipped because their upper bound could no longer
    /// reach the top k.
    pub pruned: usize,
    /// Threads that ran the fan-out (after clamping).
    pub threads: usize,
    /// Conjunct count of the minimized lineage the run was screened
    /// against.
    pub lineage_conjuncts: usize,
    /// µs spent computing, interning, and minimizing the lineage.
    pub lineage_us: u64,
    /// µs spent screening, solving, and merging (everything after the
    /// lineage).
    pub solve_us: u64,
}

/// A ranked (and possibly truncated) explanation with its run stats.
#[derive(Clone, Debug)]
pub struct RankedTopK {
    /// Causes ranked by responsibility descending, ties broken by tuple
    /// identity; truncated to `k` when [`RankConfig::top_k`] is set.
    pub causes: Vec<RankedCause>,
    /// Screening / pruning / fan-out accounting.
    pub stats: RankStats,
}

/// One screened candidate: its tuple and a sound upper bound on ρ.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    tuple: TupleRef,
    upper_bound: f64,
}

/// Rank the Why-So causes of a Boolean query by responsibility on
/// `cfg.parallelism` threads, optionally truncated (and pruned) to the
/// top `k`. The output is bit-identical to the sequential
/// [`rank_why_so_cached`](crate::ranking::rank_why_so_cached) ranking
/// (truncated to `k` when `top_k` is set) for every parallelism level.
pub fn rank_why_so_parallel(
    db: &Database,
    q: &ConjunctiveQuery,
    cfg: &RankConfig,
    cache: Option<&SharedIndexCache>,
) -> Result<RankedTopK, CoreError> {
    // One lineage computation, interned and minimized once in arena
    // form, feeds the candidate screen, the upper bounds, and (for the
    // exact method) every per-cause solve. Workers borrow the same
    // `BitDnf` conjunct slice — zero per-candidate cloning.
    let lineage_started = std::time::Instant::now();
    let phi = n_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    let causes = causes_from_minimized_whyso(&arena, &phin);
    let lineage_us = lineage_started
        .elapsed()
        .as_micros()
        .min(u128::from(u64::MAX)) as u64;
    let solve_started = std::time::Instant::now();

    let mut packing_scratch = VarSet::new();
    let mut candidates: Vec<Candidate> = causes
        .actual
        .iter()
        .map(|&tuple| Candidate {
            tuple,
            upper_bound: if causes.counterfactual.contains(&tuple) {
                1.0
            } else {
                let v = arena.id(tuple).expect("causes come from the lineage");
                1.0 / (1.0 + disjoint_packing_bound(&phin, v, &mut packing_scratch) as f64)
            },
        })
        .collect();
    // Screen order: most promising first, ties by tuple identity (the
    // BTreeSet iteration above already yields tuple order, and the sort
    // is stable, so the order is deterministic).
    candidates.sort_by(|a, b| b.upper_bound.total_cmp(&a.upper_bound));

    let threads = cfg.parallelism.max(1).min(candidates.len().max(1));
    let shared = RankShared {
        db,
        q,
        method: cfg.method,
        cache,
        candidates: &candidates,
        cursor: AtomicUsize::new(0),
        pruned: AtomicUsize::new(0),
        failed: AtomicBool::new(false),
        threshold: cfg.top_k.map(|k| Mutex::new(TopKThreshold::new(k))),
        arena: &arena,
        phin: &phin,
    };

    let mut slots: Vec<Option<Result<Responsibility, CoreError>>> = if threads == 1 {
        // Sequential fast path: no spawn overhead, same pruning logic.
        let mut slots = vec![None; candidates.len()];
        rank_worker(&shared, &mut slots);
        slots
    } else {
        let mut merged = vec![None; candidates.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let shared = &shared;
                    scope.spawn(move || {
                        let mut slots = vec![None; shared.candidates.len()];
                        rank_worker(shared, &mut slots);
                        slots
                    })
                })
                .collect();
            for handle in handles {
                let slots = handle.join().expect("rank worker never panics");
                for (slot, filled) in merged.iter_mut().zip(slots) {
                    if filled.is_some() {
                        *slot = filled;
                    }
                }
            }
        });
        merged
    };

    // Deterministic error reporting: the first failed candidate in
    // screen order wins, independent of thread interleaving.
    let mut ranked = Vec::with_capacity(slots.len());
    for (candidate, slot) in candidates.iter().zip(slots.iter_mut()) {
        match slot.take() {
            Some(Ok(responsibility)) => ranked.push(RankedCause {
                tuple: candidate.tuple,
                responsibility,
            }),
            Some(Err(e)) => return Err(e),
            None => {} // pruned
        }
    }
    let computed = ranked.len();
    sort_ranked(&mut ranked);
    if let Some(k) = cfg.top_k {
        ranked.truncate(k);
    }
    Ok(RankedTopK {
        causes: ranked,
        stats: RankStats {
            candidates: candidates.len(),
            computed,
            pruned: shared.pruned.load(Ordering::Relaxed),
            threads,
            lineage_conjuncts: phin.conjuncts().len(),
            lineage_us,
            solve_us: solve_started
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX)) as u64,
        },
    })
}

/// State shared by the fan-out workers (all borrows — scoped threads).
struct RankShared<'a> {
    db: &'a Database,
    q: &'a ConjunctiveQuery,
    method: Method,
    cache: Option<&'a SharedIndexCache>,
    candidates: &'a [Candidate],
    /// Next candidate index to claim.
    cursor: AtomicUsize,
    /// Candidates skipped by the top-k bound.
    pruned: AtomicUsize,
    /// Set once any worker hits an error; others stop claiming work.
    failed: AtomicBool,
    /// The `k` best ρ values computed so far (absent without `top_k`).
    threshold: Option<Mutex<TopKThreshold>>,
    /// The interner resolving variable ids back to tuples at the result
    /// boundary.
    arena: &'a LineageArena,
    /// The minimized n-lineage in arena form, shared by the exact solves
    /// (workers read the same conjunct bitsets in place).
    phin: &'a BitDnf,
}

/// Claims candidates off the shared cursor until the list is drained,
/// writing each computed responsibility into the worker's slot vector
/// (slot `i` belongs to screened candidate `i`; a worker only ever fills
/// slots it claimed, so merging is conflict-free).
fn rank_worker(shared: &RankShared<'_>, slots: &mut [Option<Result<Responsibility, CoreError>>]) {
    loop {
        if shared.failed.load(Ordering::Relaxed) {
            return;
        }
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(candidate) = shared.candidates.get(i) else {
            return;
        };
        if let Some(threshold) = &shared.threshold {
            let prune = threshold
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .proves_out(candidate.upper_bound);
            if prune {
                shared.pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let result = compute_responsibility(shared, candidate.tuple);
        if let Ok(responsibility) = &result {
            if let Some(threshold) = &shared.threshold {
                threshold
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .record(responsibility.rho);
            }
        } else {
            shared.failed.store(true, Ordering::Relaxed);
        }
        slots[i] = Some(result);
    }
}

/// One per-cause responsibility solve, dispatching exactly like the
/// sequential path — except that the exact branch reuses the already
/// computed minimized lineage instead of re-deriving it per cause.
fn compute_responsibility(
    shared: &RankShared<'_>,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    let exact_from_lineage = || Ok(responsibility_from_bits(shared.arena, shared.phin, t));
    match shared.method {
        Method::Exact => exact_from_lineage(),
        Method::Flow => {
            resp::flow::why_so_responsibility_flow_cached(shared.db, shared.q, t, shared.cache)
        }
        Method::Auto => {
            match resp::flow::why_so_responsibility_flow_cached(
                shared.db,
                shared.q,
                t,
                shared.cache,
            ) {
                Ok(r) => Ok(r),
                Err(e) if resp::flow_inapplicable(&e) => exact_from_lineage(),
                Err(e) => Err(e),
            }
        }
    }
}

/// Lower bound on `min |Γ|` for candidate variable `v`: a greedy packing
/// of pairwise tuple-disjoint conjuncts among those not containing `v`
/// (each needs its own tuple in any hitting contingency). Sound for the
/// exact solver and Algorithm 1 alike — both compute the Def. 2.3
/// optimum. In arena form the disjointness test is one word-wise AND
/// against a reused `blocked` scratch mask.
fn disjoint_packing_bound(phin: &BitDnf, v: u32, blocked: &mut VarSet) -> usize {
    let mut packed = 0usize;
    blocked.clear();
    for c in phin.conjuncts().iter().filter(|c| !c.contains(v as usize)) {
        if !c.intersects(blocked) {
            packed += 1;
            blocked.union_with(c);
        }
    }
    packed
}

/// The `k` largest computed ρ values, for strict pruning.
#[derive(Debug)]
struct TopKThreshold {
    k: usize,
    /// Sorted descending; at most `k` entries.
    best: Vec<f64>,
}

impl TopKThreshold {
    fn new(k: usize) -> Self {
        TopKThreshold {
            k: k.max(1),
            best: Vec::new(),
        }
    }

    /// Whether `upper_bound` proves a candidate cannot enter the top k:
    /// `k` computed causes are already *strictly* more responsible than
    /// the bound allows. Strictness keeps potential ties alive, so the
    /// tuple-identity tie-break matches the unpruned ranking exactly.
    fn proves_out(&self, upper_bound: f64) -> bool {
        self.best.len() == self.k && upper_bound < self.best[self.k - 1]
    }

    fn record(&mut self, rho: f64) {
        let at = self
            .best
            .partition_point(|&b| b.total_cmp(&rho) != std::cmp::Ordering::Less);
        self.best.insert(at, rho);
        self.best.truncate(self.k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::rank_why_so_cached;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn parallel_matches_sequential_all_parallelisms() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let sequential = rank_why_so_cached(&db, &query, Method::Auto, None).unwrap();
        for parallelism in [1, 2, 8] {
            let out = rank_why_so_parallel(
                &db,
                &query,
                &RankConfig::with_parallelism(parallelism),
                None,
            )
            .unwrap();
            assert_eq!(out.causes, sequential);
            assert_eq!(out.stats.candidates, sequential.len());
            assert_eq!(out.stats.computed, sequential.len());
            assert_eq!(out.stats.pruned, 0);
        }
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_ranking() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let full = rank_why_so_cached(&db, &query, Method::Auto, None).unwrap();
        for k in 1..=full.len() + 1 {
            for parallelism in [1, 2, 8] {
                let out = rank_why_so_parallel(
                    &db,
                    &query,
                    &RankConfig::with_parallelism(parallelism).top_k(k),
                    None,
                )
                .unwrap();
                assert_eq!(out.causes, full[..k.min(full.len())]);
            }
        }
    }

    #[test]
    fn pruning_fires_when_counterfactuals_fill_the_top_k() {
        // A(1) is in every witness of q :- A(x), B(y) (counterfactual,
        // ρ = 1); B(1) and B(2) are each ρ = 1/2 with upper bound 1/2.
        // With k = 1, once A(1) is computed both B tuples are provably
        // out (1/2 < 1) and must be pruned, not solved.
        let mut db = Database::new();
        let a = db.add_relation(Schema::new("A", &["x"]));
        let b = db.add_relation(Schema::new("B", &["y"]));
        db.insert_endo(a, tup![1]);
        db.insert_endo(b, tup![1]);
        db.insert_endo(b, tup![2]);
        let query = q("q :- A(x), B(y)");
        for parallelism in [1, 2] {
            let out = rank_why_so_parallel(
                &db,
                &query,
                &RankConfig::with_parallelism(parallelism).top_k(1),
                None,
            )
            .unwrap();
            assert_eq!(out.causes.len(), 1);
            assert_eq!(out.causes[0].responsibility.rho, 1.0);
            if parallelism == 1 {
                // Deterministic with one thread: both B candidates are
                // screened out after A(1) fills the top 1.
                assert_eq!(out.stats.pruned, 2, "stats: {:?}", out.stats);
                assert_eq!(out.stats.computed, 1);
            }
            let full = rank_why_so_cached(&db, &query, Method::Auto, None).unwrap();
            assert_eq!(out.causes, full[..1]);
        }
    }

    #[test]
    fn methods_agree_in_parallel() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        for method in [Method::Auto, Method::Exact, Method::Flow] {
            let sequential = rank_why_so_cached(&db, &query, method, None).unwrap();
            let out = rank_why_so_parallel(
                &db,
                &query,
                &RankConfig {
                    method,
                    parallelism: 4,
                    top_k: None,
                },
                None,
            )
            .unwrap();
            assert_eq!(out.causes, sequential);
        }
    }

    #[test]
    fn hard_query_errors_match_sequential() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(t, tup![3, 1]);
        let query = q("h2 :- R(x, y), S(y, z), T(z, x)");
        // Flow refuses the non-weakly-linear triangle on every path.
        for parallelism in [1, 4] {
            let err = rank_why_so_parallel(
                &db,
                &query,
                &RankConfig {
                    method: Method::Flow,
                    parallelism,
                    top_k: None,
                },
                None,
            );
            assert!(err.is_err());
        }
        // Auto falls back to the exact solver and agrees with sequential.
        let sequential = rank_why_so_cached(&db, &query, Method::Auto, None).unwrap();
        let out =
            rank_why_so_parallel(&db, &query, &RankConfig::with_parallelism(4), None).unwrap();
        assert_eq!(out.causes, sequential);
    }

    #[test]
    fn empty_ranking_for_false_query() {
        let db = example_2_2();
        let out = rank_why_so_parallel(
            &db,
            &q("q :- R(x, 'a6'), S('a6')"),
            &RankConfig::with_parallelism(4).top_k(3),
            None,
        )
        .unwrap();
        assert!(out.causes.is_empty());
        assert_eq!(out.stats.candidates, 0);
    }

    #[test]
    fn threshold_strictness_preserves_ties() {
        let mut t = TopKThreshold::new(2);
        t.record(0.5);
        t.record(0.5);
        // A bound *equal* to the kth best must not prune: the candidate
        // could tie and win on tuple identity.
        assert!(!t.proves_out(0.5));
        assert!(t.proves_out(0.4999));
        t.record(1.0);
        assert_eq!(t.best, vec![1.0, 0.5]);
        assert!(!t.proves_out(0.5));
        assert!(t.proves_out(0.25));
    }

    #[test]
    fn packing_bound_is_sound_on_example() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let phi = n_lineage_cached(&db, &query, None).unwrap();
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let phin = bits.minimized();
        let mut scratch = VarSet::new();
        for t in arena.tuples_of(&phin.variables()) {
            let v = arena.id(t).unwrap();
            let lb = disjoint_packing_bound(&phin, v, &mut scratch);
            let ub = 1.0 / (1.0 + lb as f64);
            let actual = resp::why_so_responsibility(&db, &query, t).unwrap();
            assert!(
                actual.rho <= ub + 1e-12,
                "bound {ub} below actual {} for {t:?}",
                actual.rho
            );
        }
    }
}
