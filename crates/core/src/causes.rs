//! Causality: counterfactual and actual causes (Def. 2.1, Theorem 3.2).
//!
//! * `t` is a **counterfactual cause** for the answer if `D ⊨ q` and
//!   `D − {t} ⊭ q`.
//! * `t` is an **actual cause** if some contingency `Γ ⊆ Dn` makes it
//!   counterfactual in `D − Γ`.
//!
//! Theorem 3.2 turns the (in general NP-complete \[Eiter-Lukasiewicz\])
//! actual-cause check into a PTIME lineage computation for conjunctive
//! queries: `t` is an actual cause **iff** a non-redundant conjunct of the
//! n-lineage `Φⁿ` contains `X_t`. The same statement covers Why-No
//! causality over the non-answer lineage.
//!
//! [`brute_force_why_so`] implements Def. 2.1 literally (exponential
//! contingency enumeration with counterfactual re-evaluation) and serves as
//! the cross-validation oracle in the test suite.

use crate::error::CoreError;
use causality_engine::{
    holds_masked, ConjunctiveQuery, Database, EndoMask, SharedIndexCache, TupleRef,
};
use causality_lineage::{n_lineage_cached, non_answer_lineage_cached, BitDnf, LineageArena};
use std::collections::{BTreeSet, HashSet};

/// The causes of one (non-)answer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CauseSet {
    /// Actual causes (includes every counterfactual cause).
    pub actual: BTreeSet<TupleRef>,
    /// Counterfactual causes (`ρ = 1`).
    pub counterfactual: BTreeSet<TupleRef>,
}

impl CauseSet {
    /// Whether `t` is an actual cause.
    pub fn is_cause(&self, t: TupleRef) -> bool {
        self.actual.contains(&t)
    }

    /// Number of actual causes.
    pub fn len(&self) -> usize {
        self.actual.len()
    }

    /// Whether there are no causes.
    pub fn is_empty(&self) -> bool {
        self.actual.is_empty()
    }
}

/// Compute the Why-So causes of a Boolean query via Theorem 3.2: the
/// actual causes are exactly the variables of the minimized n-lineage; the
/// counterfactual causes are those appearing in *every* conjunct.
pub fn why_so_causes(db: &Database, q: &ConjunctiveQuery) -> Result<CauseSet, CoreError> {
    why_so_causes_cached(db, q, None)
}

/// [`why_so_causes`] with an optional [`SharedIndexCache`]: join indexes
/// are reused whenever the query's relations are untouched — the cache
/// keys on per-relation content stamps, so sharing it across snapshot
/// versions is sound.
pub fn why_so_causes_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<CauseSet, CoreError> {
    let phi = n_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    Ok(causes_from_minimized_whyso(&arena, &bits.minimized()))
}

/// Causes of a specific answer `ā` of a non-Boolean query: grounds
/// `q[ā/x̄]` and applies [`why_so_causes`] (Sect. 2's reduction to Boolean
/// queries).
pub fn why_so_causes_of_answer(
    db: &Database,
    q: &ConjunctiveQuery,
    answer: &[causality_engine::Value],
) -> Result<CauseSet, CoreError> {
    why_so_causes(db, &q.try_ground(answer)?)
}

/// Theorem 3.2 read off the arena-form minimized n-lineage: actual
/// causes are the variables (word-wise OR of the conjuncts),
/// counterfactual causes the variables in *every* conjunct (word-wise
/// AND), resolved back to `TupleRef`s at the boundary.
pub(crate) fn causes_from_minimized_whyso(arena: &LineageArena, phin: &BitDnf) -> CauseSet {
    let actual: BTreeSet<TupleRef> = arena.tuples_of(&phin.variables()).into_iter().collect();
    let counterfactual: BTreeSet<TupleRef> = arena
        .tuples_of(&phin.common_variables())
        .into_iter()
        .collect();
    CauseSet {
        actual,
        counterfactual,
    }
}

/// Compute the Why-No causes of a Boolean non-answer (Sect. 2's dual
/// definition): actual causes are the variables of the minimized
/// non-answer lineage; counterfactual causes are tuples whose insertion
/// alone makes the query true — the singleton conjuncts.
pub fn why_no_causes(db: &Database, q: &ConjunctiveQuery) -> Result<CauseSet, CoreError> {
    why_no_causes_cached(db, q, None)
}

/// [`why_no_causes`] with an optional [`SharedIndexCache`].
pub fn why_no_causes_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<CauseSet, CoreError> {
    let phi = non_answer_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    if phin.is_tautology() {
        // q is already true on Dx: not a non-answer, no causes.
        return Ok(CauseSet::default());
    }
    let actual: BTreeSet<TupleRef> = arena.tuples_of(&phin.variables()).into_iter().collect();
    let counterfactual: BTreeSet<TupleRef> = phin
        .conjuncts()
        .iter()
        .filter(|c| c.len() == 1)
        .flat_map(|c| arena.tuples_of(c))
        .collect();
    Ok(CauseSet {
        actual,
        counterfactual,
    })
}

/// Brute-force Why-So causes straight from Def. 2.1: for each endogenous
/// tuple `t`, search all contingency sets `Γ ⊆ Dn − {t}` (by increasing
/// size) for one making `t` counterfactual. Exponential — test oracle only.
pub fn brute_force_why_so(db: &Database, q: &ConjunctiveQuery) -> Result<CauseSet, CoreError> {
    let endo = db.endogenous_tuples();
    let mut set = CauseSet::default();
    if !holds_masked(db, q, EndoMask::All)? {
        return Ok(set);
    }
    for &t in &endo {
        let others: Vec<TupleRef> = endo.iter().copied().filter(|&u| u != t).collect();
        if let Some(gamma) = smallest_whyso_contingency(db, q, t, &others)? {
            set.actual.insert(t);
            if gamma.is_empty() {
                set.counterfactual.insert(t);
            }
        }
    }
    Ok(set)
}

/// Brute-force minimal Why-So contingency for `t` (Def. 2.3's `min |Γ|`),
/// or `None` if `t` is not a cause. Exponential — test oracle only.
pub fn smallest_whyso_contingency(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    others: &[TupleRef],
) -> Result<Option<Vec<TupleRef>>, CoreError> {
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    for size in 0..=others.len() {
        let mut found: Option<Vec<TupleRef>> = None;
        for combo in combinations(others, size) {
            let mut gone: HashSet<TupleRef> = combo.iter().copied().collect();
            // q true on D − Γ …
            if !holds_masked(db, q, EndoMask::Except(&gone))? {
                continue;
            }
            // … and false on D − Γ − {t}.
            gone.insert(t);
            if !holds_masked(db, q, EndoMask::Except(&gone))? {
                found = Some(combo);
                break;
            }
        }
        if found.is_some() {
            return Ok(found);
        }
    }
    Ok(None)
}

/// Brute-force minimal Why-No contingency for `t`: smallest `Γ ⊆ Dn` with
/// `Dx ∪ Γ ⊭ q` and `Dx ∪ Γ ∪ {t} ⊨ q`. Exponential — test oracle only.
pub fn smallest_whyno_contingency(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Option<Vec<TupleRef>>, CoreError> {
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    let others: Vec<TupleRef> = db
        .endogenous_tuples()
        .into_iter()
        .filter(|&u| u != t)
        .collect();
    for size in 0..=others.len() {
        for combo in combinations(&others, size) {
            let mut present: HashSet<TupleRef> = combo.iter().copied().collect();
            if holds_masked(db, q, EndoMask::Only(&present))? {
                continue; // q must be false on Dx ∪ Γ
            }
            present.insert(t);
            if holds_masked(db, q, EndoMask::Only(&present))? {
                return Ok(Some(combo));
            }
        }
    }
    Ok(None)
}

/// All `size`-subsets of `items`, in lexicographic order.
pub(crate) fn combinations(items: &[TupleRef], size: usize) -> Vec<Vec<TupleRef>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(
        items: &[TupleRef],
        start: usize,
        size: usize,
        current: &mut Vec<TupleRef>,
        out: &mut Vec<Vec<TupleRef>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        let needed = size - current.len();
        for i in start..=items.len().saturating_sub(needed) {
            current.push(items[i]);
            rec(items, i + 1, size, current, out);
            current.pop();
        }
    }
    if size <= items.len() {
        rec(items, 0, size, &mut current, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn tref(db: &Database, rel: &str, tuple: causality_engine::Tuple) -> TupleRef {
        let rid = db.relation_id(rel).unwrap();
        TupleRef {
            rel: rid,
            row: db.relation(rid).find(&tuple).unwrap(),
        }
    }

    /// Example 2.2: for answer a2, S(a1) is a counterfactual cause.
    #[test]
    fn example_2_2_counterfactual() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a2")]);
        let causes = why_so_causes(&db, &query).unwrap();
        let s_a1 = tref(&db, "S", tup!["a1"]);
        let r_21 = tref(&db, "R", tup!["a2", "a1"]);
        assert!(causes.counterfactual.contains(&s_a1));
        assert!(causes.counterfactual.contains(&r_21));
        assert_eq!(causes.actual.len(), 2);
    }

    /// Example 2.2: for answer a4, S(a3) is an actual (not counterfactual)
    /// cause with contingency {S(a2)}.
    #[test]
    fn example_2_2_actual_cause() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let causes = why_so_causes(&db, &query).unwrap();
        let s_a3 = tref(&db, "S", tup!["a3"]);
        let s_a2 = tref(&db, "S", tup!["a2"]);
        assert!(causes.actual.contains(&s_a3));
        assert!(causes.actual.contains(&s_a2));
        assert!(causes.counterfactual.is_empty(), "two disjoint witnesses");
        // Brute-force Def. 2.1 contingency for S(a3) is exactly {S(a2)}.
        let others: Vec<TupleRef> = db
            .endogenous_tuples()
            .into_iter()
            .filter(|&u| u != s_a3)
            .collect();
        let gamma = smallest_whyso_contingency(&db, &query, s_a3, &others)
            .unwrap()
            .unwrap();
        // Two minimum contingencies exist: {S(a2)} and {R(a4,a2)}.
        let r_42 = tref(&db, "R", tup!["a4", "a2"]);
        assert_eq!(gamma.len(), 1);
        assert!(gamma == vec![s_a2] || gamma == vec![r_42], "got {gamma:?}");
    }

    /// Example 2.2 (second part): with Rx = {(a4,a3),(a4,a2)},
    /// Rn(a3,a3) is NOT an actual cause of q :- R(x,'a3'), S('a3').
    #[test]
    fn example_2_2_exogenous_blocks_cause() {
        let mut db = example_2_2();
        let r = db.relation_id("R").unwrap();
        for t in [tup!["a4", "a3"], tup!["a4", "a2"]] {
            let row = db.relation(r).find(&t).unwrap();
            db.relation_mut(r).set_endogenous(row, false);
        }
        let query = q("q :- R(x, 'a3'), S('a3')");
        let causes = why_so_causes(&db, &query).unwrap();
        let r33 = tref(&db, "R", tup!["a3", "a3"]);
        let s3 = tref(&db, "S", tup!["a3"]);
        assert!(!causes.is_cause(r33), "R(a3,a3) makes no difference");
        assert!(causes.is_cause(s3));
        assert!(causes.counterfactual.contains(&s3));
    }

    #[test]
    fn theorem_3_2_agrees_with_brute_force_on_example() {
        let db = example_2_2();
        for answer in ["a2", "a3", "a4"] {
            let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str(answer)]);
            let fast = why_so_causes(&db, &query).unwrap();
            let brute = brute_force_why_so(&db, &query).unwrap();
            assert_eq!(fast, brute, "answer {answer}");
        }
    }

    #[test]
    fn false_query_has_no_causes() {
        let db = example_2_2();
        let causes = why_so_causes(&db, &q("q :- R(x, 'a6'), S('a6')")).unwrap();
        assert!(causes.is_empty());
        let brute = brute_force_why_so(&db, &q("q :- R(x, 'a6'), S('a6')")).unwrap();
        assert!(brute.is_empty());
    }

    #[test]
    fn exogenously_true_query_has_no_causes() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        let causes = why_so_causes(&db, &q("q :- R(x)")).unwrap();
        assert!(
            causes.is_empty(),
            "R(1) keeps q true under every contingency"
        );
        assert_eq!(causes, brute_force_why_so(&db, &q("q :- R(x)")).unwrap());
    }

    #[test]
    fn why_no_causes_basics() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]); // lone missing tuple: counterfactual
        let r53 = db.insert_endo(r, tup![5, 3]);
        let s3 = db.insert_endo(s, tup![3]);

        let causes = why_no_causes(&db, &q("q :- R(x, y), S(y)")).unwrap();
        assert!(causes.counterfactual.contains(&s2));
        assert!(causes.actual.contains(&r53));
        assert!(causes.actual.contains(&s3));
        assert!(!causes.counterfactual.contains(&s3));

        // Cross-check with the brute-force Def. 2.1 dual.
        let gamma = smallest_whyno_contingency(&db, &q("q :- R(x, y), S(y)"), s3)
            .unwrap()
            .unwrap();
        assert_eq!(gamma, vec![r53]);
        let gamma = smallest_whyno_contingency(&db, &q("q :- R(x, y), S(y)"), s2)
            .unwrap()
            .unwrap();
        assert!(gamma.is_empty(), "counterfactual: empty contingency");
    }

    #[test]
    fn why_no_on_actual_answer_is_empty() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        let causes = why_no_causes(&db, &q("q :- R(x)")).unwrap();
        assert!(causes.is_empty());
    }

    #[test]
    fn exogenous_tuple_rejected_by_contingency_search() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t = db.insert_exo(r, tup![1]);
        let err = smallest_whyso_contingency(&db, &q("q :- R(x)"), t, &[]).unwrap_err();
        assert!(matches!(err, CoreError::NotEndogenous));
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let items: Vec<TupleRef> = (0..4).map(|i| TupleRef::new(0, i)).collect();
        assert_eq!(combinations(&items, 0), vec![Vec::<TupleRef>::new()]);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert!(combinations(&items, 5).is_empty());
    }

    #[test]
    fn answer_grounding_helper() {
        let db = example_2_2();
        let base = q("q(x) :- R(x, y), S(y)");
        let causes = why_so_causes_of_answer(&db, &base, &[Value::str("a2")]).unwrap();
        assert_eq!(causes.actual.len(), 2);
    }
}
