//! Abstract marked queries.
//!
//! Sect. 4's complexity analysis looks at a conjunctive query only through
//! (a) which variables each atom contains and (b) whether each atom is
//! endogenous or exogenous. Constants, attribute order and repeated
//! variables within an atom are irrelevant (the *dual hypergraph* of
//! Def. 4.3 is built from variable sets). [`AQuery`] is that abstraction:
//! a list of (endo-flag, variable-bitset) atoms, ideal for the weakening
//! BFS and the rewriting descent.

use crate::error::CoreError;
use causality_engine::{ConjunctiveQuery, Nature};

/// An abstract atom: endogenous flag plus variable bitset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AAtom {
    /// Whether the atom is endogenous (`R^n`).
    pub endo: bool,
    /// Bitset of the variables occurring in the atom.
    pub vars: u64,
}

/// An abstract marked query.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AQuery {
    /// Atoms in source order (order is stable under weakening).
    pub atoms: Vec<AAtom>,
    /// Variable names, indexed by bit position.
    pub var_names: Vec<String>,
    /// Relation names of the atoms, for display.
    pub atom_names: Vec<String>,
}

impl AQuery {
    /// Build the abstraction of a marked query. Every atom must carry an
    /// explicit `^n` / `^x` marker ("w.l.o.g. we further assume that each
    /// relation is either fully endogenous or exogenous", Sect. 4.1).
    ///
    /// # Errors
    /// * [`CoreError::UnmarkedAtom`] if some atom is unmarked.
    /// * [`CoreError::TooLarge`] beyond 64 variables or atoms.
    pub fn from_query(q: &ConjunctiveQuery) -> Result<Self, CoreError> {
        if q.var_count() > 64 {
            return Err(CoreError::TooLarge { what: "variables" });
        }
        if q.atoms().len() > 64 {
            return Err(CoreError::TooLarge { what: "atoms" });
        }
        let mut atoms = Vec::with_capacity(q.atoms().len());
        let mut atom_names = Vec::with_capacity(q.atoms().len());
        for atom in q.atoms() {
            let endo = match atom.nature {
                Nature::Endo => true,
                Nature::Exo => false,
                Nature::Any => {
                    return Err(CoreError::UnmarkedAtom {
                        relation: atom.relation.clone(),
                    })
                }
            };
            let mut vars = 0u64;
            for v in atom.vars() {
                vars |= 1 << v.0;
            }
            atoms.push(AAtom { endo, vars });
            atom_names.push(atom.relation.clone());
        }
        Ok(AQuery {
            atoms,
            var_names: (0..q.var_count() as u32)
                .map(|i| q.var_name(causality_engine::VarId(i)).to_string())
                .collect(),
            atom_names,
        })
    }

    /// Parse and abstract in one step (test/harness convenience).
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let q = ConjunctiveQuery::parse(text).map_err(CoreError::Engine)?;
        AQuery::from_query(&q)
    }

    /// Bitset of variables occurring in at least one atom.
    pub fn active_vars(&self) -> u64 {
        self.atoms.iter().fold(0, |acc, a| acc | a.vars)
    }

    /// Number of active variables.
    pub fn active_var_count(&self) -> usize {
        self.active_vars().count_ones() as usize
    }

    /// The dual hypergraph's edges (Def. 4.3): for every active variable,
    /// the bitset of atoms containing it. Vertex `i` = atom `i`.
    pub fn dual_edges(&self) -> Vec<u64> {
        let mut edges = Vec::new();
        let active = self.active_vars();
        for v in 0..64 {
            if active & (1 << v) == 0 {
                continue;
            }
            let mut edge = 0u64;
            for (i, a) in self.atoms.iter().enumerate() {
                if a.vars & (1 << v) != 0 {
                    edge |= 1 << i;
                }
            }
            edges.push(edge);
        }
        edges
    }

    /// The state key used by search visited-sets (names stripped).
    pub fn key(&self) -> Vec<AAtom> {
        self.atoms.clone()
    }

    /// Human-readable rendering, e.g. `R^n(x,y), S^x(y,z)`.
    pub fn render(&self) -> String {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let vars: Vec<&str> = (0..64)
                    .filter(|v| a.vars & (1 << v) != 0)
                    .map(|v| self.var_names[v as usize].as_str())
                    .collect();
                format!(
                    "{}^{}({})",
                    self.atom_names[i],
                    if a.endo { "n" } else { "x" },
                    vars.join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Whether two atoms share a variable (the "neighbors" of Sect. 4.1).
    pub fn neighbors(&self, i: usize, j: usize) -> bool {
        self.atoms[i].vars & self.atoms[j].vars != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstraction_of_h2() {
        let a = AQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap();
        assert_eq!(a.atoms.len(), 3);
        assert!(a.atoms.iter().all(|at| at.endo));
        assert_eq!(a.active_var_count(), 3);
        // x in R and T; y in R and S; z in S and T.
        assert_eq!(a.dual_edges(), vec![0b101, 0b011, 0b110]);
        assert!(a.neighbors(0, 1));
        assert!(a.neighbors(0, 2));
    }

    #[test]
    fn unmarked_atoms_rejected() {
        let err = AQuery::parse("q :- R(x, y)").unwrap_err();
        assert!(matches!(err, CoreError::UnmarkedAtom { .. }));
    }

    #[test]
    fn constants_and_repeats_ignored() {
        let a = AQuery::parse("q :- R^n(x, 'c', x), S^x(x)").unwrap();
        assert_eq!(a.atoms[0].vars, a.atoms[1].vars);
        assert_eq!(a.active_var_count(), 1);
    }

    #[test]
    fn render_roundtrip_readability() {
        let a = AQuery::parse("q :- R^n(x, y), S^x(y)").unwrap();
        assert_eq!(a.render(), "R^n(x,y), S^x(y)");
    }

    #[test]
    fn dual_edges_skip_inactive_vars() {
        let a = AQuery::parse("q :- A^n(x), B^n(y)").unwrap();
        assert_eq!(a.dual_edges(), vec![0b01, 0b10]);
    }
}
