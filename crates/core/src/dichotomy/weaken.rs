//! Weakening (Def. 4.9) and weak linearity (Cor. 4.11).
//!
//! Two PTIME-preserving transformations expand the class of tractable
//! queries beyond the linear ones:
//!
//! * **Dissociation** — an exogenous atom absorbs a variable occurring in
//!   one of its neighbors (its arity grows). Exogenous tuples have
//!   capacity ∞ in the flow network, so duplicating them per extra
//!   variable value leaves minimum contingencies unchanged (Lemma 4.10).
//! * **Domination** — an endogenous atom whose variables cover another
//!   endogenous atom's variables becomes exogenous: a minimum contingency
//!   never needs tuples of the dominated relation (removing the dominating
//!   atom's partner is never worse).
//!
//! A query is **weakly linear** if some weakening sequence reaches a
//! linear query. The search below explores the (finite) weakening space
//! breadth-first and returns a certificate: the steps plus the final
//! linear order. Order matters for domination (making an atom exogenous
//! removes it from the pool of dominators), hence a real search rather
//! than a greedy pass.

use super::aquery::{AAtom, AQuery};
use super::linearity;
use crate::error::CoreError;
use std::collections::{HashMap, HashSet, VecDeque};

/// One weakening step (atom indices refer to the original query).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WeakenStep {
    /// Atom `dominated` (endogenous) becomes exogenous because
    /// `Var(dominator) ⊆ Var(dominated)` with `dominator` endogenous.
    Dominate {
        /// The atom made exogenous.
        dominated: usize,
        /// The witnessing endogenous atom.
        dominator: usize,
    },
    /// Exogenous atom `atom` absorbs variable `var` from a neighbor.
    Dissociate {
        /// The exogenous atom being widened.
        atom: usize,
        /// The absorbed variable (bit index).
        var: usize,
    },
}

/// A weak-linearity certificate: the weakening steps, the weakened query,
/// and a linear order of its atoms.
#[derive(Clone, Debug)]
pub struct WeaklyLinearCertificate {
    /// Steps applied, in order.
    pub steps: Vec<WeakenStep>,
    /// The weakened query (same atom indexing as the input).
    pub weakened: AQuery,
    /// Witness linear order (atom indices).
    pub linear_order: Vec<usize>,
}

/// Search budget: number of distinct weakening states explored before
/// giving up. Real queries need a handful; the bound only guards against
/// adversarial 64-atom inputs.
const STATE_BUDGET: usize = 200_000;

/// Breadth-first search for a weakening sequence reaching a linear query.
/// Returns `Ok(None)` when the query is *not* weakly linear (the search
/// space is finite, so this is a definite answer).
pub fn weakly_linear_certificate(q: &AQuery) -> Result<Option<WeaklyLinearCertificate>, CoreError> {
    let mut visited: HashSet<Vec<AAtom>> = HashSet::new();
    let mut queue: VecDeque<(Vec<AAtom>, Vec<WeakenStep>)> = VecDeque::new();
    visited.insert(q.key());
    queue.push_back((q.atoms.clone(), Vec::new()));

    while let Some((atoms, steps)) = queue.pop_front() {
        let candidate = AQuery {
            atoms: atoms.clone(),
            var_names: q.var_names.clone(),
            atom_names: q.atom_names.clone(),
        };
        if let Some(order) = linearity::linear_order(&candidate) {
            return Ok(Some(WeaklyLinearCertificate {
                steps,
                weakened: candidate,
                linear_order: order,
            }));
        }
        if visited.len() > STATE_BUDGET {
            return Err(CoreError::BudgetExceeded {
                search: "weakening BFS",
            });
        }
        for (step, next) in successors(&atoms) {
            if visited.insert(next.clone()) {
                let mut s = steps.clone();
                s.push(step);
                queue.push_back((next, s));
            }
        }
    }
    Ok(None)
}

/// Whether the query is weakly linear (certificate discarded).
pub fn is_weakly_linear(q: &AQuery) -> Result<bool, CoreError> {
    Ok(weakly_linear_certificate(q)?.is_some())
}

/// A memoizing wrapper for the many weak-linearity checks the rewriting
/// descent performs.
#[derive(Default)]
pub struct WeakLinearityCache {
    cache: HashMap<Vec<AAtom>, bool>,
}

impl WeakLinearityCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached [`is_weakly_linear`].
    pub fn check(&mut self, q: &AQuery) -> Result<bool, CoreError> {
        if let Some(&known) = self.cache.get(&q.key()) {
            return Ok(known);
        }
        let result = is_weakly_linear(q)?;
        self.cache.insert(q.key(), result);
        Ok(result)
    }
}

/// Enumerate all single-step weakenings of a state.
fn successors(atoms: &[AAtom]) -> Vec<(WeakenStep, Vec<AAtom>)> {
    let mut out = Vec::new();
    // Domination.
    for dominated in 0..atoms.len() {
        if !atoms[dominated].endo {
            continue;
        }
        for dominator in 0..atoms.len() {
            if dominator == dominated || !atoms[dominator].endo {
                continue;
            }
            // Var(dominator) ⊆ Var(dominated)
            if atoms[dominator].vars & !atoms[dominated].vars == 0 {
                let mut next = atoms.to_vec();
                next[dominated].endo = false;
                out.push((
                    WeakenStep::Dominate {
                        dominated,
                        dominator,
                    },
                    next,
                ));
                break; // one witness per dominated atom suffices
            }
        }
    }
    // Dissociation.
    for i in 0..atoms.len() {
        if atoms[i].endo {
            continue;
        }
        // Variables of neighbors not yet in atom i.
        let mut candidate_vars = 0u64;
        for (j, other) in atoms.iter().enumerate() {
            if j != i && atoms[i].vars & other.vars != 0 {
                candidate_vars |= other.vars;
            }
        }
        candidate_vars &= !atoms[i].vars;
        for v in 0..64 {
            if candidate_vars & (1u64 << v) != 0 {
                let mut next = atoms.to_vec();
                next[i].vars |= 1 << v;
                out.push((WeakenStep::Dissociate { atom: i, var: v }, next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 4.12 (first): q :- Rn(x,y), Sx(y,z), Tn(z,x) is weakly
    /// linear via one dissociation (S absorbs x).
    #[test]
    fn example_4_12_dissociation() {
        let q = AQuery::parse("q :- R^n(x, y), S^x(y, z), T^n(z, x)").unwrap();
        let cert = weakly_linear_certificate(&q)
            .unwrap()
            .expect("weakly linear");
        assert!(!cert.steps.is_empty());
        assert!(cert
            .steps
            .iter()
            .any(|s| matches!(s, WeakenStep::Dissociate { atom: 1, .. })));
        // The weakened query is linear under the certificate order.
        assert!(causality_graph::c1p::is_consecutive_under(
            &cert.weakened.dual_edges(),
            &cert.linear_order
        ));
    }

    /// Example 4.12 (second): q :- Rn(x,y), Sn(y,z), Tn(z,x), Vn(x) —
    /// domination (V dominates R and T) then dissociation.
    #[test]
    fn example_4_12_domination_then_dissociation() {
        let q = AQuery::parse("q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)").unwrap();
        let cert = weakly_linear_certificate(&q)
            .unwrap()
            .expect("weakly linear");
        let dominations = cert
            .steps
            .iter()
            .filter(|s| matches!(s, WeakenStep::Dominate { .. }))
            .count();
        assert!(dominations >= 1, "V^n(x) dominates R and T");
    }

    /// The canonical hard queries are not weakly linear.
    #[test]
    fn hard_queries_are_not_weakly_linear() {
        for text in [
            "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
            "h1b :- A^n(x), B^n(y), C^n(z), W^n(x, y, z)",
            "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
            "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
            "h3b :- A^n(x), B^n(y), C^n(z), R^n(x, y), S^n(y, z), T^n(z, x)",
        ] {
            let q = AQuery::parse(text).unwrap();
            assert!(!is_weakly_linear(&q).unwrap(), "{text} must be hard");
        }
    }

    /// h2 with one exogenous edge relation is weakly linear (contrast in
    /// Example 4.12: "the only difference is that here Sx is exogenous").
    #[test]
    fn triangle_with_exogenous_side_is_weakly_linear() {
        for text in [
            "q :- R^x(x, y), S^n(y, z), T^n(z, x)",
            "q :- R^n(x, y), S^x(y, z), T^n(z, x)",
            "q :- R^n(x, y), S^n(y, z), T^x(z, x)",
        ] {
            let q = AQuery::parse(text).unwrap();
            assert!(is_weakly_linear(&q).unwrap(), "{text} must be PTIME");
        }
    }

    /// Linear queries are trivially weakly linear with zero steps.
    #[test]
    fn linear_query_needs_no_steps() {
        let q = AQuery::parse("q :- R^n(x, y), S^n(y, z)").unwrap();
        let cert = weakly_linear_certificate(&q).unwrap().unwrap();
        assert!(cert.steps.is_empty());
    }

    /// Case 2(b) of Theorem 4.13's proof: h1 with *exogenous* A is weakly
    /// linear (A dissociates into W's variables? no — A^x(x) absorbs y, z).
    #[test]
    fn h1_with_exogenous_unary_is_weakly_linear() {
        let q = AQuery::parse("q :- A^x(x), B^n(y), C^n(z), W^n(x, y, z)").unwrap();
        assert!(is_weakly_linear(&q).unwrap());
    }

    /// Case 2(c) of Theorem 4.13's proof: An, Bn + R,S,T(,W) is weakly
    /// linear because R, S, T are dominated.
    #[test]
    fn two_unary_endos_dominate_binaries() {
        let q = AQuery::parse("q :- A^n(x), B^n(y), R^n(x, y), S^n(y, z), T^n(z, x), W^n(x, y, z)")
            .unwrap();
        assert!(is_weakly_linear(&q).unwrap());
    }

    #[test]
    fn cache_agrees_with_direct_check() {
        let mut cache = WeakLinearityCache::new();
        let hard = AQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap();
        let easy = AQuery::parse("q :- R^n(x, y), S^n(y, z)").unwrap();
        assert!(!cache.check(&hard).unwrap());
        assert!(cache.check(&easy).unwrap());
        // Second lookups hit the cache.
        assert!(!cache.check(&hard).unwrap());
        assert!(cache.check(&easy).unwrap());
    }

    /// Mutual domination (equal variable sets): exactly one of the two can
    /// be weakened away, and the search must consider both choices.
    #[test]
    fn mutual_domination_explores_both_orders() {
        // A^n(x,y) and K^n(x,y) dominate each other. With W^n(x,y,z),
        // B^n(y), C... construct a case where weak linearity holds.
        let q = AQuery::parse("q :- A^n(x, y), K^n(x, y), S^n(y, z)").unwrap();
        assert!(is_weakly_linear(&q).unwrap());
    }
}
