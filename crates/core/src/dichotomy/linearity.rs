//! Linearity (Def. 4.3 / 4.4).
//!
//! "A hypergraph H(V, E) is linear if there exists a total order of V such
//! that every hyperedge is a consecutive subsequence. A query is linear if
//! its dual hypergraph is linear." The dual hypergraph has the query's
//! *atoms* as vertices and one hyperedge per *variable*. Note that
//! linearity ignores the endogenous/exogenous status of atoms.

use super::aquery::AQuery;
use causality_graph::c1p;
use causality_graph::Hypergraph;

/// Build the dual query hypergraph `H^D` (Def. 4.3) for display and
/// further analysis: vertices = atoms, hyperedges = variables.
pub fn dual_hypergraph(q: &AQuery) -> Hypergraph {
    let mut h = Hypergraph::new(q.atoms.len());
    let active = q.active_vars();
    for v in 0..64u32 {
        if active & (1u64 << v) == 0 {
            continue;
        }
        let mut edge = 0u64;
        for (i, a) in q.atoms.iter().enumerate() {
            if a.vars & (1u64 << v) != 0 {
                edge |= 1 << i;
            }
        }
        h.add_edge_bits(edge, q.var_names[v as usize].clone());
    }
    h
}

/// Whether the query is linear (Def. 4.4).
pub fn is_linear(q: &AQuery) -> bool {
    linear_order(q).is_some()
}

/// A witness linear order of the atoms, if one exists: every variable's
/// atom set is consecutive under the returned order.
pub fn linear_order(q: &AQuery) -> Option<Vec<usize>> {
    c1p::c1p_order(q.atoms.len(), &q.dual_edges())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 5a query is linear with the order A,S1,S2,R,S3,T,B.
    #[test]
    fn fig5a_query_is_linear() {
        let q = AQuery::parse(
            "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        )
        .unwrap();
        let order = linear_order(&q).expect("Fig 5a query is linear");
        assert!(c1p::is_consecutive_under(&q.dual_edges(), &order));
    }

    /// None of the canonical hard queries is linear (Sect. 4.1).
    #[test]
    fn hard_queries_are_not_linear() {
        for text in [
            "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
            "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
            "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
        ] {
            let q = AQuery::parse(text).unwrap();
            assert!(!is_linear(&q), "{text} must not be linear");
        }
    }

    /// Linearity ignores endo/exo markers: h2 with everything exogenous is
    /// still non-linear.
    #[test]
    fn linearity_ignores_markers() {
        let endo = AQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap();
        let exo = AQuery::parse("h2 :- R^x(x, y), S^x(y, z), T^x(z, x)").unwrap();
        assert_eq!(is_linear(&endo), is_linear(&exo));
    }

    #[test]
    fn chain_queries_are_linear() {
        let q = AQuery::parse("q :- R^n(x, y), S^n(y, z), T^n(z, w)").unwrap();
        assert!(is_linear(&q));
    }

    #[test]
    fn star_with_three_rays_is_not_linear() {
        // R(x,w), S(y,w), T(z,w), A(x), B(y), C(z): the "corner point" shape
        // of Lemma D.2 Case 1A.
        let q =
            AQuery::parse("q :- R^n(x, w), S^n(y, w), T^n(z, w), A^n(x), B^n(y), C^n(z)").unwrap();
        assert!(!is_linear(&q));
    }

    #[test]
    fn dual_hypergraph_structure() {
        let q = AQuery::parse("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)").unwrap();
        let h = dual_hypergraph(&q);
        assert_eq!(h.vertex_count(), 4);
        assert_eq!(h.edge_count(), 3);
        // Every variable's edge contains W (vertex 3).
        for i in 0..3 {
            assert!(h.edge(i) & (1 << 3) != 0);
        }
    }

    #[test]
    fn single_atom_is_linear() {
        let q = AQuery::parse("q :- W^n(x, y, z)").unwrap();
        assert!(is_linear(&q));
    }
}
