//! Rewriting (Def. 4.6) and the descent to a canonical hard query.
//!
//! Rewriting only ever *reduces* complexity (Lemma 4.7): if `q ⇝ q'` and
//! `q'` is NP-hard then so is `q`. Corollary 4.14's proof turns this into
//! an algorithm: starting from a non-weakly-linear query, keep applying
//! rewrites whose result is still not weakly linear; the chain terminates
//! at a *final* query, and Theorem 4.13 — the paper's hardest result —
//! says every final query is one of
//!
//! ```text
//! h1* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), W(x,y,z)
//! h2* :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x)
//! h3* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), R(x,y), S(y,z), T(z,x)
//! ```
//!
//! (unmarked relations may be endogenous or exogenous, Theorem 4.1). The
//! descent below emits the rewrite chain as a machine-checkable
//! NP-hardness certificate.

use super::aquery::AQuery;
use super::weaken::WeakLinearityCache;
use crate::error::CoreError;

/// Which canonical hard query a descent reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HardTarget {
    /// `h1* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), W(x,y,z)`
    H1,
    /// `h2* :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x)`
    H2,
    /// `h3* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), R(x,y), S(y,z), T(z,x)`
    H3,
}

impl HardTarget {
    /// Paper name of the target.
    pub fn name(self) -> &'static str {
        match self {
            HardTarget::H1 => "h1*",
            HardTarget::H2 => "h2*",
            HardTarget::H3 => "h3*",
        }
    }
}

/// An NP-hardness certificate: the rewrite chain `q ⇝ … ⇝ hᵢ*`.
#[derive(Clone, Debug)]
pub struct HardnessCertificate {
    /// Human-readable rewrite steps, in order.
    pub steps: Vec<String>,
    /// The canonical hard query reached.
    pub target: HardTarget,
    /// The final query (isomorphic to the target).
    pub final_query: AQuery,
}

/// Try to recognise the current query as one of h1*, h2*, h3* up to
/// variable renaming, working on the (endo, variable-set) multiset — the
/// only structure Theorem 4.1's reductions consult.
pub fn match_hard(q: &AQuery) -> Option<HardTarget> {
    let active = q.active_vars();
    if active.count_ones() != 3 {
        return None;
    }
    let vars: Vec<u64> = (0..64)
        .filter(|v| active & (1u64 << v) != 0)
        .map(|v| 1u64 << v)
        .collect();
    let (a, b, c) = (vars[0], vars[1], vars[2]);
    let pairs = [a | b, b | c, a | c];
    let triple = a | b | c;

    let singleton_endos: Vec<u64> = q
        .atoms
        .iter()
        .filter(|at| at.endo && vars.contains(&at.vars))
        .map(|at| at.vars)
        .collect();
    let all_three_singletons = {
        let mut s = singleton_endos.clone();
        s.sort_unstable();
        s.dedup();
        s.len() == 3
    };

    match q.atoms.len() {
        // h2*: three endogenous atoms carrying the three pairs.
        3 => {
            let mut sets: Vec<u64> = q.atoms.iter().map(|at| at.vars).collect();
            sets.sort_unstable();
            let mut expect = pairs.to_vec();
            expect.sort_unstable();
            if q.atoms.iter().all(|at| at.endo) && sets == expect {
                Some(HardTarget::H2)
            } else {
                None
            }
        }
        // h1*: three endogenous singletons plus W(x,y,z) of either nature.
        4 => {
            let w_atoms: Vec<_> = q.atoms.iter().filter(|at| at.vars == triple).collect();
            if all_three_singletons && singleton_endos.len() == 3 && w_atoms.len() == 1 {
                Some(HardTarget::H1)
            } else {
                None
            }
        }
        // h3*: three endogenous singletons plus the three pairs (either nature).
        6 => {
            let mut pair_sets: Vec<u64> = q
                .atoms
                .iter()
                .filter(|at| pairs.contains(&at.vars))
                .map(|at| at.vars)
                .collect();
            pair_sets.sort_unstable();
            let mut expect = pairs.to_vec();
            expect.sort_unstable();
            if all_three_singletons && singleton_endos.len() == 3 && pair_sets == expect {
                Some(HardTarget::H3)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// One candidate rewrite: description plus resulting query.
fn candidate_rewrites(q: &AQuery) -> Vec<(String, AQuery)> {
    let mut out = Vec::new();
    let active = q.active_vars();

    // DELETE g (rule 3): atom exogenous, or some other atom's variable set
    // is contained in it.
    for i in 0..q.atoms.len() {
        let deletable = !q.atoms[i].endo
            || (0..q.atoms.len()).any(|j| j != i && q.atoms[j].vars & !q.atoms[i].vars == 0);
        if deletable && q.atoms.len() > 1 {
            let mut next = q.clone();
            next.atoms.remove(i);
            next.atom_names.remove(i);
            out.push((format!("delete atom {}", q.atom_names[i]), next));
        }
    }

    // DELETE x (rule 1).
    for v in 0..64 {
        if active & (1u64 << v) == 0 {
            continue;
        }
        let mut next = q.clone();
        for a in &mut next.atoms {
            a.vars &= !(1u64 << v);
        }
        out.push((format!("delete variable {}", q.var_names[v]), next));
    }

    // ADD y (rule 2): ordered pairs (x, y) co-occurring in some atom, with
    // some atom containing x but not y.
    for x in 0..64 {
        if active & (1u64 << x) == 0 {
            continue;
        }
        for y in 0..64 {
            if y == x || active & (1u64 << y) == 0 {
                continue;
            }
            let both = (1u64 << x) | (1u64 << y);
            let cooccur = q.atoms.iter().any(|a| a.vars & both == both);
            let extendable = q
                .atoms
                .iter()
                .any(|a| a.vars & (1 << x) != 0 && a.vars & (1 << y) == 0);
            if cooccur && extendable {
                let mut next = q.clone();
                for a in &mut next.atoms {
                    if a.vars & (1 << x) != 0 {
                        a.vars |= 1 << y;
                    }
                }
                out.push((
                    format!(
                        "add {} to atoms containing {}",
                        q.var_names[y], q.var_names[x]
                    ),
                    next,
                ));
            }
        }
    }
    out
}

/// Descend from a non-weakly-linear query to a canonical hard query,
/// producing the NP-hardness certificate of Corollary 4.14. Returns
/// `Ok(None)` when the query is weakly linear (no certificate exists).
pub fn hardness_certificate(
    q: &AQuery,
    cache: &mut WeakLinearityCache,
) -> Result<Option<HardnessCertificate>, CoreError> {
    if cache.check(q)? {
        return Ok(None);
    }
    let mut current = q.clone();
    let mut steps: Vec<String> = Vec::new();
    loop {
        if let Some(target) = match_hard(&current) {
            return Ok(Some(HardnessCertificate {
                steps,
                target,
                final_query: current,
            }));
        }
        let mut advanced = false;
        for (desc, next) in candidate_rewrites(&current) {
            if !cache.check(&next)? {
                steps.push(format!("{desc}  ⇝  {}", next.render()));
                current = next;
                advanced = true;
                break;
            }
        }
        if !advanced {
            // `current` is final but matches none of h1*, h2*, h3* — this
            // contradicts Theorem 4.13 and indicates a bug; surface it
            // rather than mis-classifying.
            return Err(CoreError::BudgetExceeded {
                search: "rewriting descent: final query is not canonical (Theorem 4.13 violation)",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> WeakLinearityCache {
        WeakLinearityCache::new()
    }

    #[test]
    fn canonical_queries_match_themselves() {
        let h1 = AQuery::parse("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)").unwrap();
        assert_eq!(match_hard(&h1), Some(HardTarget::H1));
        let h1n = AQuery::parse("h1 :- A^n(x), B^n(y), C^n(z), W^n(x, y, z)").unwrap();
        assert_eq!(match_hard(&h1n), Some(HardTarget::H1));
        let h2 = AQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap();
        assert_eq!(match_hard(&h2), Some(HardTarget::H2));
        let h3 =
            AQuery::parse("h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^n(y, z), T^x(z, x)").unwrap();
        assert_eq!(match_hard(&h3), Some(HardTarget::H3));
    }

    #[test]
    fn near_misses_do_not_match() {
        // Exogenous unary: not h1.
        let q = AQuery::parse("q :- A^x(x), B^n(y), C^n(z), W^n(x, y, z)").unwrap();
        assert_eq!(match_hard(&q), None);
        // Triangle with an exogenous side: not h2.
        let q = AQuery::parse("q :- R^x(x, y), S^n(y, z), T^n(z, x)").unwrap();
        assert_eq!(match_hard(&q), None);
        // Path, not triangle.
        let q = AQuery::parse("q :- R^n(x, y), S^n(y, z), T^n(z, w)").unwrap();
        assert_eq!(match_hard(&q), None);
    }

    /// Example 4.8: the 4-cycle R(x,y), S(y,z), T(z,u), K(u,x) rewrites to
    /// h2* and is therefore NP-hard.
    #[test]
    fn example_4_8_four_cycle_descends_to_h2() {
        let q = AQuery::parse("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)").unwrap();
        let cert = hardness_certificate(&q, &mut cache())
            .unwrap()
            .expect("4-cycle is NP-hard");
        assert_eq!(cert.target, HardTarget::H2);
        assert!(!cert.steps.is_empty());
    }

    #[test]
    fn weakly_linear_queries_have_no_certificate() {
        let q = AQuery::parse("q :- R^n(x, y), S^x(y, z), T^n(z, x)").unwrap();
        assert!(hardness_certificate(&q, &mut cache()).unwrap().is_none());
    }

    /// The canonical queries certify themselves with zero steps.
    #[test]
    fn canonical_queries_are_their_own_certificates() {
        let h2 = AQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap();
        let cert = hardness_certificate(&h2, &mut cache()).unwrap().unwrap();
        assert_eq!(cert.target, HardTarget::H2);
        assert!(cert.steps.is_empty());
    }

    /// Longer cycles are hard too (they rewrite down to h2*).
    #[test]
    fn five_cycle_is_hard() {
        let q = AQuery::parse("q :- R1^n(a, b), R2^n(b, c), R3^n(c, d), R4^n(d, e), R5^n(e, a)")
            .unwrap();
        let cert = hardness_certificate(&q, &mut cache()).unwrap().unwrap();
        assert_eq!(cert.target, HardTarget::H2);
    }

    /// h1 with a larger arity atom: An(x), Bn(y), Cn(z), W(x,y,z,w) — the
    /// extra variable w deletes away, leaving h1*.
    #[test]
    fn padded_h1_descends_to_h1() {
        let q = AQuery::parse("q :- A^n(x), B^n(y), C^n(z), W^x(x, y, z, w)").unwrap();
        let cert = hardness_certificate(&q, &mut cache()).unwrap().unwrap();
        assert_eq!(cert.target, HardTarget::H1);
    }

    /// The "corner point" query of Lemma D.2 Case 1A reduces to h1*.
    #[test]
    fn corner_point_star_is_hard() {
        let q =
            AQuery::parse("q :- A^n(x), B^n(y), C^n(z), R^n(x, w), S^n(y, w), T^n(z, w)").unwrap();
        let cert = hardness_certificate(&q, &mut cache()).unwrap().unwrap();
        // Reachable target may be h1* (via corner analysis); any canonical
        // target is a valid hardness proof.
        assert!(matches!(
            cert.target,
            HardTarget::H1 | HardTarget::H2 | HardTarget::H3
        ));
    }

    #[test]
    fn target_names() {
        assert_eq!(HardTarget::H1.name(), "h1*");
        assert_eq!(HardTarget::H2.name(), "h2*");
        assert_eq!(HardTarget::H3.name(), "h3*");
    }
}
