//! The dichotomy classifier (Corollary 4.14).
//!
//! For a self-join-free conjunctive query with every atom marked `^n` or
//! `^x`:
//!
//! * **weakly linear** ⇒ Why-So responsibility is PTIME — the certificate
//!   is a weakening sequence plus a linear order, which Algorithm 1
//!   consumes directly;
//! * **not weakly linear** ⇒ NP-hard — the certificate is a rewrite chain
//!   ending in h1*, h2* or h3* (Theorems 4.1, 4.13).
//!
//! Queries *with* self-joins fall outside the dichotomy: Prop. 4.16 shows
//! `Rⁿ(x), S(x,y), Rⁿ(y)` is NP-hard, but the paper leaves the general
//! self-join case open ("we do not yet have a full dichotomy"), so the
//! classifier answers [`Complexity::HardSelfJoin`] for the known pattern
//! and [`Complexity::OpenSelfJoin`] otherwise.

use super::aquery::AQuery;
use super::rewrite::{hardness_certificate, HardnessCertificate};
use super::weaken::{weakly_linear_certificate, WeakLinearityCache, WeaklyLinearCertificate};
use crate::error::CoreError;
use causality_engine::ConjunctiveQuery;

/// The classifier's verdict for Why-So responsibility.
#[derive(Clone, Debug)]
pub enum Complexity {
    /// Weakly linear: PTIME via Algorithm 1, with certificate.
    PTime(Box<WeaklyLinearCertificate>),
    /// Not weakly linear: NP-hard, with a rewrite chain to h1*/h2*/h3*.
    NpHard(Box<HardnessCertificate>),
    /// Matches the self-join pattern of Prop. 4.16 — known NP-hard.
    HardSelfJoin,
    /// Contains a self-join not covered by any known result; the paper
    /// leaves this open (Sect. 4.1, "queries with self-joins are harder to
    /// analyze, and we do not yet have a full dichotomy").
    OpenSelfJoin,
}

impl Complexity {
    /// Short label for tables (Fig. 3 style).
    pub fn label(&self) -> &'static str {
        self.tag().label()
    }

    /// Whether the verdict is PTIME.
    pub fn is_ptime(&self) -> bool {
        matches!(self, Complexity::PTime(_))
    }

    /// The certificate-free, `Copy` summary of the verdict, suitable for
    /// stamping on explanations and traces.
    pub fn tag(&self) -> DichotomyTag {
        match self {
            Complexity::PTime(_) => DichotomyTag::PTime,
            Complexity::NpHard(_) => DichotomyTag::NpHard,
            Complexity::HardSelfJoin => DichotomyTag::HardSelfJoin,
            Complexity::OpenSelfJoin => DichotomyTag::OpenSelfJoin,
        }
    }
}

/// A certificate-free summary of a [`Complexity`] verdict. Unlike
/// [`Complexity`] (which boxes the weakening sequence or rewrite chain),
/// this is `Copy` and comparable, so results and traces can carry it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DichotomyTag {
    /// Weakly linear: PTIME via Algorithm 1.
    PTime,
    /// Not weakly linear: NP-hard (Theorems 4.1, 4.13).
    NpHard,
    /// The Prop. 4.16 self-join pattern — known NP-hard.
    HardSelfJoin,
    /// A self-join outside the dichotomy; complexity open.
    OpenSelfJoin,
    /// The classifier could not analyze the query (e.g. malformed
    /// abstract view); no verdict.
    Unclassified,
}

impl DichotomyTag {
    /// Same labels as [`Complexity::label`], plus `unclassified`.
    pub fn label(self) -> &'static str {
        match self {
            DichotomyTag::PTime => "PTIME",
            DichotomyTag::NpHard => "NP-hard",
            DichotomyTag::HardSelfJoin => "NP-hard (self-join, Prop. 4.16)",
            DichotomyTag::OpenSelfJoin => "open (self-join)",
            DichotomyTag::Unclassified => "unclassified",
        }
    }

    /// Classifies `q`, collapsing classifier errors to
    /// [`DichotomyTag::Unclassified`] instead of failing the request.
    ///
    /// Serving-path queries usually leave atoms unmarked
    /// ([`causality_engine::Nature::Any`]: the *tuples* carry the
    /// endogenous/exogenous split), which the certificate-producing
    /// classifier rejects. For tagging purposes unmarked atoms are
    /// treated as endogenous — the hard direction — so the tag reports
    /// the worst-case complexity the request could have exhibited.
    pub fn of_why_so(q: &ConjunctiveQuery) -> DichotomyTag {
        let needs_marks = q
            .atoms()
            .iter()
            .any(|a| a.nature == causality_engine::Nature::Any);
        let marked;
        let query = if needs_marks {
            let mut m = q.clone();
            for i in 0..m.atoms().len() {
                if m.atoms()[i].nature == causality_engine::Nature::Any {
                    m.atom_mut(i).nature = causality_engine::Nature::Endo;
                }
            }
            marked = m;
            &marked
        } else {
            q
        };
        classify_why_so(query)
            .map(|c| c.tag())
            .unwrap_or(DichotomyTag::Unclassified)
    }
}

/// Classify the Why-So responsibility complexity of a Boolean marked
/// query (Corollary 4.14).
pub fn classify_why_so(q: &ConjunctiveQuery) -> Result<Complexity, CoreError> {
    if q.has_self_join() {
        return Ok(if is_prop_4_16_pattern(q) {
            Complexity::HardSelfJoin
        } else {
            Complexity::OpenSelfJoin
        });
    }
    let aq = AQuery::from_query(q)?;
    classify_aquery(&aq)
}

/// Classify an abstract query directly.
pub fn classify_aquery(aq: &AQuery) -> Result<Complexity, CoreError> {
    if let Some(cert) = weakly_linear_certificate(aq)? {
        return Ok(Complexity::PTime(Box::new(cert)));
    }
    let mut cache = WeakLinearityCache::new();
    let cert = hardness_certificate(aq, &mut cache)?
        .expect("non-weakly-linear query must reach a canonical hard query (Thm 4.13)");
    Ok(Complexity::NpHard(Box::new(cert)))
}

/// Why-No responsibility is PTIME for *every* conjunctive query
/// (Theorem 4.17): contingency sets are bounded by the number of subgoals.
pub fn classify_why_no(_q: &ConjunctiveQuery) -> &'static str {
    "PTIME (Theorem 4.17)"
}

/// Detect the Prop. 4.16 shape `Rⁿ(x), S(x,y), Rⁿ(y)` (with `S`
/// endogenous or exogenous): two endogenous unary atoms over the *same*
/// relation bridged by a binary atom.
fn is_prop_4_16_pattern(q: &ConjunctiveQuery) -> bool {
    let atoms = q.atoms();
    if atoms.len() != 3 {
        return false;
    }
    // Find the two unary atoms over the same relation and the binary one.
    let unary: Vec<usize> = (0..3).filter(|&i| atoms[i].arity() == 1).collect();
    let binary: Vec<usize> = (0..3).filter(|&i| atoms[i].arity() == 2).collect();
    if unary.len() != 2 || binary.len() != 1 {
        return false;
    }
    let (u1, u2, b) = (unary[0], unary[1], binary[0]);
    if atoms[u1].relation != atoms[u2].relation {
        return false;
    }
    if atoms[u1].nature != causality_engine::Nature::Endo
        || atoms[u2].nature != causality_engine::Nature::Endo
    {
        return false;
    }
    let x = atoms[u1].vars();
    let y = atoms[u2].vars();
    if x == y || x.len() != 1 || y.len() != 1 {
        return false;
    }
    let bridge = atoms[b].vars();
    bridge.len() == 2 && bridge.is_superset(&x) && bridge.is_superset(&y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn linear_chain_is_ptime() {
        let c = classify_why_so(&q("q :- R^n(x, y), S^n(y, z)")).unwrap();
        assert!(c.is_ptime());
        assert_eq!(c.label(), "PTIME");
    }

    #[test]
    fn canonical_hard_queries_are_np_hard() {
        for text in [
            "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
            "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
            "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
        ] {
            let c = classify_why_so(&q(text)).unwrap();
            assert!(matches!(c, Complexity::NpHard(_)), "{text}");
        }
    }

    /// Example 4.8's 4-cycle: hard, with a rewrite chain certificate.
    #[test]
    fn four_cycle_certificate_chain() {
        let c = classify_why_so(&q("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)")).unwrap();
        match c {
            Complexity::NpHard(cert) => {
                assert!(!cert.steps.is_empty());
                assert_eq!(cert.target.name(), "h2*");
            }
            other => panic!("expected NP-hard, got {}", other.label()),
        }
    }

    /// Example 4.12's queries: PTIME with weakening certificates.
    #[test]
    fn example_4_12_ptime_certificates() {
        for text in [
            "q :- R^n(x, y), S^x(y, z), T^n(z, x)",
            "q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)",
        ] {
            let c = classify_why_so(&q(text)).unwrap();
            match c {
                Complexity::PTime(cert) => {
                    assert!(!cert.steps.is_empty(), "{text} needs real weakening");
                }
                other => panic!("{text}: expected PTIME, got {}", other.label()),
            }
        }
    }

    #[test]
    fn prop_4_16_self_join_detected() {
        for text in [
            "q :- R^n(x), S^x(x, y), R^n(y)",
            "q :- R^n(x), S^n(x, y), R^n(y)",
        ] {
            let c = classify_why_so(&q(text)).unwrap();
            assert!(matches!(c, Complexity::HardSelfJoin), "{text}");
        }
    }

    #[test]
    fn open_self_join_reported_honestly() {
        // The paper explicitly leaves R(x,y), R(y,z) open.
        let c = classify_why_so(&q("q :- R^n(x, y), R^n(y, z)")).unwrap();
        assert!(matches!(c, Complexity::OpenSelfJoin));
        assert!(c.label().contains("open"));
    }

    #[test]
    fn prop_4_16_near_misses_are_open() {
        // Unary atoms over different relations: no self-join at all —
        // handled by the dichotomy (and in fact weakly linear).
        let c = classify_why_so(&q("q :- A^n(x), S^x(x, y), B^n(y)")).unwrap();
        assert!(c.is_ptime());
        // Same relation but exogenous unaries: not the Prop 4.16 pattern.
        let c = classify_why_so(&q("q :- R^x(x), S^n(x, y), R^x(y)")).unwrap();
        assert!(matches!(c, Complexity::OpenSelfJoin));
    }

    #[test]
    fn why_no_is_always_ptime() {
        assert!(classify_why_no(&q("q :- R^n(x, y)")).contains("PTIME"));
    }

    #[test]
    fn unmarked_query_is_an_error() {
        let err = classify_why_so(&q("q :- R(x, y), S(y)")).unwrap_err();
        assert!(matches!(err, CoreError::UnmarkedAtom { .. }));
    }

    /// Figure 5a's long linear query classifies PTIME with zero steps.
    #[test]
    fn fig5a_is_ptime_without_weakening() {
        let c = classify_why_so(&q(
            "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        ))
        .unwrap();
        match c {
            Complexity::PTime(cert) => assert!(cert.steps.is_empty()),
            other => panic!("expected PTIME, got {}", other.label()),
        }
    }
}
