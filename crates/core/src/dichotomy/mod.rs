//! The responsibility dichotomy (Sect. 4 / Corollary 4.14).
//!
//! For every self-join-free conjunctive query, Why-So responsibility is
//! either PTIME or NP-hard, and the boundary is *weak linearity*:
//!
//! * [`aquery`] — the abstract view of a marked query: atoms as
//!   (endogenous?, variable-bitset) pairs, the only structure Sect. 4's
//!   analysis consults.
//! * [`linearity`] — Def. 4.3/4.4: the dual query hypergraph and the
//!   consecutive-ones linearity test.
//! * [`weaken`] — Def. 4.9 dissociation/domination and the breadth-first
//!   search for a weakly-linear certificate (Cor. 4.11).
//! * [`rewrite`] — Def. 4.6 rewriting and the descent to a canonical hard
//!   query h1*, h2*, h3* (Lemma 4.7, Theorems 4.1/4.13).
//! * [`classify`] — the dichotomy classifier (Cor. 4.14) with
//!   machine-checkable certificates on both sides.

pub mod aquery;
pub mod classify;
pub mod linearity;
pub mod rewrite;
pub mod weaken;

pub use aquery::{AAtom, AQuery};
pub use classify::{classify_why_so, Complexity, DichotomyTag};
pub use weaken::WeakenStep;
