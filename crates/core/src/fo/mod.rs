//! Theorem 3.4: computing all causes with a relational query.
//!
//! The paper's strongest causality result: for any Boolean conjunctive
//! query, the set of all causes `{C_R1, …, C_Rk}` is expressible in
//! non-recursive stratified Datalog with negation, **with only two
//! strata** — hence as a single SQL statement. The construction:
//!
//! 1. **Refinements** — each atom is resolved to its endogenous (`Rⁿ`) or
//!    exogenous (`Rˣ`) part; `q` is equivalent to the union of all
//!    refinements. Relations known to be fully endogenous/exogenous prune
//!    the enumeration (this is what makes Example 3.5's program small).
//! 2. **Images** — for every refinement, close under unifying two
//!    n-variables and substituting an n-variable by a query constant,
//!    minimizing (taking the core of) each result. Images describe every
//!    "shape" a smaller witnessing conjunct can take.
//! 3. **n-Embeddings** — a map from a *strict subset* of a refinement's
//!    n-atoms *onto* all n-atoms of an image, matching relation symbols
//!    positionwise. An embedding is a first-order witness that a
//!    valuation's conjunct is redundant (a strictly smaller conjunct
//!    exists), i.e. that Theorem 3.2 removes it.
//! 4. For each refinement `r` and each n-atom `g ∈ r` over relation `R`:
//!    `C_R(x̄_g) :- atoms(r), ⋀_{e: r→s} ¬I_{s,e}(…)`, with one stratum-0
//!    rule `I_{s,e}(…) :- atoms(s)` per embedding target.
//!
//! **Known caveat (self-joins).** With self-joins, two atoms of one
//! valuation can ground to the *same* tuple; an embedding then witnesses
//! `c_s ⊆ c_r` but not strictness `c_s ⊊ c_r`, and the paper's program
//! (Example 3.6) can block a genuine cause — e.g. on
//! `R = {(a3,a3)}, S = {a3}` the program derives no cause although
//! `S(a3)` is counterfactual. We reproduce the construction faithfully
//! and document the divergence (see `self_join_known_divergence`); for
//! self-join-free queries the program provably agrees with Theorem 3.2,
//! which the tests check exhaustively on randomized instances.

use crate::error::CoreError;
use causality_datalog::ast::{DTerm, Literal, Program, Rule};
use causality_datalog::eval::evaluate_program;
use causality_engine::query::homomorphism::{is_isomorphic, query_core};
use causality_engine::{Atom, ConjunctiveQuery, Database, Nature, Term, Tuple, VarId};
use std::collections::BTreeMap;

/// How a relation participates in the endogenous/exogenous partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelationNature {
    /// All tuples endogenous (`Rⁿ = R`).
    Endo,
    /// All tuples exogenous (`Rˣ = R`).
    Exo,
    /// Both parts may be non-empty.
    Mixed,
}

/// Derive each query relation's nature from the database's per-tuple
/// flags (empty relations count as whichever side is vacuous — `Exo`).
pub fn natures_from_db(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<BTreeMap<String, RelationNature>, CoreError> {
    let mut out = BTreeMap::new();
    for atom in q.atoms() {
        let rel = db.require_relation(&atom.relation)?;
        let relation = db.relation(rel);
        let endo = relation.endogenous_count();
        let nature = if endo == 0 {
            RelationNature::Exo
        } else if endo == relation.len() {
            RelationNature::Endo
        } else {
            RelationNature::Mixed
        };
        out.insert(atom.relation.clone(), nature);
    }
    Ok(out)
}

/// The generated cause program.
#[derive(Clone, Debug)]
pub struct CausalProgram {
    /// The two-strata Datalog program.
    pub program: Program,
    /// Cause predicate per relation name (`R → C_R`). Relations with no
    /// endogenous atoms have no entry.
    pub cause_predicates: BTreeMap<String, String>,
    /// Number of refinements enumerated.
    pub refinement_count: usize,
    /// Number of distinct image queries.
    pub image_count: usize,
    /// Number of embeddings (negated literals across all rules).
    pub embedding_count: usize,
}

/// Corollary 3.7's syntactic condition: every relation fully endogenous
/// or exogenous, and endogenous relations occur at most once. Under it,
/// each `C_R` is a single conjunctive query (the generated program has no
/// negation).
pub fn is_conjunctive_case(
    q: &ConjunctiveQuery,
    natures: &BTreeMap<String, RelationNature>,
) -> bool {
    if natures.values().any(|n| *n == RelationNature::Mixed) {
        return false;
    }
    for atom in q.atoms() {
        if natures.get(&atom.relation) == Some(&RelationNature::Endo) {
            let occurrences = q
                .atoms()
                .iter()
                .filter(|a| a.relation == atom.relation)
                .count();
            if occurrences > 1 {
                return false;
            }
        }
    }
    true
}

/// Budget on the image closure, far above anything a real query needs.
const IMAGE_BUDGET: usize = 512;

/// Generate the Theorem 3.4 program for a Boolean query.
pub fn causal_program(
    q: &ConjunctiveQuery,
    natures: &BTreeMap<String, RelationNature>,
) -> Result<CausalProgram, CoreError> {
    if !q.is_boolean() {
        return Err(CoreError::Engine(
            causality_engine::EngineError::NotBoolean(q.to_string()),
        ));
    }
    // 1. Refinements.
    let refinements = enumerate_refinements(q, natures);

    // 2. Images (global, deduplicated up to isomorphism).
    let mut images: Vec<ConjunctiveQuery> = Vec::new();
    for r in &refinements {
        for img in image_closure(r)? {
            if !images.iter().any(|known| is_isomorphic(known, &img)) {
                images.push(img);
            }
        }
        if images.len() > IMAGE_BUDGET {
            return Err(CoreError::BudgetExceeded {
                search: "image enumeration",
            });
        }
    }

    // 3 & 4. Rules.
    let mut rules: Vec<Rule> = Vec::new();
    let mut i_predicates: BTreeMap<(usize, Vec<DTerm>), String> = BTreeMap::new();
    let mut cause_predicates: BTreeMap<String, String> = BTreeMap::new();
    let mut embedding_count = 0usize;

    for r in &refinements {
        let n_atoms: Vec<usize> = (0..r.atoms().len())
            .filter(|&i| r.atoms()[i].nature == Nature::Endo)
            .collect();
        if n_atoms.is_empty() {
            continue; // no C rules from all-exogenous refinements
        }
        // Collect the negated literals shared by all of r's C rules.
        let mut negations: Vec<Literal> = Vec::new();
        for (s_idx, s) in images.iter().enumerate() {
            for emb in embeddings(r, s) {
                let slots = embedding_slots(r, s, &emb);
                // Split slots into the I-head (s side) and the literal
                // arguments (r side).
                let s_side: Vec<DTerm> = slots.iter().map(|(_, s_t)| s_t.clone()).collect();
                let r_side: Vec<DTerm> = slots.iter().map(|(r_t, _)| r_t.clone()).collect();
                let name = match i_predicates.get(&(s_idx, s_side.clone())) {
                    Some(name) => name.clone(),
                    None => {
                        let name = format!("I{}", i_predicates.len());
                        i_predicates.insert((s_idx, s_side.clone()), name.clone());
                        rules.push(Rule::new(
                            name.clone(),
                            s_side.clone(),
                            atoms_to_literals(s),
                        ));
                        name
                    }
                };
                negations.push(Literal::neg(name, Nature::Any, r_side));
                embedding_count += 1;
            }
        }
        negations.sort_by(|a, b| (&a.predicate, &a.terms).cmp(&(&b.predicate, &b.terms)));
        negations.dedup();

        for &j in &n_atoms {
            let atom = &r.atoms()[j];
            let cause_pred = cause_predicates
                .entry(atom.relation.clone())
                .or_insert_with(|| format!("C_{}", atom.relation))
                .clone();
            let head_terms: Vec<DTerm> = atom.terms.iter().map(|t| term_to_dterm(r, t)).collect();
            let mut body = atoms_to_literals(r);
            body.extend(negations.iter().cloned());
            rules.push(Rule::new(cause_pred, head_terms, body));
        }
    }

    Ok(CausalProgram {
        program: Program::new(rules),
        cause_predicates,
        refinement_count: refinements.len(),
        image_count: images.len(),
        embedding_count,
    })
}

/// Run the generated program over a database (natures derived from the
/// partition) and return the causes per relation, as tuples.
pub fn run_causal_program(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<BTreeMap<String, Vec<Tuple>>, CoreError> {
    let natures = natures_from_db(db, q)?;
    let generated = causal_program(q, &natures)?;
    let result = evaluate_program(db, &generated.program)?;
    let mut out = BTreeMap::new();
    for (rel, pred) in &generated.cause_predicates {
        out.insert(rel.clone(), result.tuples(pred).to_vec());
    }
    Ok(out)
}

fn enumerate_refinements(
    q: &ConjunctiveQuery,
    natures: &BTreeMap<String, RelationNature>,
) -> Vec<ConjunctiveQuery> {
    let choices: Vec<Vec<Nature>> = q
        .atoms()
        .iter()
        .map(|a| {
            match natures
                .get(&a.relation)
                .copied()
                .unwrap_or(RelationNature::Mixed)
            {
                RelationNature::Endo => vec![Nature::Endo],
                RelationNature::Exo => vec![Nature::Exo],
                RelationNature::Mixed => vec![Nature::Endo, Nature::Exo],
            }
        })
        .collect();
    let mut out = Vec::new();
    let mut current = vec![0usize; choices.len()];
    loop {
        let mut refinement = q.clone();
        for (i, &c) in current.iter().enumerate() {
            refinement.atom_mut(i).nature = choices[i][c];
        }
        out.push(refinement);
        // Odometer.
        let mut i = 0;
        loop {
            if i == current.len() {
                return out;
            }
            current[i] += 1;
            if current[i] < choices[i].len() {
                break;
            }
            current[i] = 0;
            i += 1;
        }
    }
}

/// n-variables of a refinement: variables occurring in some endogenous atom.
fn n_vars(r: &ConjunctiveQuery) -> Vec<VarId> {
    let mut vars: Vec<VarId> = r
        .atoms()
        .iter()
        .filter(|a| a.nature == Nature::Endo)
        .flat_map(|a| a.vars())
        .collect();
    vars.sort();
    vars.dedup();
    vars
}

/// Close a refinement under n-variable unification and n-variable →
/// constant substitution, minimizing each result (the paper's images).
fn image_closure(r: &ConjunctiveQuery) -> Result<Vec<ConjunctiveQuery>, CoreError> {
    let constants: Vec<causality_engine::Value> = r.constants().into_iter().collect();
    let mut images = vec![query_core(r)];
    let mut frontier = vec![r.clone()];
    while let Some(current) = frontier.pop() {
        let nv = n_vars(&current);
        let mut successors: Vec<ConjunctiveQuery> = Vec::new();
        for (i, &x) in nv.iter().enumerate() {
            for &y in nv.iter().skip(i + 1) {
                let mut next = current.clone();
                next.substitute_var(y, &Term::Var(x));
                successors.push(next);
            }
            for c in &constants {
                let mut next = current.clone();
                next.substitute_var(x, &Term::Const(c.clone()));
                successors.push(next);
            }
        }
        for next in successors {
            let minimized = query_core(&next);
            if !images.iter().any(|known| is_isomorphic(known, &minimized)) {
                images.push(minimized);
                frontier.push(next);
            }
            if images.len() > IMAGE_BUDGET {
                return Err(CoreError::BudgetExceeded {
                    search: "image closure",
                });
            }
        }
    }
    Ok(images)
}

/// Enumerate n-embeddings: maps from a strict subset of `r`'s n-atoms
/// onto all n-atoms of `s`, matching relation symbols, arities, and
/// constant positions. Returned as `(r_atom, s_atom)` pair lists sorted
/// by `r_atom`.
fn embeddings(r: &ConjunctiveQuery, s: &ConjunctiveQuery) -> Vec<Vec<(usize, usize)>> {
    let r_n: Vec<usize> = (0..r.atoms().len())
        .filter(|&i| r.atoms()[i].nature == Nature::Endo)
        .collect();
    let s_n: Vec<usize> = (0..s.atoms().len())
        .filter(|&i| s.atoms()[i].nature == Nature::Endo)
        .collect();
    // A strict subset of r's n-atoms must map ONTO all of s's n-atoms, so
    // |A| ≥ |s_n| is required and |A| ≤ |r_n| − 1.
    if s_n.len() + 1 > r_n.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    // For each r n-atom choose: None (not in A) or an s n-atom.
    let mut assignment: Vec<Option<usize>> = vec![None; r_n.len()];
    enumerate_assignments(r, s, &r_n, &s_n, 0, &mut assignment, &mut out);
    out
}

fn enumerate_assignments(
    r: &ConjunctiveQuery,
    s: &ConjunctiveQuery,
    r_n: &[usize],
    s_n: &[usize],
    pos: usize,
    assignment: &mut Vec<Option<usize>>,
    out: &mut Vec<Vec<(usize, usize)>>,
) {
    if pos == r_n.len() {
        let mapped: Vec<(usize, usize)> = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|s_atom| (r_n[i], s_atom)))
            .collect();
        // Strict subset…
        if mapped.len() == r_n.len() {
            return;
        }
        // …onto all n-atoms of s.
        let covered: std::collections::BTreeSet<usize> =
            mapped.iter().map(|&(_, s_atom)| s_atom).collect();
        if covered.len() == s_n.len() && !mapped.is_empty() || (s_n.is_empty() && mapped.is_empty())
        {
            out.push(mapped);
        }
        return;
    }
    // Option: leave this atom out of A.
    assignment[pos] = None;
    enumerate_assignments(r, s, r_n, s_n, pos + 1, assignment, out);
    // Option: map it to a compatible s n-atom.
    let r_atom = &r.atoms()[r_n[pos]];
    for &s_atom_idx in s_n {
        let s_atom = &s.atoms()[s_atom_idx];
        if compatible(r_atom, s_atom) {
            assignment[pos] = Some(s_atom_idx);
            enumerate_assignments(r, s, r_n, s_n, pos + 1, assignment, out);
        }
    }
    assignment[pos] = None;
}

/// Can the r-atom map onto the s-atom? Same relation, arity and nature;
/// constants must agree exactly (a constant never maps to a variable —
/// its image tuple position is fixed).
fn compatible(r_atom: &Atom, s_atom: &Atom) -> bool {
    if r_atom.relation != s_atom.relation
        || r_atom.arity() != s_atom.arity()
        || s_atom.nature != Nature::Endo
    {
        return false;
    }
    r_atom
        .terms
        .iter()
        .zip(s_atom.terms.iter())
        .all(|(rt, st)| match (rt, st) {
            (Term::Const(c), Term::Const(d)) => c == d,
            (Term::Const(_), Term::Var(_)) => true, // join checks equality
            _ => true,
        })
}

/// The join slots of an embedding: for every mapped atom pair and
/// position, the `(r-term, s-term)` pair. Trivially satisfied
/// const/const slots are dropped; duplicates are merged.
fn embedding_slots(
    r: &ConjunctiveQuery,
    s: &ConjunctiveQuery,
    mapped: &[(usize, usize)],
) -> Vec<(DTerm, DTerm)> {
    let mut slots: Vec<(DTerm, DTerm)> = Vec::new();
    for &(ri, si) in mapped {
        let r_atom = &r.atoms()[ri];
        let s_atom = &s.atoms()[si];
        for (rt, st) in r_atom.terms.iter().zip(s_atom.terms.iter()) {
            if let (Term::Const(c), Term::Const(d)) = (rt, st) {
                debug_assert_eq!(c, d, "compatible() checked constants");
                continue;
            }
            let slot = (term_to_dterm(r, rt), term_to_dterm(s, st));
            if !slots.contains(&slot) {
                slots.push(slot);
            }
        }
    }
    slots
}

fn term_to_dterm(q: &ConjunctiveQuery, t: &Term) -> DTerm {
    match t {
        Term::Var(v) => DTerm::var(q.var_name(*v)),
        Term::Const(c) => DTerm::Const(c.clone()),
    }
}

fn atoms_to_literals(q: &ConjunctiveQuery) -> Vec<Literal> {
    q.atoms()
        .iter()
        .map(|a| {
            Literal::pos(
                a.relation.clone(),
                a.nature,
                a.terms.iter().map(|t| term_to_dterm(q, t)).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::why_so_causes;
    use causality_engine::{tup, Schema, TupleRef};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// Compare program output against Theorem 3.2 causes on a database.
    fn assert_program_matches_lineage(db: &Database, query: &ConjunctiveQuery) {
        let program_causes = run_causal_program(db, query).unwrap();
        let lineage_causes = why_so_causes(db, query).unwrap();
        // Collect lineage causes per relation name as tuples.
        let mut expected: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        for t in &lineage_causes.actual {
            let rel_name = db.relation(t.rel).name().to_string();
            expected
                .entry(rel_name)
                .or_default()
                .push(db.tuple(*t).clone());
        }
        for v in expected.values_mut() {
            v.sort();
            v.dedup();
        }
        for (rel, tuples) in &program_causes {
            let want = expected.get(rel).cloned().unwrap_or_default();
            assert_eq!(tuples, &want, "relation {rel} on query {query}");
        }
        // Relations absent from program output must have no causes.
        for (rel, want) in &expected {
            assert!(
                program_causes.contains_key(rel) || want.is_empty(),
                "missing cause predicate for {rel}"
            );
        }
    }

    /// Example 3.5: q :- R(x,y), S(y) with R mixed and S fully endogenous.
    #[test]
    fn example_3_5_program_structure() {
        let query = q("q :- R(x, y), S(y)");
        let mut natures = BTreeMap::new();
        natures.insert("R".to_string(), RelationNature::Mixed);
        natures.insert("S".to_string(), RelationNature::Endo);
        let gen = causal_program(&query, &natures).unwrap();
        // Two refinements (Rn/Rx), C_R and C_S predicates.
        assert_eq!(gen.refinement_count, 2);
        assert!(gen.cause_predicates.contains_key("R"));
        assert!(gen.cause_predicates.contains_key("S"));
        assert!(
            gen.embedding_count >= 1,
            "Rn,Sn embeds onto the Rx,Sn image"
        );
        let text = gen.program.to_string();
        assert!(text.contains("¬I"), "negation is necessary (Example 3.5)");
    }

    /// Example 3.5's instance: program yields CR = ∅, CS = {a3}.
    #[test]
    fn example_3_5_program_output() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup!["a4", "a3"]);
        db.insert_endo(r, tup!["a3", "a3"]);
        db.insert_endo(s, tup!["a3"]);
        let query = q("q :- R(x, y), S(y)");
        let causes = run_causal_program(&db, &query).unwrap();
        assert!(causes["R"].is_empty(), "R(a3,a3) is not a cause");
        assert_eq!(causes["S"], vec![tup!["a3"]]);
        assert_program_matches_lineage(&db, &query);
    }

    /// Corollary 3.7: fully partitioned relations without repeated
    /// endogenous relations yield a negation-free program.
    #[test]
    fn corollary_3_7_conjunctive_program() {
        let query = q("q :- R(x, y), S(y)");
        let mut natures = BTreeMap::new();
        natures.insert("R".to_string(), RelationNature::Endo);
        natures.insert("S".to_string(), RelationNature::Endo);
        assert!(is_conjunctive_case(&query, &natures));
        let gen = causal_program(&query, &natures).unwrap();
        assert_eq!(gen.refinement_count, 1);
        assert_eq!(gen.embedding_count, 0);
        assert!(!gen.program.to_string().contains('¬'));
    }

    #[test]
    fn corollary_3_7_negative_cases() {
        let query = q("q :- R(x, y), S(y)");
        let mut natures = BTreeMap::new();
        natures.insert("R".to_string(), RelationNature::Mixed);
        natures.insert("S".to_string(), RelationNature::Endo);
        assert!(!is_conjunctive_case(&query, &natures));

        let sj = q("q :- S(x), R(x, y), S(y)");
        let mut natures = BTreeMap::new();
        natures.insert("R".to_string(), RelationNature::Exo);
        natures.insert("S".to_string(), RelationNature::Endo);
        assert!(!is_conjunctive_case(&sj, &natures), "S occurs twice");
    }

    /// Example 3.6's program shape: self-join S(x), R(x,y), S(y) with S
    /// endogenous, R exogenous — the image Sn(x),Rx(x,x) produces the
    /// I(x) :- Sn(x), Rx(x,x) rule and ¬I(x), ¬I(y) literals.
    #[test]
    fn example_3_6_program_structure() {
        let query = q("q :- S(x), R(x, y), S(y)");
        let mut natures = BTreeMap::new();
        natures.insert("R".to_string(), RelationNature::Exo);
        natures.insert("S".to_string(), RelationNature::Endo);
        let gen = causal_program(&query, &natures).unwrap();
        assert_eq!(gen.refinement_count, 1);
        assert!(gen.image_count >= 2, "the unified image exists");
        assert!(gen.embedding_count >= 2, "¬I(x) and ¬I(y)");
        let text = gen.program.to_string();
        assert!(text.contains("C_S"));
        assert!(text.contains('¬'));
    }

    /// Example 3.6's instance: S(a4) is not a cause; removing R(a3,a3)
    /// makes it one (non-monotonicity of the causality query).
    #[test]
    fn example_3_6_non_monotonicity() {
        let query = q("q :- S(x), R(x, y), S(y)");
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["x"]));
        db.insert_exo(r, tup!["a4", "a3"]);
        db.insert_exo(r, tup!["a3", "a3"]);
        db.insert_endo(s, tup!["a3"]);
        db.insert_endo(s, tup!["a4"]);
        let causes = run_causal_program(&db, &query).unwrap();
        assert!(!causes["S"].contains(&tup!["a4"]), "S(a4) is not a cause");

        // Without R(a3,a3), S(a4) becomes a cause.
        let mut db2 = Database::new();
        let r2 = db2.add_relation(Schema::new("R", &["x", "y"]));
        let s2 = db2.add_relation(Schema::new("S", &["x"]));
        db2.insert_exo(r2, tup!["a4", "a3"]);
        db2.insert_endo(s2, tup!["a3"]);
        db2.insert_endo(s2, tup!["a4"]);
        let causes2 = run_causal_program(&db2, &query).unwrap();
        assert!(causes2["S"].contains(&tup!["a4"]));
        assert!(causes2["S"].contains(&tup!["a3"]));
    }

    /// The documented self-join divergence: on R = {(a3,a3)}, S = {a3}
    /// the paper's program blocks the genuine counterfactual cause S(a3)
    /// because the embedding witnesses a non-strict inclusion.
    #[test]
    fn self_join_known_divergence() {
        let query = q("q :- S(x), R(x, y), S(y)");
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["x"]));
        db.insert_exo(r, tup!["a3", "a3"]);
        db.insert_endo(s, tup!["a3"]);
        let program_causes = run_causal_program(&db, &query).unwrap();
        let lineage_causes = why_so_causes(&db, &query).unwrap();
        // Theorem 3.2 (ground truth): S(a3) is a counterfactual cause.
        assert_eq!(lineage_causes.actual.len(), 1);
        // The generated program misses it — the known construction gap.
        assert!(
            program_causes["S"].is_empty(),
            "if this starts passing, the paper-level gap has been fixed; update docs"
        );
    }

    /// Randomized cross-validation on self-join-free queries with mixed
    /// natures: the program must agree with Theorem 3.2 exactly.
    #[test]
    fn randomized_agreement_no_self_joins() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..25 {
            let mut db = Database::new();
            let r = db.add_relation(Schema::new("R", &["x", "y"]));
            let s = db.add_relation(Schema::new("S", &["y", "z"]));
            for _ in 0..(3 + next() % 5) {
                let t = tup![(next() % 3) as i64, (next() % 3) as i64];
                db.insert(r, t, next() % 2 == 0);
            }
            for _ in 0..(3 + next() % 5) {
                let t = tup![(next() % 3) as i64, (next() % 3) as i64];
                db.insert(s, t, next() % 2 == 0);
            }
            let query = q("q :- R(x, y), S(y, z)");
            assert_program_matches_lineage(&db, &query);
            let _ = round;
        }
    }

    /// Unary self-join-free query with constants.
    #[test]
    fn constants_in_query() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_endo(r, tup!["a3", "a3"]);
        db.insert_exo(r, tup!["a4", "a3"]);
        db.insert_endo(s, tup!["a3"]);
        let query = q("q :- R(x, 'a3'), S('a3')");
        assert_program_matches_lineage(&db, &query);
    }

    #[test]
    fn three_atom_chain_mixed() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_exo(r, tup![9, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_exo(s, tup![2, 4]);
        db.insert_endo(t, tup![3]);
        db.insert_endo(t, tup![4]);
        let query = q("q :- R(x, y), S(y, z), T(z)");
        assert_program_matches_lineage(&db, &query);
    }

    #[test]
    fn non_boolean_rejected() {
        let query = q("q(x) :- R(x, y)");
        let natures = BTreeMap::new();
        assert!(causal_program(&query, &natures).is_err());
    }

    /// TupleRef-level agreement: causes found by the program are exactly
    /// the endogenous tuples of Theorem 3.2.
    #[test]
    fn tuple_identity_roundtrip() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        let query = q("q :- R(x, y), S(y)");
        let causes = run_causal_program(&db, &query).unwrap();
        let expect_r: Vec<Tuple> = vec![tup![1, 2]];
        assert_eq!(causes["R"], expect_r);
        let lineage = why_so_causes(&db, &query).unwrap();
        assert!(lineage.actual.contains(&TupleRef {
            rel: r,
            row: causality_engine::RowId(0)
        }));
    }
}
