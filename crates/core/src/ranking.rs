//! Ranking causes by responsibility (the Fig. 2b table).
//!
//! "In applications involving large datasets, it is critical to rank the
//! candidate causes by their responsibility" (Sect. 1). This module
//! combines the cause computation (Theorem 3.2) with per-cause
//! responsibility (Algorithm 1 or the exact solver) and sorts descending —
//! counterfactual causes (ρ = 1) first.

pub mod parallel;

use crate::causes::causes_from_minimized_whyso;
use crate::error::CoreError;
use crate::resp::exact::responsibility_from_bits;
use crate::resp::{self, Responsibility};
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};
use causality_lineage::{n_lineage_cached, non_answer_lineage_cached, LineageArena};

pub use parallel::{rank_why_so_parallel, RankConfig, RankStats, RankedTopK};

use std::time::Instant;

/// Per-ranking cost attributes surfaced to the observability layer:
/// how big the minimized lineage was and where the time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankMeta {
    /// Conjunct count of the minimized lineage (`Φ^n` for Why-So, the
    /// non-answer lineage for Why-No).
    pub lineage_conjuncts: usize,
    /// µs spent computing, interning, and minimizing the lineage.
    pub lineage_us: u64,
    /// µs spent in the per-cause responsibility solves (incl. ranking).
    pub solve_us: u64,
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Which responsibility algorithm to use while ranking.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Method {
    /// Algorithm 1 when the query qualifies, exact otherwise.
    #[default]
    Auto,
    /// Always the exact branch-and-bound solver.
    Exact,
    /// Always Algorithm 1 (errors on non-weakly-linear queries).
    Flow,
}

/// A cause with its responsibility.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedCause {
    /// The causing tuple.
    pub tuple: TupleRef,
    /// Its responsibility (with a witnessing minimum contingency).
    pub responsibility: Responsibility,
}

/// Rank the Why-So causes of a Boolean query by responsibility,
/// descending (ties broken by tuple identity for determinism).
pub fn rank_why_so(
    db: &Database,
    q: &ConjunctiveQuery,
    method: Method,
) -> Result<Vec<RankedCause>, CoreError> {
    rank_why_so_cached(db, q, method, None)
}

/// [`rank_why_so`] with an optional [`SharedIndexCache`]: the join indexes
/// built for the cause computation are reused by every per-cause
/// responsibility run, and by later rankings for as long as the query's
/// relations keep their content stamps (writes to other relations do not
/// invalidate them).
///
/// The n-lineage is computed, interned, and minimized **once** in arena
/// form; the candidate screen (Theorem 3.2) and every exact per-cause
/// solve read that one `BitDnf` instead of re-deriving the lineage per
/// cause. The flow method still evaluates per cause (Algorithm 1 reads
/// the database, not the lineage).
pub fn rank_why_so_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    method: Method,
    cache: Option<&SharedIndexCache>,
) -> Result<Vec<RankedCause>, CoreError> {
    rank_why_so_metered(db, q, method, cache).map(|(ranked, _)| ranked)
}

/// [`rank_why_so_cached`] that also reports lineage size and stage
/// timings ([`RankMeta`]) for tracing and the slow-log.
pub fn rank_why_so_metered(
    db: &Database,
    q: &ConjunctiveQuery,
    method: Method,
    cache: Option<&SharedIndexCache>,
) -> Result<(Vec<RankedCause>, RankMeta), CoreError> {
    let lineage_started = Instant::now();
    let phi = n_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    let causes = causes_from_minimized_whyso(&arena, &phin);
    let lineage_us = elapsed_us(lineage_started);
    let solve_started = Instant::now();
    let mut ranked = Vec::with_capacity(causes.actual.len());
    for &t in &causes.actual {
        let responsibility = match method {
            Method::Auto => match resp::flow::why_so_responsibility_flow_cached(db, q, t, cache) {
                Ok(r) => r,
                Err(e) if resp::flow_inapplicable(&e) => responsibility_from_bits(&arena, &phin, t),
                Err(e) => return Err(e),
            },
            Method::Exact => responsibility_from_bits(&arena, &phin, t),
            Method::Flow => resp::flow::why_so_responsibility_flow_cached(db, q, t, cache)?,
        };
        ranked.push(RankedCause {
            tuple: t,
            responsibility,
        });
    }
    sort_ranked(&mut ranked);
    let meta = RankMeta {
        lineage_conjuncts: phin.conjuncts().len(),
        lineage_us,
        solve_us: elapsed_us(solve_started),
    };
    Ok((ranked, meta))
}

/// Rank the Why-No causes of a Boolean non-answer (always PTIME,
/// Theorem 4.17).
pub fn rank_why_no(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<RankedCause>, CoreError> {
    rank_why_no_cached(db, q, None)
}

/// [`rank_why_no`] with an optional [`SharedIndexCache`]. One non-answer
/// lineage is interned and minimized in arena form; every candidate's
/// Theorem 4.17 responsibility (cheapest conjunct containing it) is read
/// off that shared `BitDnf` — the seed recomputed the whole lineage per
/// candidate.
pub fn rank_why_no_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<Vec<RankedCause>, CoreError> {
    rank_why_no_metered(db, q, cache).map(|(ranked, _)| ranked)
}

/// [`rank_why_no_cached`] that also reports lineage size and stage
/// timings ([`RankMeta`]) for tracing and the slow-log.
pub fn rank_why_no_metered(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: Option<&SharedIndexCache>,
) -> Result<(Vec<RankedCause>, RankMeta), CoreError> {
    let lineage_started = Instant::now();
    let phi = non_answer_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    let lineage_us = elapsed_us(lineage_started);
    let mut meta = RankMeta {
        lineage_conjuncts: phin.conjuncts().len(),
        lineage_us,
        solve_us: 0,
    };
    if phin.is_tautology() {
        // Already an answer on Dx: no Why-No causes to rank.
        return Ok((Vec::new(), meta));
    }
    let solve_started = Instant::now();
    let mut ranked = Vec::new();
    for t in arena.tuples_of(&phin.variables()) {
        let responsibility = resp::whyno::why_no_responsibility_from_bits(&arena, &phin, t);
        ranked.push(RankedCause {
            tuple: t,
            responsibility,
        });
    }
    sort_ranked(&mut ranked);
    meta.solve_us = elapsed_us(solve_started);
    Ok((ranked, meta))
}

/// Descending by ρ, ties broken by tuple identity. `f64::total_cmp`
/// makes the comparator total by construction: ranking can never panic,
/// even if a responsibility algorithm ever produced a NaN (a NaN would
/// sort first under the IEEE 754 total order rather than abort serving).
fn sort_ranked(ranked: &mut [RankedCause]) {
    ranked.sort_by(|a, b| {
        b.responsibility
            .rho
            .total_cmp(&a.responsibility.rho)
            .then_with(|| a.tuple.cmp(&b.tuple))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn ranking_orders_by_responsibility() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let ranked = rank_why_so(&db, &query, Method::Auto).unwrap();
        assert_eq!(ranked.len(), 4, "R(a4,a3), R(a4,a2), S(a3), S(a2)");
        // All have ρ = 1/2 here (each needs one removal).
        for rc in &ranked {
            assert!((rc.responsibility.rho - 0.5).abs() < 1e-12);
        }
        // Descending and deterministic.
        for w in ranked.windows(2) {
            assert!(w[0].responsibility.rho >= w[1].responsibility.rho);
        }
    }

    #[test]
    fn counterfactual_ranks_first() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a3")]);
        let ranked = rank_why_so(&db, &query, Method::Auto).unwrap();
        assert_eq!(ranked[0].responsibility.rho, 1.0);
        assert!(ranked[0].responsibility.is_counterfactual());
    }

    #[test]
    fn methods_agree_on_linear_queries() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let auto = rank_why_so(&db, &query, Method::Auto).unwrap();
        let exact = rank_why_so(&db, &query, Method::Exact).unwrap();
        let flow = rank_why_so(&db, &query, Method::Flow).unwrap();
        let rhos = |v: &[RankedCause]| {
            v.iter()
                .map(|rc| (rc.tuple, rc.responsibility.rho))
                .collect::<Vec<_>>()
        };
        assert_eq!(rhos(&auto), rhos(&exact));
        assert_eq!(rhos(&auto), rhos(&flow));
    }

    #[test]
    fn auto_falls_back_to_exact_on_hard_queries() {
        // Triangle h2*: flow must refuse, auto must succeed via exact.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t = db.add_relation(Schema::new("T", &["z", "x"]));
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(t, tup![3, 1]);
        let query = q("h2 :- R(x, y), S(y, z), T(z, x)");
        assert!(rank_why_so(&db, &query, Method::Flow).is_err());
        let ranked = rank_why_so(&db, &query, Method::Auto).unwrap();
        assert_eq!(ranked.len(), 3);
        assert!(ranked.iter().all(|rc| rc.responsibility.rho == 1.0));
    }

    #[test]
    fn why_no_ranking() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);
        db.insert_endo(r, tup![5, 3]);
        db.insert_endo(s, tup![3]);
        let ranked = rank_why_no(&db, &q("q :- R(x, y), S(y)")).unwrap();
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].tuple, s2, "single-insertion repair first");
        assert_eq!(ranked[0].responsibility.rho, 1.0);
        assert!((ranked[1].responsibility.rho - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ranking_for_false_query() {
        let db = example_2_2();
        let ranked = rank_why_so(&db, &q("q :- R(x, 'a6'), S('a6')"), Method::Auto).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn sort_is_total_even_with_nan() {
        // rho is never NaN in practice; the comparator must still be
        // total so a hypothetical NaN ranks (first, per the IEEE 754
        // total order) instead of panicking mid-serve.
        let rc = |row: u32, rho: f64| RankedCause {
            tuple: TupleRef::new(0, row),
            responsibility: Responsibility {
                rho,
                min_contingency: Some(vec![]),
            },
        };
        let mut ranked = vec![rc(0, 0.5), rc(1, f64::NAN), rc(2, 1.0), rc(3, 0.5)];
        sort_ranked(&mut ranked);
        assert!(ranked[0].responsibility.rho.is_nan());
        assert_eq!(ranked[1].responsibility.rho, 1.0);
        // Equal ρ ties break by tuple identity.
        assert_eq!(ranked[2].tuple, TupleRef::new(0, 0));
        assert_eq!(ranked[3].tuple, TupleRef::new(0, 3));
    }
}
