//! Responsibility (Def. 2.3): `ρ_t = 1 / (1 + min_Γ |Γ|)`.
//!
//! * [`exact`] — exact minimum contingency by branch-and-bound over the
//!   n-lineage, running entirely on interned bitsets
//!   ([`causality_lineage::arena`]). Works for *every* conjunctive query
//!   (self-joins, mixed relations); worst-case exponential, as it must
//!   be for the NP-hard side of the dichotomy.
//! * [`flow`] — Algorithm 1: PTIME responsibility for weakly linear
//!   queries via repeated max-flow/min-cut (Example 4.2, Theorem 4.5).
//! * [`whyno`] — Theorem 4.17: Why-No responsibility in PTIME (contingency
//!   sets are bounded by the number of subgoals).
//! * [`approx`] — anytime certified `[lower, upper]` bounds on ρ for the
//!   NP-hard side: greedy hitting set with the ln(n)+1 guarantee plus a
//!   budgeted iterative-deepening refinement.
//!
//! [`why_so_responsibility`] picks the right algorithm automatically:
//! flow when the query (with natures derived from the database partition)
//! is self-join-free and weakly linear, exact otherwise.

pub mod approx;
pub mod exact;
pub mod flow;
pub mod whyno;

use crate::error::CoreError;
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};

/// The responsibility of one tuple for a (non-)answer.
#[derive(Clone, Debug, PartialEq)]
pub struct Responsibility {
    /// `ρ_t ∈ [0, 1]`; `0` means "not a cause", `1` "counterfactual".
    pub rho: f64,
    /// A minimum contingency set witnessing `ρ` (empty for counterfactual
    /// causes, `None` when the tuple is not a cause).
    pub min_contingency: Option<Vec<TupleRef>>,
}

impl Responsibility {
    /// The "not a cause" value (`ρ = 0` by the paper's convention).
    pub fn not_a_cause() -> Self {
        Responsibility {
            rho: 0.0,
            min_contingency: None,
        }
    }

    /// Build from a witnessed minimum contingency.
    pub fn from_contingency(gamma: Vec<TupleRef>) -> Self {
        Responsibility {
            rho: 1.0 / (1.0 + gamma.len() as f64),
            min_contingency: Some(gamma),
        }
    }

    /// Whether the tuple is a cause at all.
    pub fn is_cause(&self) -> bool {
        self.min_contingency.is_some()
    }

    /// Whether the tuple is a counterfactual cause (`ρ = 1`).
    pub fn is_counterfactual(&self) -> bool {
        self.min_contingency.as_ref().is_some_and(Vec::is_empty)
    }
}

/// Compute Why-So responsibility with automatic algorithm selection:
/// Algorithm 1 (max-flow) when applicable, exact branch-and-bound
/// otherwise.
pub fn why_so_responsibility(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    why_so_responsibility_cached(db, q, t, None)
}

/// [`why_so_responsibility`] with an optional [`SharedIndexCache`] so
/// repeated computations reuse their join indexes while the query's
/// relations keep their content stamps.
pub fn why_so_responsibility_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    cache: Option<&SharedIndexCache>,
) -> Result<Responsibility, CoreError> {
    match flow::why_so_responsibility_flow_cached(db, q, t, cache) {
        Ok(r) => Ok(r),
        Err(e) if flow_inapplicable(&e) => {
            exact::why_so_responsibility_exact_cached(db, q, t, cache)
        }
        Err(e) => Err(e),
    }
}

/// Whether Algorithm 1 refused the query for a reason the automatic
/// method treats as "fall back to the exact solver" rather than a real
/// error: the query is outside the flow algorithm's dichotomy class
/// (not weakly linear, has a self-join) or its relations are not
/// uniformly marked. One predicate shared by every Auto dispatch
/// ([`why_so_responsibility_cached`], the sequential ranker, and the
/// parallel ranker), so the fallback set cannot drift between them.
pub(crate) fn flow_inapplicable(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::NotWeaklyLinear { .. }
            | CoreError::SelfJoin { .. }
            | CoreError::UnmarkedAtom { .. }
    )
}

/// Compute Why-No responsibility (always PTIME, Theorem 4.17).
pub fn why_no_responsibility(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    whyno::why_no_responsibility(db, q, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responsibility_values() {
        let none = Responsibility::not_a_cause();
        assert_eq!(none.rho, 0.0);
        assert!(!none.is_cause());
        assert!(!none.is_counterfactual());

        let counter = Responsibility::from_contingency(vec![]);
        assert_eq!(counter.rho, 1.0);
        assert!(counter.is_counterfactual());

        let gamma = vec![TupleRef::new(0, 0), TupleRef::new(0, 1)];
        let actual = Responsibility::from_contingency(gamma);
        assert!((actual.rho - 1.0 / 3.0).abs() < 1e-12);
        assert!(actual.is_cause());
        assert!(!actual.is_counterfactual());
    }
}
