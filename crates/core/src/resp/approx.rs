//! Anytime Why-So responsibility: certified `[lower, upper]` bounds on
//! ρ for the NP-hard side of the dichotomy.
//!
//! Exact responsibility reduces to a minimum hitting set over witness
//! residuals (see [`super::exact`]); for non-weakly-linear queries that
//! problem is NP-hard (Sect. 4 of the paper), so a deadline-bound
//! serving tier cannot always afford the exact branch-and-bound. This
//! module trades exactness for *certified* bounds:
//!
//! - Any **feasible** contingency of size `g` proves `ρ ≥ 1/(1+g)` —
//!   the greedy hitting set supplies one in polynomial time, so a
//!   sound lower bound exists even at budget zero.
//! - Any **lower bound** `b ≤ |Γ_min|` proves `ρ ≤ 1/(1+b)`. Two such
//!   bounds are always available without search: a greedy packing of
//!   pairwise-disjoint residual sets, and the classic set-cover
//!   guarantee `g ≤ (ln n + 1)·|Γ_min|` (so `|Γ_min| ≥ ⌈g/(ln n+1)⌉`),
//!   where `n` counts the residual sets of the witness.
//!
//! Whether `t` is a cause *at all* is decided exactly — membership in
//! the minimized lineage and witness feasibility are polynomial checks
//! — so `[0, 0]` ("not a cause") and `[1, 1]` ("counterfactual") are
//! never approximate.
//!
//! The anytime refinement then runs **iterative deepening** on the
//! decision problem "is there a hitting set of size ≤ m", from the
//! certified minimum upward, under a step/deadline budget:
//!
//! - a level `m` that completes with no solution certifies
//!   `|Γ_min| ≥ m + 1`, tightening `upper`;
//! - the first level that finds a solution pins `|Γ_min| = m` exactly
//!   (all smaller sizes were already refuted) and the bounds collapse;
//! - budget exhaustion mid-level keeps the bounds from the last
//!   completed level — still sound.
//!
//! Bounds therefore tighten **monotonically**: `lower` never decreases,
//! `upper` never increases, and `lower ≤ ρ ≤ upper` holds at every
//! intermediate step (property-tested differentially against the exact
//! oracle in `tests/approx_differential.rs`).

use causality_lineage::{BitDnf, VarSet};
use std::time::Instant;

/// Certified bracket on a responsibility value: `lower ≤ ρ ≤ upper`.
///
/// Produced by [`anytime_min_contingency`]; `lower` is witnessed by a
/// feasible contingency, `upper` by a proven lower bound on the minimum
/// contingency size. `lower == upper` means ρ is known exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhoBounds {
    /// Certified lower bound on ρ (a feasible contingency exists).
    pub lower: f64,
    /// Certified upper bound on ρ (no smaller contingency can exist).
    pub upper: f64,
}

impl RhoBounds {
    /// A collapsed bracket: ρ is known exactly.
    pub fn exact(rho: f64) -> RhoBounds {
        RhoBounds {
            lower: rho,
            upper: rho,
        }
    }

    /// Bounds from contingency *sizes*: a feasible contingency of
    /// `feasible` tuples and a certified minimum size of `certified`.
    pub fn from_sizes(feasible: usize, certified: usize) -> RhoBounds {
        RhoBounds {
            lower: 1.0 / (1.0 + feasible as f64),
            upper: 1.0 / (1.0 + certified as f64),
        }
    }

    /// Whether the bracket has collapsed to a point.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Bracket width `upper - lower` (0 when exact).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `rho` lies inside the bracket.
    pub fn contains(&self, rho: f64) -> bool {
        self.lower <= rho && rho <= self.upper
    }
}

/// Work budget for the anytime refinement: a step cap (one step per
/// search node) and an optional wall-clock deadline. The greedy bounds
/// are computed regardless — only *refinement* consumes budget, so
/// [`ApproxBudget::zero`] still yields a sound bracket.
#[derive(Debug, Clone, Copy)]
pub struct ApproxBudget {
    /// Maximum number of search nodes the refinement may expand.
    pub max_steps: u64,
    /// Hard wall-clock cutoff for refinement work.
    pub deadline: Option<Instant>,
}

impl ApproxBudget {
    /// No refinement at all: greedy + packing + ln(n)+1 bounds only.
    pub fn zero() -> ApproxBudget {
        ApproxBudget {
            max_steps: 0,
            deadline: None,
        }
    }

    /// Unbounded refinement — runs until the bounds collapse (exact).
    pub fn unlimited() -> ApproxBudget {
        ApproxBudget {
            max_steps: u64::MAX,
            deadline: None,
        }
    }

    /// A pure step budget (deterministic, clock-free).
    pub fn steps(max_steps: u64) -> ApproxBudget {
        ApproxBudget {
            max_steps,
            deadline: None,
        }
    }

    /// A pure wall-clock budget: refine until `deadline`.
    pub fn until(deadline: Instant) -> ApproxBudget {
        ApproxBudget {
            max_steps: u64::MAX,
            deadline: Some(deadline),
        }
    }
}

/// Result of an anytime responsibility computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeOutcome {
    /// Certified bracket on ρ. `[0, 0]` when `v` is not a cause.
    pub bounds: RhoBounds,
    /// Best feasible contingency found (arena variable ids, in the
    /// order chosen); witnesses `bounds.lower`. `None` iff not a cause.
    pub contingency: Option<Vec<u32>>,
    /// Certified lower bound on the minimum contingency size
    /// (meaningful only when `v` is a cause).
    pub certified_min_size: usize,
    /// Completed refinement levels (each one tightened a bound).
    pub refinements: u32,
    /// Search nodes expanded by the refinement.
    pub steps_used: u64,
    /// Bracket after the greedy pass and after each refinement — the
    /// monotone-tightening trail the differential tests check.
    pub history: Vec<RhoBounds>,
}

impl AnytimeOutcome {
    /// Whether the bracket collapsed (ρ known exactly).
    pub fn is_exact(&self) -> bool {
        self.bounds.is_exact()
    }

    fn not_a_cause() -> AnytimeOutcome {
        AnytimeOutcome {
            bounds: RhoBounds::exact(0.0),
            contingency: None,
            certified_min_size: 0,
            refinements: 0,
            steps_used: 0,
            history: vec![RhoBounds::exact(0.0)],
        }
    }
}

/// The set-cover/hitting-set greedy guarantee for `n` sets:
/// `greedy ≤ (ln n + 1) · optimum`.
pub fn harmonic_bound(n: usize) -> f64 {
    if n == 0 {
        1.0
    } else {
        (n as f64).ln() + 1.0
    }
}

/// Step/deadline accounting for the refinement search. The deadline is
/// polled every 64 steps to keep `Instant::now` off the hot path.
struct BudgetTracker {
    max_steps: u64,
    deadline: Option<Instant>,
    steps: u64,
    expired: bool,
}

impl BudgetTracker {
    fn new(budget: ApproxBudget) -> BudgetTracker {
        let expired = budget.deadline.is_some_and(|d| Instant::now() >= d);
        BudgetTracker {
            max_steps: budget.max_steps,
            deadline: budget.deadline,
            steps: 0,
            expired,
        }
    }

    /// Consume one step; `false` once the budget is gone.
    fn step(&mut self) -> bool {
        if self.expired || self.steps >= self.max_steps {
            self.expired = true;
            return false;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(64) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.expired = true;
                    return false;
                }
            }
        }
        true
    }
}

/// One witness's hitting-set instance: the residual sets plus the
/// greedy/packing certificates computed up front (budget-free).
struct WitnessInstance {
    sets: Vec<VarSet>,
    sizes: Vec<usize>,
    greedy: Vec<u32>,
    /// Certified lower bound on this witness's minimum hitting set:
    /// `max(packing, ⌈greedy/(ln n + 1)⌉)`.
    lower_size: usize,
}

impl WitnessInstance {
    fn build(others: &[&VarSet], witness: &VarSet) -> Option<WitnessInstance> {
        let sets: Vec<VarSet> = others.iter().map(|c| c.without(witness)).collect();
        if sets.iter().any(VarSet::is_empty) {
            // A conjunct lies inside the witness — infeasible (cannot
            // happen in a minimized DNF, mirrored from `exact`).
            return None;
        }
        let greedy = greedy_hitting_set(&sets);
        let packing = packing_lower_bound(&sets, &VarSet::new());
        let harmonic = (greedy.len() as f64 / harmonic_bound(sets.len())).ceil() as usize;
        let lower_size = packing.max(harmonic).max(usize::from(!sets.is_empty()));
        let sizes = sets.iter().map(VarSet::len).collect();
        Some(WitnessInstance {
            sets,
            sizes,
            greedy,
            lower_size,
        })
    }
}

/// Greedy hitting set: repeatedly pick the most frequent element among
/// uncovered sets (ties toward the smallest id, as in the exact
/// solver's seed). Feasibility is guaranteed for non-empty input sets.
fn greedy_hitting_set(sets: &[VarSet]) -> Vec<u32> {
    let words = sets.iter().map(VarSet::word_count).max().unwrap_or(0);
    let mut counts = vec![0u32; words * 64];
    let mut chosen: Vec<u32> = Vec::new();
    let mut uncovered: Vec<&VarSet> = sets.iter().collect();
    while !uncovered.is_empty() {
        counts.fill(0);
        for s in &uncovered {
            for v in s.iter() {
                counts[v] += 1;
            }
        }
        let (pick, _) = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by_key(|&(v, &c)| (c, std::cmp::Reverse(v)))
            .expect("uncovered sets are non-empty");
        chosen.push(pick as u32);
        uncovered.retain(|s| !s.contains(pick));
    }
    chosen
}

/// Greedy packing of pairwise-disjoint sets not yet hit by `mask`:
/// each packed set needs its own element, so the count lower-bounds the
/// remaining hitting-set size.
fn packing_lower_bound(sets: &[VarSet], mask: &VarSet) -> usize {
    let mut blocked = VarSet::new();
    let mut lb = 0usize;
    for s in sets {
        if !s.intersects(mask) && !s.intersects(&blocked) {
            lb += 1;
            blocked.union_with(s);
        }
    }
    lb
}

/// Depth-limited search: is there a hitting set of size ≤ `limit`?
/// `Ok(true)` leaves the solution in `chosen`; `Err(())` means the
/// budget expired mid-search (the level is *not* refuted).
fn depth_limited(
    inst: &WitnessInstance,
    chosen: &mut Vec<u32>,
    mask: &mut VarSet,
    limit: usize,
    tracker: &mut BudgetTracker,
) -> Result<bool, ()> {
    if !tracker.step() {
        return Err(());
    }
    let uncovered: Vec<usize> = (0..inst.sets.len())
        .filter(|&i| !inst.sets[i].intersects(mask))
        .collect();
    if uncovered.is_empty() {
        return Ok(true);
    }
    let lb = packing_lower_bound(&inst.sets, mask);
    if chosen.len() + lb > limit {
        return Ok(false);
    }
    let pivot = *uncovered
        .iter()
        .min_by_key(|&&i| inst.sizes[i])
        .expect("uncovered non-empty");
    // Pivot elements are disjoint from `mask` (the set is uncovered),
    // so insert/remove below never clobbers an earlier choice.
    let pivot_elems: Vec<usize> = inst.sets[pivot].iter().collect();
    for v in pivot_elems {
        chosen.push(v as u32);
        mask.insert(v);
        let found = depth_limited(inst, chosen, mask, limit, tracker)?;
        if found {
            return Ok(true);
        }
        mask.remove(v);
        chosen.pop();
    }
    Ok(false)
}

/// Anytime minimum-contingency bounds for variable `v` over a
/// *minimized* arena-form n-lineage (the approximate counterpart of
/// [`super::exact::min_contingency_bits`]).
///
/// Always returns a sound bracket; with [`ApproxBudget::unlimited`] the
/// bracket collapses and `contingency` is a true minimum contingency.
pub fn anytime_min_contingency(phin: &BitDnf, v: u32, budget: ApproxBudget) -> AnytimeOutcome {
    if !phin.mentions(v) || phin.is_tautology() {
        return AnytimeOutcome::not_a_cause();
    }
    let witnesses: Vec<&VarSet> = phin
        .conjuncts()
        .iter()
        .filter(|c| c.contains(v as usize))
        .collect();
    let others: Vec<&VarSet> = phin
        .conjuncts()
        .iter()
        .filter(|c| !c.contains(v as usize))
        .collect();

    // Budget-free certificates: greedy feasible set + size lower bound
    // per witness. Feasibility decides cause-ness exactly.
    let instances: Vec<WitnessInstance> = witnesses
        .iter()
        .filter_map(|w| WitnessInstance::build(&others, w))
        .collect();
    if instances.is_empty() {
        return AnytimeOutcome::not_a_cause();
    }

    let mut best: Vec<u32> = instances
        .iter()
        .map(|i| i.greedy.clone())
        .min_by_key(Vec::len)
        .expect("at least one feasible witness");
    // |Γ_min| is the min over witnesses, so only the *smallest*
    // per-witness lower bound is certified globally.
    let mut certified = instances
        .iter()
        .map(|i| i.lower_size)
        .min()
        .expect("at least one feasible witness")
        .min(best.len());

    let mut history = vec![RhoBounds::from_sizes(best.len(), certified)];
    let mut refinements = 0u32;
    let mut tracker = BudgetTracker::new(budget);

    // Iterative deepening from the certified floor: each completed
    // level either refutes size m everywhere (upper tightens) or finds
    // a solution of size exactly m (bounds collapse — every smaller
    // size was already refuted).
    'refine: while certified < best.len() {
        let m = certified;
        let mut chosen: Vec<u32> = Vec::new();
        let mut mask = VarSet::new();
        let mut found = false;
        for inst in &instances {
            if inst.lower_size > m {
                continue; // this witness cannot beat m — already certified
            }
            chosen.clear();
            mask.clear();
            match depth_limited(inst, &mut chosen, &mut mask, m, &mut tracker) {
                Ok(true) => {
                    best = chosen.clone();
                    found = true;
                    break;
                }
                Ok(false) => {}
                Err(()) => break 'refine, // budget gone mid-level: keep last certified bounds
            }
        }
        if found {
            certified = best.len();
        } else {
            certified = m + 1;
        }
        refinements += 1;
        history.push(RhoBounds::from_sizes(best.len(), certified));
    }

    AnytimeOutcome {
        bounds: RhoBounds::from_sizes(best.len(), certified),
        contingency: Some(best),
        certified_min_size: certified,
        refinements,
        steps_used: tracker.steps,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resp::exact;
    use causality_engine::TupleRef;
    use causality_lineage::{Dnf, LineageArena};

    fn dnf_of(conjuncts: &[&[(u32, u32)]]) -> Dnf {
        Dnf::new(
            conjuncts
                .iter()
                .map(|c| c.iter().map(|&(r, i)| TupleRef::new(r, i)).collect())
                .collect(),
        )
    }

    /// The triangle-fan lineage: witness {R, S0, T0} plus k-1 disjoint
    /// pairs to hit — |Γ_min| = k-1 for S0, counterfactual for R.
    fn fan(k: u32) -> Dnf {
        let conjuncts: Vec<Vec<(u32, u32)>> =
            (0..k).map(|i| vec![(0, 0), (1, i), (2, i)]).collect();
        let slices: Vec<&[(u32, u32)]> = conjuncts.iter().map(Vec::as_slice).collect();
        dnf_of(&slices)
    }

    fn outcome_for(phi: &Dnf, t: TupleRef, budget: ApproxBudget) -> AnytimeOutcome {
        let (arena, bits) = LineageArena::from_dnf(phi);
        let phin = bits.minimized();
        let v = arena.id(t).expect("tuple interned");
        anytime_min_contingency(&phin, v, budget)
    }

    #[test]
    fn counterfactual_is_exact_even_at_budget_zero() {
        let out = outcome_for(&fan(5), TupleRef::new(0, 0), ApproxBudget::zero());
        assert_eq!(out.bounds, RhoBounds::exact(1.0));
        assert!(out.is_exact());
        assert_eq!(out.contingency.as_deref(), Some(&[][..]));
    }

    #[test]
    fn not_a_cause_is_exact_zero() {
        let phi = dnf_of(&[&[(0, 0), (1, 0)]]);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let phin = bits.minimized();
        assert!(arena.id(TupleRef::new(9, 9)).is_none());
        // A mentioned id that minimization dropped is impossible here;
        // use an out-of-range id to exercise the not-mentioned path.
        let out = anytime_min_contingency(&phin, 7, ApproxBudget::unlimited());
        assert_eq!(out.bounds, RhoBounds::exact(0.0));
        assert!(out.contingency.is_none());
    }

    #[test]
    fn fan_probe_brackets_and_collapses() {
        let phi = fan(6);
        let probe = TupleRef::new(1, 0); // S0: |Γ_min| = 5, ρ = 1/6
        let zero = outcome_for(&phi, probe, ApproxBudget::zero());
        let exact_rho = 1.0 / 6.0;
        assert!(zero.bounds.contains(exact_rho), "{:?}", zero.bounds);

        let full = outcome_for(&phi, probe, ApproxBudget::unlimited());
        assert!(full.is_exact());
        assert!((full.bounds.lower - exact_rho).abs() < 1e-12);
        assert_eq!(full.contingency.expect("cause").len(), 5);
    }

    #[test]
    fn history_tightens_monotonically() {
        let phi = dnf_of(&[
            &[(0, 0), (1, 1), (1, 2)],
            &[(0, 0), (1, 3)],
            &[(1, 1), (1, 4), (1, 5)],
            &[(1, 2), (1, 5), (1, 6)],
            &[(1, 3), (1, 6), (1, 7)],
            &[(1, 4), (1, 7)],
        ]);
        let out = outcome_for(&phi, TupleRef::new(0, 0), ApproxBudget::unlimited());
        for pair in out.history.windows(2) {
            assert!(pair[1].lower >= pair[0].lower, "{:?}", out.history);
            assert!(pair[1].upper <= pair[0].upper, "{:?}", out.history);
        }
        assert!(out.is_exact());
        // Differential: collapse point equals the exact kernel.
        let (arena, bits) = LineageArena::from_dnf(&phi);
        let phin = bits.minimized();
        let v = arena.id(TupleRef::new(0, 0)).unwrap();
        let exact_len = exact::min_contingency_bits(&phin, v).expect("cause").len();
        assert!((out.bounds.lower - 1.0 / (1.0 + exact_len as f64)).abs() < 1e-12);
    }

    #[test]
    fn step_budget_is_respected_and_bounds_stay_sound() {
        let phi = fan(12);
        let probe = TupleRef::new(1, 0);
        let exact_rho = 1.0 / 12.0;
        for steps in [0u64, 1, 2, 5, 10, 50] {
            let out = outcome_for(&phi, probe, ApproxBudget::steps(steps));
            assert!(out.steps_used <= steps);
            assert!(
                out.bounds.contains(exact_rho),
                "steps={steps}: {:?}",
                out.bounds
            );
        }
    }

    #[test]
    fn expired_deadline_still_yields_greedy_bounds() {
        let phi = fan(8);
        let probe = TupleRef::new(1, 0);
        let out = outcome_for(&phi, probe, ApproxBudget::until(Instant::now()));
        assert!(out.bounds.contains(1.0 / 8.0), "{:?}", out.bounds);
        assert!(out.contingency.is_some(), "greedy set is budget-free");
    }
}
