//! Why-No responsibility (Theorem 4.17).
//!
//! "For any query q with m subgoals and non-answer ā, any contingency set
//! for a tuple t will have at most m−1 tuples" — so the minimum is found
//! among the (constant-size) conjuncts of the non-answer lineage. In a
//! *minimized* lineage, every conjunct `c ∋ t` immediately yields the
//! valid contingency `Γ = c − {t}`: inserting `Γ` cannot complete another
//! conjunct (that conjunct would have made `c` redundant), and inserting
//! `t` afterwards completes `c`. Hence
//!
//! ```text
//! ρ_t = 1 / (1 + min_{c ∋ t} |c − {t}|) = 1 / min_{c ∋ t} |c|
//! ```

use crate::error::CoreError;
use crate::resp::Responsibility;
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};
use causality_lineage::{non_answer_lineage_cached, BitDnf, LineageArena};

/// Why-No responsibility of the candidate insertion `t` for a Boolean
/// non-answer. PTIME in the size of the database (Theorem 4.17).
pub fn why_no_responsibility(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    why_no_responsibility_cached(db, q, t, None)
}

/// [`why_no_responsibility`] with an optional [`SharedIndexCache`].
pub fn why_no_responsibility_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    cache: Option<&SharedIndexCache>,
) -> Result<Responsibility, CoreError> {
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    let phi = non_answer_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    Ok(why_no_responsibility_from_bits(
        &arena,
        &bits.minimized(),
        t,
    ))
}

/// Theorem 4.17 read off the arena-form *minimized* non-answer lineage:
/// `ρ_t = 1 / min_{c ∋ t} |c|`, one popcount per conjunct. Shared by the
/// single-tuple entry point above and the Why-No ranking (which scans
/// all candidates over one lineage instead of recomputing it per tuple).
pub(crate) fn why_no_responsibility_from_bits(
    arena: &LineageArena,
    phin: &BitDnf,
    t: TupleRef,
) -> Responsibility {
    if phin.is_tautology() {
        // Already an answer on Dx: no Why-No causes.
        return Responsibility::not_a_cause();
    }
    let Some(v) = arena.id(t) else {
        return Responsibility::not_a_cause();
    };
    let best = phin
        .conjuncts()
        .iter()
        .filter(|c| c.contains(v as usize))
        .min_by_key(|c| c.len());
    match best {
        Some(c) => {
            let gamma: Vec<TupleRef> = c
                .iter()
                .filter(|&u| u != v as usize)
                .map(|u| arena.resolve(u as u32))
                .collect();
            Responsibility::from_contingency(gamma)
        }
        None => Responsibility::not_a_cause(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::smallest_whyno_contingency;
    use causality_engine::{tup, Schema};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn counterfactual_insertion() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);
        let resp = why_no_responsibility(&db, &q("q :- R(x, y), S(y)"), s2).unwrap();
        assert_eq!(resp.rho, 1.0);
        assert!(resp.is_counterfactual());
    }

    #[test]
    fn joint_insertion_halves_responsibility() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        let r12 = db.insert_endo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);
        let query = q("q :- R(x, y), S(y)");
        for t in [r12, s2] {
            let resp = why_no_responsibility(&db, &query, t).unwrap();
            assert!((resp.rho - 0.5).abs() < 1e-12);
            assert_eq!(resp.min_contingency.as_ref().unwrap().len(), 1);
        }
    }

    #[test]
    fn takes_cheapest_conjunct() {
        // t completes the answer either together with two other missing
        // tuples, or with one: ρ = 1/2, not 1/3.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z"]));
        // Derivation A: R(1,2), S(2,3), T(3) — all three missing.
        db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        let t3 = db.insert_endo(tt, tup![3]);
        // Derivation B: R(5,6) exists (exo), S(6,3) missing, T(3) missing.
        db.insert_exo(r, tup![5, 6]);
        db.insert_endo(s, tup![6, 3]);
        let query = q("q :- R(x, y), S(y, z), T(z)");
        let resp = why_no_responsibility(&db, &query, t3).unwrap();
        assert!(
            (resp.rho - 0.5).abs() < 1e-12,
            "cheapest conjunct has 2 tuples"
        );
    }

    #[test]
    fn agrees_with_brute_force_dual() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        db.insert_endo(r, tup![5, 3]);
        db.insert_endo(s, tup![3]);
        let query = q("q :- R(x, y), S(y)");
        for t in db.endogenous_tuples() {
            let fast = why_no_responsibility(&db, &query, t).unwrap();
            let brute = smallest_whyno_contingency(&db, &query, t).unwrap();
            match brute {
                Some(gamma) => {
                    assert!(fast.is_cause());
                    assert_eq!(fast.min_contingency.unwrap().len(), gamma.len());
                }
                None => assert!(!fast.is_cause()),
            }
        }
    }

    #[test]
    fn non_cause_insertion() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        db.insert_endo(s, tup![2]);
        let dangling = db.insert_endo(s, tup![9]);
        let resp = why_no_responsibility(&db, &q("q :- R(x, y), S(y)"), dangling).unwrap();
        assert_eq!(resp.rho, 0.0);
    }

    #[test]
    fn already_answer_has_no_causes() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        let t = db.insert_endo(r, tup![2]);
        let resp = why_no_responsibility(&db, &q("q :- R(x)"), t).unwrap();
        assert_eq!(resp.rho, 0.0);
    }

    #[test]
    fn contingency_bounded_by_query_size() {
        // Theorem 4.17's bound: |Γ| ≤ m − 1 (= 2 here) regardless of how
        // many candidate tuples exist.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z"]));
        let mut first = None;
        for i in 0..20i64 {
            let rt = db.insert_endo(r, tup![i, 100 + i]);
            db.insert_endo(s, tup![100 + i, 200 + i]);
            db.insert_endo(tt, tup![200 + i]);
            first.get_or_insert(rt);
        }
        let query = q("q :- R(x, y), S(y, z), T(z)");
        let resp = why_no_responsibility(&db, &query, first.unwrap()).unwrap();
        assert_eq!(resp.min_contingency.unwrap().len(), 2);
    }
}
