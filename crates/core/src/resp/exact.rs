//! Exact minimum contingency via branch-and-bound.
//!
//! The contingency condition of Def. 2.1/2.3, read off the minimized
//! n-lineage `Φⁿ` (Theorem 3.2's characterisation): `Γ` is a contingency
//! for `t` iff
//!
//! 1. some conjunct containing `t` survives `Γ` (so `q` is true on `D−Γ`
//!    and `t` makes the difference), and
//! 2. every conjunct **not** containing `t` is hit by `Γ` (so `q` turns
//!    false once `t` is also removed).
//!
//! Choosing the surviving *witness* conjunct `c ∋ t` turns the problem
//! into a **minimum hitting set** over the residual sets `c' ∖ c` (for
//! conjuncts `c' ∌ t`) — NP-hard in general, exactly as the dichotomy
//! (Sect. 4) predicts for non-weakly-linear queries.
//!
//! # Bitset kernels
//!
//! The solver operates on the interned arena form
//! ([`BitDnf`]/[`VarSet`]): witness residuals are word-wise differences,
//! "is this set hit by Γ" is a word-wise AND, the greedy seed counts
//! frequencies over dense ids, and the branch-and-bound branches on the
//! smallest uncovered set with a greedy-packing lower bound — pruning
//! from the **first** node because the greedy solution seeds the
//! (exclusive) bound `cap` before branching. Every choice point mirrors
//! the seed `BTreeSet` implementation (retained verbatim in [`oracle`])
//! bit for bit: ascending-id iteration equals ascending-`TupleRef`
//! iteration, so the two return *identical* contingency vectors, not
//! just equal sizes.

use crate::error::CoreError;
use crate::resp::Responsibility;
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};
use causality_lineage::{n_lineage_cached, BitDnf, Dnf, LineageArena, VarSet};
use std::collections::BTreeSet;

/// Exact Why-So responsibility of `t` (any conjunctive query).
pub fn why_so_responsibility_exact(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    why_so_responsibility_exact_cached(db, q, t, None)
}

/// [`why_so_responsibility_exact`] with an optional [`SharedIndexCache`].
pub fn why_so_responsibility_exact_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    cache: Option<&SharedIndexCache>,
) -> Result<Responsibility, CoreError> {
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    let phi = n_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    Ok(responsibility_from_bits(&arena, &phin, t))
}

/// Responsibility of `t` over a *minimized* arena-form n-lineage: the
/// per-candidate unit of work shared by the sequential and parallel
/// rankers (one arena, zero per-candidate lineage recomputation).
pub fn responsibility_from_bits(
    arena: &LineageArena,
    phin: &BitDnf,
    t: TupleRef,
) -> Responsibility {
    let Some(v) = arena.id(t) else {
        return Responsibility::not_a_cause();
    };
    match min_contingency_bits(phin, v) {
        Some(gamma) => Responsibility::from_contingency(
            gamma.into_iter().map(|id| arena.resolve(id)).collect(),
        ),
        None => Responsibility::not_a_cause(),
    }
}

/// Minimum Why-So contingency for `t` over a *minimized* n-lineage.
/// Returns `None` when `t` is not an actual cause.
///
/// Compatibility wrapper: interns `phin` and delegates to
/// [`min_contingency_bits`].
pub fn min_contingency_from_lineage(phin: &Dnf, t: TupleRef) -> Option<Vec<TupleRef>> {
    let (arena, bits) = LineageArena::from_dnf(phin);
    let v = arena.id(t)?;
    min_contingency_bits(&bits, v)
        .map(|gamma| gamma.into_iter().map(|id| arena.resolve(id)).collect())
}

/// Minimum Why-So contingency in arena form: variable ids in the order
/// the branch-and-bound chose them (identical to the seed solver's).
/// `None` when `v` is not an actual cause.
pub fn min_contingency_bits(phin: &BitDnf, v: u32) -> Option<Vec<u32>> {
    if !phin.mentions(v) || phin.is_tautology() {
        return None;
    }
    let witnesses: Vec<&VarSet> = phin
        .conjuncts()
        .iter()
        .filter(|c| c.contains(v as usize))
        .collect();
    let others: Vec<&VarSet> = phin
        .conjuncts()
        .iter()
        .filter(|c| !c.contains(v as usize))
        .collect();

    let mut best: Option<Vec<u32>> = None;
    let mut sets: Vec<VarSet> = Vec::with_capacity(others.len());
    let mut scratch = Scratch::new();
    for witness in witnesses {
        // Γ must avoid the witness entirely and hit every other conjunct:
        // the residuals are one word-wise difference per conjunct. The
        // residual vector and the solver scratch are reused across
        // witnesses — no per-witness allocation churn.
        sets.clear();
        sets.extend(others.iter().map(|c| c.without(witness)));
        if sets.iter().any(VarSet::is_empty) {
            // Some conjunct is inside the witness — cannot happen in a
            // minimized DNF, but guard anyway: this witness is infeasible.
            continue;
        }
        let bound = best.as_ref().map(Vec::len);
        if let Some(hit) = min_hitting_set_scratch(&sets, bound, &mut scratch) {
            if best.as_ref().is_none_or(|b| hit.len() < b.len()) {
                best = Some(hit);
            }
        }
    }
    best
}

/// Exact minimum hitting set: the smallest set of elements intersecting
/// every input set. `upper` is an exclusive bound — solutions of size
/// `≥ upper` are not returned. Returns `None` when no solution beats the
/// bound (or an empty input set makes hitting impossible).
///
/// Compatibility wrapper over [`min_hitting_set_bits`]: interns the
/// elements (in ascending `TupleRef` order, so results are identical to
/// the seed solver's) and translates back.
pub fn min_hitting_set(sets: &[BTreeSet<TupleRef>], upper: Option<usize>) -> Option<Vec<TupleRef>> {
    // Sorted-vec interning: ids in ascending TupleRef order (the
    // determinism contract), binary-search lookups, no hash map.
    let mut universe: Vec<TupleRef> = sets.iter().flatten().copied().collect();
    universe.sort_unstable();
    universe.dedup();
    let bit_sets: Vec<VarSet> = sets
        .iter()
        .map(|s| {
            s.iter()
                .map(|t| universe.binary_search(t).expect("element of universe"))
                .collect()
        })
        .collect();
    min_hitting_set_bits(&bit_sets, upper)
        .map(|hit| hit.into_iter().map(|id| universe[id as usize]).collect())
}

/// [`min_hitting_set`] on arena-form sets. The branch-and-bound is
/// seeded with the greedy solution, so `cap` (the exclusive bound merged
/// from `upper` and the best solution so far) prunes from the first
/// node; the search tree mirrors the seed solver's exactly.
pub fn min_hitting_set_bits(sets: &[VarSet], upper: Option<usize>) -> Option<Vec<u32>> {
    min_hitting_set_scratch(sets, upper, &mut Scratch::new())
}

/// The solver body behind [`min_hitting_set_bits`], with caller-owned
/// scratch so the per-witness loop of [`min_contingency_bits`] (and any
/// other repeated solver) allocates its buffers once.
fn min_hitting_set_scratch(
    sets: &[VarSet],
    upper: Option<usize>,
    scratch: &mut Scratch,
) -> Option<Vec<u32>> {
    if sets.iter().any(VarSet::is_empty) {
        return None;
    }
    scratch.prepare(sets);
    // Greedy upper bound: always pick the most frequent element.
    let greedy = greedy_hitting_set_bits(sets, scratch);
    let mut best: Option<Vec<u32>> = match upper {
        Some(u) if greedy.len() >= u => None,
        _ => Some(greedy),
    };
    let sizes: Vec<usize> = sets.iter().map(VarSet::len).collect();
    let mut chosen: Vec<u32> = Vec::new();
    branch(sets, &sizes, &mut chosen, &mut best, upper, scratch);
    best
}

/// Reusable buffers for the greedy pass and the branch-and-bound: a
/// frequency table over the dense id universe, a chosen-elements mask,
/// and a packing mask. [`Scratch::prepare`] grows them to the current
/// set system's width; uses clear by word fill, never by realloc.
#[derive(Default)]
struct Scratch {
    counts: Vec<u32>,
    chosen_mask: VarSet,
    blocked: VarSet,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch::default()
    }

    /// Grow the frequency table to cover every id the set system can
    /// mention (the masks grow on demand via `VarSet::insert`).
    fn prepare(&mut self, sets: &[VarSet]) {
        let words = sets.iter().map(VarSet::word_count).max().unwrap_or(0);
        if self.counts.len() < words * 64 {
            self.counts.resize(words * 64, 0);
        }
    }
}

fn greedy_hitting_set_bits(sets: &[VarSet], scratch: &mut Scratch) -> Vec<u32> {
    let mut chosen: Vec<u32> = Vec::new();
    let mut uncovered: Vec<&VarSet> = sets.iter().collect();
    while !uncovered.is_empty() {
        // Most frequent element among uncovered sets; ties break toward
        // the smallest id (= smallest TupleRef), as in the seed.
        scratch.counts.fill(0);
        for s in &uncovered {
            for v in s.iter() {
                scratch.counts[v] += 1;
            }
        }
        let (pick, _) = scratch
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by_key(|&(v, &c)| (c, std::cmp::Reverse(v)))
            .expect("uncovered sets are non-empty");
        chosen.push(pick as u32);
        uncovered.retain(|s| !s.contains(pick));
    }
    chosen
}

fn branch(
    sets: &[VarSet],
    sizes: &[usize],
    chosen: &mut Vec<u32>,
    best: &mut Option<Vec<u32>>,
    upper: Option<usize>,
    scratch: &mut Scratch,
) {
    // Exclusive cap: the greedy seed is already in `best`, so this
    // prunes from the first node rather than after the first full
    // descent.
    let cap = match (best.as_ref().map(Vec::len), upper) {
        (Some(b), Some(u)) => Some(b.min(u)),
        (Some(b), None) => Some(b),
        (None, u) => u,
    };
    // Uncovered sets: one word-wise intersection test each.
    scratch.chosen_mask.clear();
    for &v in chosen.iter() {
        scratch.chosen_mask.insert(v as usize);
    }
    let uncovered: Vec<usize> = (0..sets.len())
        .filter(|&i| !sets[i].intersects(&scratch.chosen_mask))
        .collect();
    if uncovered.is_empty() {
        if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
            *best = Some(chosen.clone());
        }
        return;
    }
    // Lower bound: greedy packing of pairwise-disjoint uncovered sets.
    let mut lb = 0usize;
    scratch.blocked.clear();
    for &i in &uncovered {
        if !sets[i].intersects(&scratch.blocked) {
            lb += 1;
            scratch.blocked.union_with(&sets[i]);
        }
    }
    if let Some(cap) = cap {
        if chosen.len() + lb >= cap {
            return;
        }
    }
    // Branch on the smallest uncovered set (first minimum, as in the
    // seed's `min_by_key`).
    let pivot = *uncovered
        .iter()
        .min_by_key(|&&i| sizes[i])
        .expect("uncovered non-empty");
    let pivot_elems: Vec<usize> = sets[pivot].iter().collect();
    for v in pivot_elems {
        chosen.push(v as u32);
        branch(sets, sizes, chosen, best, upper, scratch);
        chosen.pop();
    }
}

pub mod oracle {
    //! The seed `BTreeSet` contingency and hitting-set solvers, retained
    //! verbatim as the differential oracle for the bitset kernels (and
    //! as the "before" side of the `lineage_kernels` bench). Nothing on
    //! a serving path calls these; do not optimise them.

    use causality_engine::TupleRef;
    use causality_lineage::Dnf;
    use std::collections::BTreeSet;

    /// Seed minimum Why-So contingency over a minimized n-lineage.
    pub fn min_contingency_from_lineage(phin: &Dnf, t: TupleRef) -> Option<Vec<TupleRef>> {
        if !phin.mentions(t) || phin.is_tautology() {
            return None;
        }
        let witnesses: Vec<&causality_lineage::Conjunct> =
            phin.conjuncts().iter().filter(|c| c.contains(t)).collect();
        let others: Vec<&causality_lineage::Conjunct> =
            phin.conjuncts().iter().filter(|c| !c.contains(t)).collect();

        let mut best: Option<Vec<TupleRef>> = None;
        for witness in witnesses {
            let sets: Vec<BTreeSet<TupleRef>> = others
                .iter()
                .map(|c| c.vars().filter(|v| !witness.contains(*v)).collect())
                .collect();
            if sets.iter().any(BTreeSet::is_empty) {
                continue;
            }
            let bound = best.as_ref().map(Vec::len);
            if let Some(hit) = min_hitting_set(&sets, bound) {
                if best.as_ref().is_none_or(|b| hit.len() < b.len()) {
                    best = Some(hit);
                }
            }
        }
        best
    }

    /// Seed exact minimum hitting set (exclusive `upper` bound).
    pub fn min_hitting_set(
        sets: &[BTreeSet<TupleRef>],
        upper: Option<usize>,
    ) -> Option<Vec<TupleRef>> {
        if sets.iter().any(BTreeSet::is_empty) {
            return None;
        }
        let greedy = greedy_hitting_set(sets);
        let mut best: Option<Vec<TupleRef>> = match upper {
            Some(u) if greedy.len() >= u => None,
            _ => Some(greedy),
        };
        let mut chosen: Vec<TupleRef> = Vec::new();
        branch(sets, &mut chosen, &mut best, upper);
        best
    }

    fn greedy_hitting_set(sets: &[BTreeSet<TupleRef>]) -> Vec<TupleRef> {
        let mut chosen: Vec<TupleRef> = Vec::new();
        let mut uncovered: Vec<&BTreeSet<TupleRef>> = sets.iter().collect();
        while !uncovered.is_empty() {
            let mut counts: std::collections::HashMap<TupleRef, usize> =
                std::collections::HashMap::new();
            for s in &uncovered {
                for v in s.iter() {
                    *counts.entry(*v).or_insert(0) += 1;
                }
            }
            let (&pick, _) = counts
                .iter()
                .max_by_key(|(v, c)| (**c, std::cmp::Reverse(**v)))
                .expect("uncovered sets are non-empty");
            chosen.push(pick);
            uncovered.retain(|s| !s.contains(&pick));
        }
        chosen
    }

    fn branch(
        sets: &[BTreeSet<TupleRef>],
        chosen: &mut Vec<TupleRef>,
        best: &mut Option<Vec<TupleRef>>,
        upper: Option<usize>,
    ) {
        let cap = match (best.as_ref().map(Vec::len), upper) {
            (Some(b), Some(u)) => Some(b.min(u)),
            (Some(b), None) => Some(b),
            (None, u) => u,
        };
        let uncovered: Vec<&BTreeSet<TupleRef>> = sets
            .iter()
            .filter(|s| !s.iter().any(|v| chosen.contains(v)))
            .collect();
        if uncovered.is_empty() {
            if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                *best = Some(chosen.clone());
            }
            return;
        }
        let mut lb = 0usize;
        let mut blocked: BTreeSet<TupleRef> = BTreeSet::new();
        for s in &uncovered {
            if s.iter().all(|v| !blocked.contains(v)) {
                lb += 1;
                blocked.extend(s.iter().copied());
            }
        }
        if let Some(cap) = cap {
            if chosen.len() + lb >= cap {
                return;
            }
        }
        let pivot = uncovered
            .iter()
            .min_by_key(|s| s.len())
            .expect("uncovered non-empty");
        for v in pivot.iter() {
            chosen.push(*v);
            branch(sets, chosen, best, upper);
            chosen.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::smallest_whyso_contingency;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn tref(db: &Database, rel: &str, tuple: causality_engine::Tuple) -> TupleRef {
        let rid = db.relation_id(rel).unwrap();
        TupleRef {
            rel: rid,
            row: db.relation(rid).find(&tuple).unwrap(),
        }
    }

    #[test]
    fn hitting_set_basics() {
        let t = |i: u32| TupleRef::new(0, i);
        let set = |xs: &[u32]| xs.iter().map(|&i| t(i)).collect::<BTreeSet<_>>();
        // Single set: pick any one element.
        assert_eq!(min_hitting_set(&[set(&[1, 2, 3])], None).unwrap().len(), 1);
        // Disjoint sets need one element each.
        let sets = [set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        assert_eq!(min_hitting_set(&sets, None).unwrap().len(), 3);
        // A shared element hits everything.
        let sets = [set(&[1, 2]), set(&[1, 3]), set(&[1, 4])];
        let hit = min_hitting_set(&sets, None).unwrap();
        assert_eq!(hit, vec![t(1)]);
        // Empty set: impossible.
        assert!(min_hitting_set(&[BTreeSet::new()], None).is_none());
        // No sets: empty hitting set.
        assert_eq!(min_hitting_set(&[], None).unwrap().len(), 0);
        // Exclusive upper bound.
        let sets = [set(&[1]), set(&[2])];
        assert!(min_hitting_set(&sets, Some(2)).is_none());
        assert!(min_hitting_set(&sets, Some(3)).is_some());
    }

    #[test]
    fn hitting_set_vertex_cover_instance() {
        // Triangle as 2-element sets: minimum hitting set = min VC = 2.
        let t = |i: u32| TupleRef::new(0, i);
        let set = |xs: &[u32]| xs.iter().map(|&i| t(i)).collect::<BTreeSet<_>>();
        let sets = [set(&[0, 1]), set(&[1, 2]), set(&[2, 0])];
        assert_eq!(min_hitting_set(&sets, None).unwrap().len(), 2);
    }

    #[test]
    fn bitset_hitting_set_is_identical_to_oracle() {
        let t = |i: u32| TupleRef::new(i % 3, i / 3);
        let set = |xs: &[u32]| xs.iter().map(|&i| t(i)).collect::<BTreeSet<_>>();
        let instances: Vec<Vec<BTreeSet<TupleRef>>> = vec![
            vec![set(&[1, 2, 3])],
            vec![set(&[1, 2]), set(&[3, 4]), set(&[5, 6])],
            vec![set(&[1, 2]), set(&[1, 3]), set(&[1, 4])],
            vec![set(&[0, 1]), set(&[1, 2]), set(&[2, 0])],
            vec![set(&[0, 5, 9]), set(&[5, 7]), set(&[9, 7]), set(&[0, 7])],
            vec![],
        ];
        for sets in &instances {
            for upper in [None, Some(1), Some(2), Some(3), Some(10)] {
                assert_eq!(
                    min_hitting_set(sets, upper),
                    oracle::min_hitting_set(sets, upper),
                    "sets {sets:?} upper {upper:?}"
                );
            }
        }
    }

    /// Example 2.2 answer a4: responsibility of S(a3) is 1/2 with
    /// contingency {S(a2)}.
    #[test]
    fn example_2_2_responsibility() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let s_a3 = tref(&db, "S", tup!["a3"]);
        let r = why_so_responsibility_exact(&db, &query, s_a3).unwrap();
        assert!((r.rho - 0.5).abs() < 1e-12);
        assert_eq!(r.min_contingency.as_ref().unwrap().len(), 1);
    }

    /// Counterfactual cause: responsibility 1.
    #[test]
    fn counterfactual_has_rho_one() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a2")]);
        let s_a1 = tref(&db, "S", tup!["a1"]);
        let r = why_so_responsibility_exact(&db, &query, s_a1).unwrap();
        assert_eq!(r.rho, 1.0);
        assert!(r.is_counterfactual());
    }

    /// Non-cause: responsibility 0.
    #[test]
    fn non_cause_has_rho_zero() {
        let mut db = example_2_2();
        let r = db.relation_id("R").unwrap();
        for t in [tup!["a4", "a3"], tup!["a4", "a2"]] {
            let row = db.relation(r).find(&t).unwrap();
            db.relation_mut(r).set_endogenous(row, false);
        }
        let query = q("q :- R(x, 'a3'), S('a3')");
        let r33 = tref(&db, "R", tup!["a3", "a3"]);
        let resp = why_so_responsibility_exact(&db, &query, r33).unwrap();
        assert_eq!(resp.rho, 0.0);
        assert!(!resp.is_cause());
    }

    /// Cross-validate the lineage-based solver against the literal
    /// Def. 2.1 brute force on every endogenous tuple of Example 2.2.
    #[test]
    fn exact_matches_brute_force_on_example_2_2() {
        let db = example_2_2();
        for answer in ["a2", "a3", "a4"] {
            let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str(answer)]);
            for t in db.endogenous_tuples() {
                let others: Vec<TupleRef> = db
                    .endogenous_tuples()
                    .into_iter()
                    .filter(|&u| u != t)
                    .collect();
                let brute = smallest_whyso_contingency(&db, &query, t, &others).unwrap();
                let fast = why_so_responsibility_exact(&db, &query, t).unwrap();
                match brute {
                    Some(gamma) => {
                        assert!(fast.is_cause(), "answer {answer}, tuple {t:?}");
                        assert_eq!(
                            fast.min_contingency.unwrap().len(),
                            gamma.len(),
                            "answer {answer}, tuple {t:?}"
                        );
                    }
                    None => assert!(!fast.is_cause(), "answer {answer}, tuple {t:?}"),
                }
            }
        }
    }

    /// The bitset contingency solver must return exactly what the seed
    /// solver returned — same tuples, same order — on every tuple of the
    /// worked examples.
    #[test]
    fn contingency_is_identical_to_oracle_on_examples() {
        let db = example_2_2();
        for answer in ["a2", "a3", "a4"] {
            let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str(answer)]);
            let phin = causality_lineage::n_lineage(&db, &query)
                .unwrap()
                .minimized();
            for t in db.endogenous_tuples() {
                assert_eq!(
                    min_contingency_from_lineage(&phin, t),
                    oracle::min_contingency_from_lineage(&phin, t),
                    "answer {answer}, tuple {t:?}"
                );
            }
        }
    }

    /// A triangle (h2*) instance: the exact solver handles the NP-hard
    /// query shape on small data.
    #[test]
    fn triangle_query_exact() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z", "x"]));
        // Two triangles sharing the R edge.
        let r12 = db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(tt, tup![3, 1]);
        db.insert_endo(s, tup![2, 4]);
        db.insert_endo(tt, tup![4, 1]);
        let query = q("h2 :- R(x, y), S(y, z), T(z, x)");
        let resp = why_so_responsibility_exact(&db, &query, r12).unwrap();
        assert_eq!(resp.rho, 1.0, "R(1,2) is in every triangle");

        let s23 = tref(&db, "S", tup![2, 3]);
        let resp = why_so_responsibility_exact(&db, &query, s23).unwrap();
        assert!(
            (resp.rho - 0.5).abs() < 1e-12,
            "must break the other triangle"
        );
    }

    #[test]
    fn exogenous_tuple_rejected() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t = db.insert_exo(r, tup![1]);
        let err = why_so_responsibility_exact(&db, &q("q :- R(x)"), t).unwrap_err();
        assert!(matches!(err, CoreError::NotEndogenous));
    }

    /// Self-joins are fine for the exact solver (Prop. 4.16 pattern).
    #[test]
    fn self_join_exact() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let s = db.add_relation(Schema::new("S", &["x", "y"]));
        let r0 = db.insert_endo(r, tup![0]);
        db.insert_endo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        db.insert_exo(s, tup![0, 0]);
        db.insert_exo(s, tup![1, 2]);
        let query = q("q :- R(x), S(x, y), R(y)");
        // r0 joins with itself via S(0,0); the other derivation is R(1),R(2).
        let resp = why_so_responsibility_exact(&db, &query, r0).unwrap();
        assert!(
            (resp.rho - 0.5).abs() < 1e-12,
            "cut R(1) or R(2), then r0 counterfactual"
        );
    }
}
