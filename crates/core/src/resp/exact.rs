//! Exact minimum contingency via branch-and-bound.
//!
//! The contingency condition of Def. 2.1/2.3, read off the minimized
//! n-lineage `Φⁿ` (Theorem 3.2's characterisation): `Γ` is a contingency
//! for `t` iff
//!
//! 1. some conjunct containing `t` survives `Γ` (so `q` is true on `D−Γ`
//!    and `t` makes the difference), and
//! 2. every conjunct **not** containing `t` is hit by `Γ` (so `q` turns
//!    false once `t` is also removed).
//!
//! Choosing the surviving *witness* conjunct `c ∋ t` turns the problem
//! into a **minimum hitting set** over the residual sets `c' ∖ c` (for
//! conjuncts `c' ∌ t`) — NP-hard in general, exactly as the dichotomy
//! (Sect. 4) predicts for non-weakly-linear queries. The solver below
//! branches on the smallest uncovered set with a greedy-packing lower
//! bound; at the instance sizes of the paper's reductions it is exact and
//! fast enough to serve as the oracle for every other algorithm in this
//! crate.

use crate::error::CoreError;
use crate::resp::Responsibility;
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, TupleRef};
use causality_lineage::{n_lineage_cached, Dnf};
use std::collections::BTreeSet;

/// Exact Why-So responsibility of `t` (any conjunctive query).
pub fn why_so_responsibility_exact(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    why_so_responsibility_exact_cached(db, q, t, None)
}

/// [`why_so_responsibility_exact`] with an optional [`SharedIndexCache`].
pub fn why_so_responsibility_exact_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    cache: Option<&SharedIndexCache>,
) -> Result<Responsibility, CoreError> {
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    let phin = n_lineage_cached(db, q, cache)?.minimized();
    Ok(match min_contingency_from_lineage(&phin, t) {
        Some(gamma) => Responsibility::from_contingency(gamma),
        None => Responsibility::not_a_cause(),
    })
}

/// Minimum Why-So contingency for `t` over a *minimized* n-lineage.
/// Returns `None` when `t` is not an actual cause.
pub fn min_contingency_from_lineage(phin: &Dnf, t: TupleRef) -> Option<Vec<TupleRef>> {
    if !phin.mentions(t) || phin.is_tautology() {
        return None;
    }
    let witnesses: Vec<&causality_lineage::Conjunct> =
        phin.conjuncts().iter().filter(|c| c.contains(t)).collect();
    let others: Vec<&causality_lineage::Conjunct> =
        phin.conjuncts().iter().filter(|c| !c.contains(t)).collect();

    let mut best: Option<Vec<TupleRef>> = None;
    for witness in witnesses {
        // Γ must avoid the witness entirely and hit every other conjunct.
        let sets: Vec<BTreeSet<TupleRef>> = others
            .iter()
            .map(|c| c.vars().filter(|v| !witness.contains(*v)).collect())
            .collect();
        if sets.iter().any(BTreeSet::is_empty) {
            // Some conjunct is inside the witness — cannot happen in a
            // minimized DNF, but guard anyway: this witness is infeasible.
            continue;
        }
        let bound = best.as_ref().map(Vec::len);
        if let Some(hit) = min_hitting_set(&sets, bound) {
            if best.as_ref().is_none_or(|b| hit.len() < b.len()) {
                best = Some(hit);
            }
        }
    }
    best
}

/// Exact minimum hitting set: the smallest set of elements intersecting
/// every input set. `upper` is an exclusive bound — solutions of size
/// `≥ upper` are not returned. Returns `None` when no solution beats the
/// bound (or an empty input set makes hitting impossible).
pub fn min_hitting_set(sets: &[BTreeSet<TupleRef>], upper: Option<usize>) -> Option<Vec<TupleRef>> {
    if sets.iter().any(BTreeSet::is_empty) {
        return None;
    }
    // Greedy upper bound: always pick the most frequent element.
    let greedy = greedy_hitting_set(sets);
    let mut best: Option<Vec<TupleRef>> = match upper {
        Some(u) if greedy.len() >= u => None,
        _ => Some(greedy),
    };
    let mut chosen: Vec<TupleRef> = Vec::new();
    branch(sets, &mut chosen, &mut best, upper);
    best
}

fn greedy_hitting_set(sets: &[BTreeSet<TupleRef>]) -> Vec<TupleRef> {
    let mut chosen: Vec<TupleRef> = Vec::new();
    let mut uncovered: Vec<&BTreeSet<TupleRef>> = sets.iter().collect();
    while !uncovered.is_empty() {
        // Most frequent element among uncovered sets.
        let mut counts: std::collections::HashMap<TupleRef, usize> =
            std::collections::HashMap::new();
        for s in &uncovered {
            for v in s.iter() {
                *counts.entry(*v).or_insert(0) += 1;
            }
        }
        let (&pick, _) = counts
            .iter()
            .max_by_key(|(v, c)| (**c, std::cmp::Reverse(**v)))
            .expect("uncovered sets are non-empty");
        chosen.push(pick);
        uncovered.retain(|s| !s.contains(&pick));
    }
    chosen
}

fn branch(
    sets: &[BTreeSet<TupleRef>],
    chosen: &mut Vec<TupleRef>,
    best: &mut Option<Vec<TupleRef>>,
    upper: Option<usize>,
) {
    let cap = match (best.as_ref().map(Vec::len), upper) {
        (Some(b), Some(u)) => Some(b.min(u)),
        (Some(b), None) => Some(b),
        (None, u) => u,
    };
    // Find uncovered sets.
    let uncovered: Vec<&BTreeSet<TupleRef>> = sets
        .iter()
        .filter(|s| !s.iter().any(|v| chosen.contains(v)))
        .collect();
    if uncovered.is_empty() {
        if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
            *best = Some(chosen.clone());
        }
        return;
    }
    // Lower bound: greedy packing of pairwise-disjoint uncovered sets.
    let mut lb = 0usize;
    let mut blocked: BTreeSet<TupleRef> = BTreeSet::new();
    for s in &uncovered {
        if s.iter().all(|v| !blocked.contains(v)) {
            lb += 1;
            blocked.extend(s.iter().copied());
        }
    }
    if let Some(cap) = cap {
        if chosen.len() + lb >= cap {
            return;
        }
    }
    // Branch on the smallest uncovered set.
    let pivot = uncovered
        .iter()
        .min_by_key(|s| s.len())
        .expect("uncovered non-empty");
    for v in pivot.iter() {
        chosen.push(*v);
        branch(sets, chosen, best, upper);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::smallest_whyso_contingency;
    use causality_engine::database::example_2_2;
    use causality_engine::{tup, Schema, Value};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn tref(db: &Database, rel: &str, tuple: causality_engine::Tuple) -> TupleRef {
        let rid = db.relation_id(rel).unwrap();
        TupleRef {
            rel: rid,
            row: db.relation(rid).find(&tuple).unwrap(),
        }
    }

    #[test]
    fn hitting_set_basics() {
        let t = |i: u32| TupleRef::new(0, i);
        let set = |xs: &[u32]| xs.iter().map(|&i| t(i)).collect::<BTreeSet<_>>();
        // Single set: pick any one element.
        assert_eq!(min_hitting_set(&[set(&[1, 2, 3])], None).unwrap().len(), 1);
        // Disjoint sets need one element each.
        let sets = [set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        assert_eq!(min_hitting_set(&sets, None).unwrap().len(), 3);
        // A shared element hits everything.
        let sets = [set(&[1, 2]), set(&[1, 3]), set(&[1, 4])];
        let hit = min_hitting_set(&sets, None).unwrap();
        assert_eq!(hit, vec![t(1)]);
        // Empty set: impossible.
        assert!(min_hitting_set(&[BTreeSet::new()], None).is_none());
        // No sets: empty hitting set.
        assert_eq!(min_hitting_set(&[], None).unwrap().len(), 0);
        // Exclusive upper bound.
        let sets = [set(&[1]), set(&[2])];
        assert!(min_hitting_set(&sets, Some(2)).is_none());
        assert!(min_hitting_set(&sets, Some(3)).is_some());
    }

    #[test]
    fn hitting_set_vertex_cover_instance() {
        // Triangle as 2-element sets: minimum hitting set = min VC = 2.
        let t = |i: u32| TupleRef::new(0, i);
        let set = |xs: &[u32]| xs.iter().map(|&i| t(i)).collect::<BTreeSet<_>>();
        let sets = [set(&[0, 1]), set(&[1, 2]), set(&[2, 0])];
        assert_eq!(min_hitting_set(&sets, None).unwrap().len(), 2);
    }

    /// Example 2.2 answer a4: responsibility of S(a3) is 1/2 with
    /// contingency {S(a2)}.
    #[test]
    fn example_2_2_responsibility() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a4")]);
        let s_a3 = tref(&db, "S", tup!["a3"]);
        let r = why_so_responsibility_exact(&db, &query, s_a3).unwrap();
        assert!((r.rho - 0.5).abs() < 1e-12);
        assert_eq!(r.min_contingency.as_ref().unwrap().len(), 1);
    }

    /// Counterfactual cause: responsibility 1.
    #[test]
    fn counterfactual_has_rho_one() {
        let db = example_2_2();
        let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str("a2")]);
        let s_a1 = tref(&db, "S", tup!["a1"]);
        let r = why_so_responsibility_exact(&db, &query, s_a1).unwrap();
        assert_eq!(r.rho, 1.0);
        assert!(r.is_counterfactual());
    }

    /// Non-cause: responsibility 0.
    #[test]
    fn non_cause_has_rho_zero() {
        let mut db = example_2_2();
        let r = db.relation_id("R").unwrap();
        for t in [tup!["a4", "a3"], tup!["a4", "a2"]] {
            let row = db.relation(r).find(&t).unwrap();
            db.relation_mut(r).set_endogenous(row, false);
        }
        let query = q("q :- R(x, 'a3'), S('a3')");
        let r33 = tref(&db, "R", tup!["a3", "a3"]);
        let resp = why_so_responsibility_exact(&db, &query, r33).unwrap();
        assert_eq!(resp.rho, 0.0);
        assert!(!resp.is_cause());
    }

    /// Cross-validate the lineage-based solver against the literal
    /// Def. 2.1 brute force on every endogenous tuple of Example 2.2.
    #[test]
    fn exact_matches_brute_force_on_example_2_2() {
        let db = example_2_2();
        for answer in ["a2", "a3", "a4"] {
            let query = q("q(x) :- R(x, y), S(y)").ground(&[Value::str(answer)]);
            for t in db.endogenous_tuples() {
                let others: Vec<TupleRef> = db
                    .endogenous_tuples()
                    .into_iter()
                    .filter(|&u| u != t)
                    .collect();
                let brute = smallest_whyso_contingency(&db, &query, t, &others).unwrap();
                let fast = why_so_responsibility_exact(&db, &query, t).unwrap();
                match brute {
                    Some(gamma) => {
                        assert!(fast.is_cause(), "answer {answer}, tuple {t:?}");
                        assert_eq!(
                            fast.min_contingency.unwrap().len(),
                            gamma.len(),
                            "answer {answer}, tuple {t:?}"
                        );
                    }
                    None => assert!(!fast.is_cause(), "answer {answer}, tuple {t:?}"),
                }
            }
        }
    }

    /// A triangle (h2*) instance: the exact solver handles the NP-hard
    /// query shape on small data.
    #[test]
    fn triangle_query_exact() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z", "x"]));
        // Two triangles sharing the R edge.
        let r12 = db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(tt, tup![3, 1]);
        db.insert_endo(s, tup![2, 4]);
        db.insert_endo(tt, tup![4, 1]);
        let query = q("h2 :- R(x, y), S(y, z), T(z, x)");
        let resp = why_so_responsibility_exact(&db, &query, r12).unwrap();
        assert_eq!(resp.rho, 1.0, "R(1,2) is in every triangle");

        let s23 = tref(&db, "S", tup![2, 3]);
        let resp = why_so_responsibility_exact(&db, &query, s23).unwrap();
        assert!(
            (resp.rho - 0.5).abs() < 1e-12,
            "must break the other triangle"
        );
    }

    #[test]
    fn exogenous_tuple_rejected() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t = db.insert_exo(r, tup![1]);
        let err = why_so_responsibility_exact(&db, &q("q :- R(x)"), t).unwrap_err();
        assert!(matches!(err, CoreError::NotEndogenous));
    }

    /// Self-joins are fine for the exact solver (Prop. 4.16 pattern).
    #[test]
    fn self_join_exact() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let s = db.add_relation(Schema::new("S", &["x", "y"]));
        let r0 = db.insert_endo(r, tup![0]);
        db.insert_endo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        db.insert_exo(s, tup![0, 0]);
        db.insert_exo(s, tup![1, 2]);
        let query = q("q :- R(x), S(x, y), R(y)");
        // r0 joins with itself via S(0,0); the other derivation is R(1),R(2).
        let resp = why_so_responsibility_exact(&db, &query, r0).unwrap();
        assert!(
            (resp.rho - 0.5).abs() < 1e-12,
            "cut R(1) or R(2), then r0 counterfactual"
        );
    }
}
