//! Algorithm 1: responsibility of (weakly) linear queries via max-flow.
//!
//! Example 4.2's construction, generalised per the paper's Algorithm 1:
//! after weakening the query to a linear form, lay the atoms out along a
//! witness linear order `g_{σ(0)}, …, g_{σ(m-1)}`. Between consecutive
//! atoms sits a *junction* layer with one node per value combination of
//! the shared (weakened) variables; every database tuple becomes an edge
//! between its two junction nodes — capacity 1 if endogenous, ∞ if
//! exogenous, 0 for the tuple `t` under scrutiny.
//!
//! Linearity makes junction merging sound: a variable alive across a
//! boundary must occur in both adjacent atoms (its span is consecutive),
//! so every source–sink path corresponds to a real valuation and
//! vice-versa. Hence a min-cut is exactly a minimum set of tuples whose
//! removal falsifies the query.
//!
//! Responsibility then follows the paper's per-path scheme: for every
//! valuation path `p` through `t`, set `p − {t}` to ∞ (the witness that
//! keeps `q` true once `t` is restored), compute the min-cut `Γ_p`, and
//! take `ρ_t = 1 / (1 + min_p |Γ_p|)`.

use crate::dichotomy::aquery::AQuery;
use crate::dichotomy::weaken::weakly_linear_certificate;
use crate::error::CoreError;
use crate::resp::Responsibility;
use causality_engine::{
    evaluate, evaluate_with_cache, ConjunctiveQuery, Database, Nature, SharedIndexCache, TupleRef,
    Value, VarId,
};
use causality_graph::maxflow::{EdgeHandle, FlowAlgorithm, FlowNetwork, INF};
use std::collections::{BTreeSet, HashMap};

/// Diagnostic statistics of one Algorithm 1 run.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Junction + terminal nodes in the network.
    pub nodes: usize,
    /// Edges (tuples + merged exogenous edges).
    pub edges: usize,
    /// Distinct witness paths through `t` that were evaluated.
    pub paths: usize,
    /// Max-flow invocations.
    pub flow_runs: usize,
}

/// Why-So responsibility via Algorithm 1. Requires a Boolean,
/// self-join-free, weakly linear query over relations that are fully
/// endogenous or fully exogenous.
pub fn why_so_responsibility_flow(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
) -> Result<Responsibility, CoreError> {
    why_so_responsibility_flow_with(db, q, t, FlowAlgorithm::Dinic).map(|(r, _)| r)
}

/// [`why_so_responsibility_flow`] with an optional [`SharedIndexCache`].
pub fn why_so_responsibility_flow_cached(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    cache: Option<&SharedIndexCache>,
) -> Result<Responsibility, CoreError> {
    flow_impl(db, q, t, FlowAlgorithm::Dinic, cache).map(|(r, _)| r)
}

/// As [`why_so_responsibility_flow`], with algorithm choice and stats
/// (used by the ablation benches).
pub fn why_so_responsibility_flow_with(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    algo: FlowAlgorithm,
) -> Result<(Responsibility, FlowStats), CoreError> {
    flow_impl(db, q, t, algo, None)
}

fn flow_impl(
    db: &Database,
    q: &ConjunctiveQuery,
    t: TupleRef,
    algo: FlowAlgorithm,
    cache: Option<&SharedIndexCache>,
) -> Result<(Responsibility, FlowStats), CoreError> {
    if q.has_self_join() {
        return Err(CoreError::SelfJoin {
            query: q.to_string(),
        });
    }
    if !db.is_endogenous(t) {
        return Err(CoreError::NotEndogenous);
    }
    let marked = mark_query(db, q)?;
    let aq = AQuery::from_query(&marked)?;
    let cert = weakly_linear_certificate(&aq)?.ok_or_else(|| CoreError::NotWeaklyLinear {
        query: q.to_string(),
    })?;
    let order = cert.linear_order;
    let weakened = cert.weakened;

    let result = match cache {
        Some(c) => evaluate_with_cache(db, q, c)?,
        None => evaluate(db, q)?,
    };
    if result.valuations.is_empty() {
        return Ok((Responsibility::not_a_cause(), FlowStats::default()));
    }
    let m = order.len();

    // Boundary variables between consecutive atoms of the linear order.
    let boundaries: Vec<Vec<VarId>> = (0..m.saturating_sub(1))
        .map(|k| {
            let shared = weakened.atoms[order[k]].vars & weakened.atoms[order[k + 1]].vars;
            (0..64u32)
                .filter(|v| shared & (1u64 << v) != 0)
                .map(VarId)
                .collect()
        })
        .collect();

    let mut net = FlowNetwork::new(2); // 0 = source, 1 = sink
    let mut nodes: HashMap<(usize, Vec<Value>), usize> = HashMap::new();
    #[derive(PartialEq, Eq, Hash)]
    enum EdgeKey {
        Tuple(TupleRef),
        Exo(usize, usize, usize),
    }
    let mut edges: HashMap<EdgeKey, EdgeHandle> = HashMap::new();
    let mut handle_tuple: HashMap<EdgeHandle, TupleRef> = HashMap::new();
    // Paths through t, deduplicated by edge set. A path has at most m
    // edges, so a sorted m-element vec is both the compact dedup key
    // and the deterministic (element-sequence ordered) iteration
    // source for the per-witness min-cut loop below.
    let mut witness_paths: BTreeSet<Vec<EdgeHandle>> = BTreeSet::new();
    let mut t_edge: Option<EdgeHandle> = None;

    for val in &result.valuations {
        let mut path = Vec::with_capacity(m);
        let mut contains_t = false;
        let mut left = 0usize;
        for k in 0..m {
            let atom_idx = order[k];
            let tuple = val.atom_tuples[atom_idx];
            let right = if k + 1 == m {
                1
            } else {
                let key: Vec<Value> = boundaries[k]
                    .iter()
                    .map(|&v| val.value(v).expect("boundary variable bound").clone())
                    .collect();
                match nodes.entry((k, key)) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let id = net.add_node();
                        e.insert(id);
                        id
                    }
                }
            };
            let endo = db.is_endogenous(tuple);
            let key = if endo {
                EdgeKey::Tuple(tuple)
            } else {
                EdgeKey::Exo(k, left, right)
            };
            let handle = *edges.entry(key).or_insert_with(|| {
                let h = net.add_edge(left, right, if endo { 1 } else { INF });
                if endo {
                    handle_tuple.insert(h, tuple);
                }
                h
            });
            if endo && tuple == t {
                contains_t = true;
                t_edge = Some(handle);
            }
            path.push(handle);
            left = right;
        }
        if contains_t {
            path.sort();
            path.dedup();
            witness_paths.insert(path);
        }
    }

    let Some(t_edge) = t_edge else {
        // t grounds no valuation: not a cause.
        return Ok((
            Responsibility::not_a_cause(),
            FlowStats {
                nodes: net.node_count(),
                edges: net.edge_count(),
                paths: 0,
                flow_runs: 0,
            },
        ));
    };
    net.set_capacity(t_edge, 0);

    let mut stats = FlowStats {
        nodes: net.node_count(),
        edges: net.edge_count(),
        paths: witness_paths.len(),
        flow_runs: 0,
    };

    let mut best: Option<(u64, Vec<TupleRef>)> = None;
    for path in &witness_paths {
        // Protect the witness path: everything on it except t becomes ∞.
        let saved: Vec<(EdgeHandle, u64)> = path
            .iter()
            .filter(|&&h| h != t_edge)
            .map(|&h| (h, net.capacity(h)))
            .collect();
        for &(h, _) in &saved {
            net.set_capacity(h, INF);
        }
        let flow = net.max_flow(0, 1, algo);
        stats.flow_runs += 1;
        for &(h, cap) in &saved {
            net.set_capacity(h, cap);
        }
        if best.as_ref().is_none_or(|(b, _)| flow.value < *b) {
            let gamma: Vec<TupleRef> = flow
                .min_cut
                .iter()
                .filter_map(|h| handle_tuple.get(h).copied())
                .collect();
            debug_assert_eq!(
                gamma.len() as u64,
                flow.value,
                "cut is unit-capacity tuples"
            );
            best = Some((flow.value, gamma));
        }
    }
    let (_, gamma) = best.expect("witness path exists for t");
    Ok((Responsibility::from_contingency(gamma), stats))
}

/// Mark every atom with the nature of its relation as partitioned in the
/// database; errors on mixed relations (Algorithm 1's "w.l.o.g." setup).
/// Atoms already marked are kept as-is.
fn mark_query(db: &Database, q: &ConjunctiveQuery) -> Result<ConjunctiveQuery, CoreError> {
    let mut marked = q.clone();
    for i in 0..marked.atoms().len() {
        if marked.atoms()[i].nature != Nature::Any {
            continue;
        }
        let rel = db.require_relation(&marked.atoms()[i].relation)?;
        let relation = db.relation(rel);
        let endo_count = relation.endogenous_count();
        let nature = if endo_count == relation.len() {
            Nature::Endo
        } else if endo_count == 0 {
            Nature::Exo
        } else {
            return Err(CoreError::UnmarkedAtom {
                relation: marked.atoms()[i].relation.clone(),
            });
        };
        marked.atom_mut(i).nature = nature;
    }
    Ok(marked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resp::exact::why_so_responsibility_exact;
    use causality_engine::{tup, Schema};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// Example 4.2's query R(x,y), S(y,z), both endogenous, on a small
    /// instance with a shared y value.
    #[test]
    fn example_4_2_shape() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let r_x1y2 = db.insert_endo(r, tup!["x1", "y2"]);
        db.insert_endo(r, tup!["x2", "y1"]);
        db.insert_endo(s, tup!["y2", "z1"]);
        db.insert_endo(s, tup!["y2", "z2"]);
        db.insert_endo(s, tup!["y1", "z1"]);
        let query = q("q :- R(x, y), S(y, z)");

        // R(x1,y2): witness path via S(y2,z1) or S(y2,z2). The rest of the
        // query is killed by removing R(x2,y1) (cheaper than both S
        // tuples) and the other S tuple on y2 is... let's just compare to
        // the exact solver.
        let flow = why_so_responsibility_flow(&db, &query, r_x1y2).unwrap();
        let exact = why_so_responsibility_exact(&db, &query, r_x1y2).unwrap();
        assert_eq!(flow.rho, exact.rho);
        assert!(flow.is_cause());
    }

    /// Flow and exact agree on every endogenous tuple of Example 2.2's
    /// grounded answers.
    #[test]
    fn flow_matches_exact_on_example_2_2() {
        use causality_engine::database::example_2_2;
        let db = example_2_2();
        for answer in ["a2", "a3", "a4"] {
            let query = q("q(x) :- R(x, y), S(y)").ground(&[causality_engine::Value::str(answer)]);
            for t in db.endogenous_tuples() {
                let flow = why_so_responsibility_flow(&db, &query, t).unwrap();
                let exact = why_so_responsibility_exact(&db, &query, t).unwrap();
                assert_eq!(flow.rho, exact.rho, "answer {answer} tuple {t:?}");
            }
        }
    }

    /// Weakly linear (but not linear) query: triangle with exogenous S —
    /// Example 4.12's first weakening. Flow must agree with exact.
    #[test]
    fn weakly_linear_triangle_with_exogenous_side() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z", "x"]));
        for (x, y) in [(1, 2), (1, 3), (4, 2)] {
            db.insert_endo(r, tup![x, y]);
        }
        for (y, z) in [(2, 5), (3, 5), (2, 6)] {
            db.insert_exo(s, tup![y, z]);
        }
        for (z, x) in [(5, 1), (6, 4), (6, 1)] {
            db.insert_endo(tt, tup![z, x]);
        }
        let query = q("q :- R(x, y), S(y, z), T(z, x)");
        for t in db.endogenous_tuples() {
            let flow = why_so_responsibility_flow(&db, &query, t).unwrap();
            let exact = why_so_responsibility_exact(&db, &query, t).unwrap();
            assert_eq!(flow.rho, exact.rho, "tuple {t:?}");
        }
    }

    /// Chain of length 3 with a middle exogenous relation.
    #[test]
    fn chain3_mixed_natures() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z", "w"]));
        for (a, b) in [(1, 10), (2, 10), (3, 11)] {
            db.insert_endo(r, tup![a, b]);
        }
        for (a, b) in [(10, 20), (11, 20), (11, 21)] {
            db.insert_exo(s, tup![a, b]);
        }
        for (a, b) in [(20, 30), (21, 30)] {
            db.insert_endo(tt, tup![a, b]);
        }
        let query = q("q :- R(x, y), S(y, z), T(z, w)");
        for t in db.endogenous_tuples() {
            let flow = why_so_responsibility_flow(&db, &query, t).unwrap();
            let exact = why_so_responsibility_exact(&db, &query, t).unwrap();
            assert_eq!(flow.rho, exact.rho, "tuple {t:?}");
        }
    }

    #[test]
    fn counterfactual_and_non_cause_cases() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        let r1 = db.insert_endo(r, tup![1, 2]);
        let s2 = db.insert_endo(s, tup![2]);
        let dangling = db.insert_endo(s, tup![9]); // joins nothing
        let query = q("q :- R(x, y), S(y)");
        assert_eq!(
            why_so_responsibility_flow(&db, &query, r1).unwrap().rho,
            1.0
        );
        assert_eq!(
            why_so_responsibility_flow(&db, &query, s2).unwrap().rho,
            1.0
        );
        assert_eq!(
            why_so_responsibility_flow(&db, &query, dangling)
                .unwrap()
                .rho,
            0.0
        );
    }

    #[test]
    fn single_atom_query() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t1 = db.insert_endo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        db.insert_endo(r, tup![3]);
        let query = q("q :- R(x)");
        let resp = why_so_responsibility_flow(&db, &query, t1).unwrap();
        // Remove the two other tuples, then t1 is counterfactual: ρ = 1/3.
        assert!((resp.rho - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(resp.min_contingency.unwrap().len(), 2);
    }

    #[test]
    fn rejects_non_weakly_linear_and_self_joins() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let tt = db.add_relation(Schema::new("T", &["z", "x"]));
        let t0 = db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(tt, tup![3, 1]);
        let err =
            why_so_responsibility_flow(&db, &q("h2 :- R(x, y), S(y, z), T(z, x)"), t0).unwrap_err();
        assert!(matches!(err, CoreError::NotWeaklyLinear { .. }));

        let err = why_so_responsibility_flow(&db, &q("q :- R(x, y), R(y, z)"), t0).unwrap_err();
        assert!(matches!(err, CoreError::SelfJoin { .. }));
    }

    #[test]
    fn rejects_mixed_relations() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let t0 = db.insert_endo(r, tup![1]);
        db.insert_exo(r, tup![2]);
        let err = why_so_responsibility_flow(&db, &q("q :- R(x)"), t0).unwrap_err();
        assert!(matches!(err, CoreError::UnmarkedAtom { .. }));
    }

    #[test]
    fn edmonds_karp_and_dinic_agree() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        for i in 0..6i64 {
            db.insert_endo(r, tup![i % 3, i]);
            db.insert_endo(s, tup![i, i / 2]);
        }
        let query = q("q :- R(x, y), S(y, z)");
        for t in db.endogenous_tuples() {
            let (a, _) =
                why_so_responsibility_flow_with(&db, &query, t, FlowAlgorithm::Dinic).unwrap();
            let (b, _) =
                why_so_responsibility_flow_with(&db, &query, t, FlowAlgorithm::EdmondsKarp)
                    .unwrap();
            assert_eq!(a.rho, b.rho);
        }
    }

    #[test]
    fn stats_reflect_network_shape() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        let t0 = db.insert_endo(r, tup![1, 2]);
        db.insert_endo(s, tup![2, 3]);
        db.insert_endo(s, tup![2, 4]);
        let (resp, stats) = why_so_responsibility_flow_with(
            &db,
            &q("q :- R(x, y), S(y, z)"),
            t0,
            FlowAlgorithm::Dinic,
        )
        .unwrap();
        assert_eq!(resp.rho, 1.0);
        assert!(stats.nodes >= 3); // source, sink, junction y=2
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.paths, 2);
        assert_eq!(stats.flow_runs, 2);
    }
}
