//! Generating the candidate missing tuples `Dn` for Why-No questions.
//!
//! The paper assumes the Why-No endogenous set `Dn` (the *potentially
//! missing* tuples) is given: "We do not discuss in this paper how to
//! compute Dn: this has been addressed in recent work \[Huang et al.,
//! 15\]". This module supplies that missing substrate, in the spirit of
//! \[15\]'s provenance of non-answers: enumerate the valuations of the
//! query over the active domain that *would* derive the missing answer,
//! and collect the tuples each valuation needs beyond the existing
//! database.
//!
//! Two practical guards keep the enumeration tractable and the output
//! useful:
//!
//! * `max_new_per_derivation` — a derivation requiring many brand-new
//!   tuples is a poor explanation; `1` yields only counterfactual
//!   insertions, `m` everything.
//! * trusted relations — relations the user does not consider repairable
//!   (e.g. reference data) contribute no candidates; their atoms must be
//!   satisfied by existing tuples.

use crate::error::CoreError;
use causality_engine::{
    ConjunctiveQuery, Database, EngineError, SharedIndexCache, Term, Tuple, TupleRef, Value, VarId,
};
use causality_lineage::{non_answer_lineage_cached, LineageArena};
use std::collections::BTreeSet;

/// Configuration for candidate generation.
#[derive(Clone, Debug)]
pub struct CandidateConfig {
    /// Maximum number of *new* tuples one derivation may require.
    pub max_new_per_derivation: usize,
    /// Relations that must not be repaired (no candidates generated).
    pub trusted_relations: Vec<String>,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_new_per_derivation: usize::MAX,
            trusted_relations: Vec::new(),
        }
    }
}

/// Enumerate candidate missing tuples for a Boolean non-answer: for every
/// assignment of the query's variables to active-domain values, ground
/// each atom; if the grounded tuple is absent, it is a candidate. The
/// union over all derivations within budget is returned, grouped by
/// relation name.
///
/// The result is suitable for insertion as endogenous tuples (via
/// [`install_candidates`]) followed by the Why-No machinery of
/// [`crate::causes::why_no_causes`] / [`crate::resp::whyno`].
pub fn suggest_candidates(
    db: &Database,
    q: &ConjunctiveQuery,
    config: &CandidateConfig,
) -> Result<Vec<(String, Tuple)>, CoreError> {
    if !q.is_boolean() {
        return Err(CoreError::Engine(EngineError::NotBoolean(q.to_string())));
    }
    // Resolve relations up front.
    for atom in q.atoms() {
        let rel = db.require_relation(&atom.relation)?;
        let arity = db.relation(rel).schema().arity();
        if arity != atom.arity() {
            return Err(CoreError::Engine(EngineError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: arity,
                found: atom.arity(),
            }));
        }
    }
    let adom = db.active_domain();
    let vars: Vec<VarId> = q.body_vars().into_iter().collect();
    if adom.is_empty() && !vars.is_empty() {
        return Ok(Vec::new());
    }

    let mut found: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let mut assignment: Vec<Option<Value>> = vec![None; q.var_count()];
    enumerate(db, q, config, &adom, &vars, 0, &mut assignment, &mut found);
    Ok(found.into_iter().collect())
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    db: &Database,
    q: &ConjunctiveQuery,
    config: &CandidateConfig,
    adom: &[Value],
    vars: &[VarId],
    depth: usize,
    assignment: &mut Vec<Option<Value>>,
    found: &mut BTreeSet<(String, Tuple)>,
) {
    if depth == vars.len() {
        // Ground every atom; collect the missing tuples of this derivation.
        let mut missing: Vec<(String, Tuple)> = Vec::new();
        for atom in q.atoms() {
            let rel = db.relation_id(&atom.relation).expect("validated");
            let tuple: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => assignment[v.0 as usize]
                        .clone()
                        .expect("all variables assigned"),
                    Term::Const(c) => c.clone(),
                })
                .collect();
            if db.relation(rel).find(&tuple).is_none() {
                if config.trusted_relations.contains(&atom.relation) {
                    return; // derivation needs repairing a trusted relation
                }
                if !missing.contains(&(atom.relation.clone(), tuple.clone())) {
                    missing.push((atom.relation.clone(), tuple));
                }
                if missing.len() > config.max_new_per_derivation {
                    return;
                }
            }
        }
        if !missing.is_empty() {
            found.extend(missing);
        }
        return;
    }
    // Prune: if some atom is already fully grounded and is neither present
    // nor repairable within budget, deeper assignments cannot help — but
    // budget interacts across atoms, so we only prune on trusted atoms.
    let var = vars[depth];
    for value in adom {
        assignment[var.0 as usize] = Some(value.clone());
        let mut viable = true;
        for atom in q.atoms() {
            if !config.trusted_relations.contains(&atom.relation) {
                continue;
            }
            // A trusted atom whose terms are all grounded must exist.
            let grounded: Option<Tuple> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => assignment[v.0 as usize].clone(),
                    Term::Const(c) => Some(c.clone()),
                })
                .collect();
            if let Some(tuple) = grounded {
                let rel = db.relation_id(&atom.relation).expect("validated");
                if db.relation(rel).find(&tuple).is_none() {
                    viable = false;
                    break;
                }
            }
        }
        if viable {
            enumerate(db, q, config, adom, vars, depth + 1, assignment, found);
        }
    }
    assignment[var.0 as usize] = None;
}

/// Screen installed Why-No candidates against **one** shared non-answer
/// lineage: returns the subset of `installed` that are actual causes
/// (Theorem 3.2 over the minimized lineage). The lineage is interned and
/// minimized once in arena form; each candidate check is a single bitset
/// membership test — the per-tuple alternative
/// ([`crate::causes::why_no_causes`]) recomputes nothing either, but
/// materialises full cause sets where a serving layer often only wants
/// "which of *these* repairs matter".
pub fn screen_candidates(
    db: &Database,
    q: &ConjunctiveQuery,
    installed: &[TupleRef],
    cache: Option<&SharedIndexCache>,
) -> Result<Vec<TupleRef>, CoreError> {
    let phi = non_answer_lineage_cached(db, q, cache)?;
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let phin = bits.minimized();
    if phin.is_tautology() {
        // Already an answer on Dx: no repair matters.
        return Ok(Vec::new());
    }
    let vars = phin.variables();
    Ok(installed
        .iter()
        .copied()
        .filter(|&t| arena.id(t).is_some_and(|v| vars.contains(v as usize)))
        .collect())
}

/// Insert candidates as endogenous tuples (the Why-No `Dn`), returning
/// their refs. Existing tuples are left untouched.
pub fn install_candidates(
    db: &mut Database,
    candidates: &[(String, Tuple)],
) -> Result<Vec<TupleRef>, CoreError> {
    let mut refs = Vec::with_capacity(candidates.len());
    for (rel_name, tuple) in candidates {
        let rel = db.require_relation(rel_name)?;
        refs.push(db.insert_endo(rel, tuple.clone()));
    }
    Ok(refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::why_no_causes;
    use crate::resp::whyno::why_no_responsibility;
    use causality_engine::{tup, Schema};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// R(1,2) exists; S is empty. The only way to satisfy q with adom
    /// values is inserting S(2) (plus derivations via other values that
    /// need 2 new tuples).
    #[test]
    fn single_missing_tuple_candidates() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);

        let config = CandidateConfig {
            max_new_per_derivation: 1,
            ..Default::default()
        };
        let candidates = suggest_candidates(&db, &q("q :- R(x, y), S(y)"), &config).unwrap();
        assert_eq!(candidates, vec![("S".to_string(), tup![2])]);
    }

    #[test]
    fn budget_two_adds_joint_repairs() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(s, tup![7]);

        let config = CandidateConfig {
            max_new_per_derivation: 2,
            ..Default::default()
        };
        // With S(7) present, repairing R(x,7) suffices; budget 2 also
        // allows R(x,y)+S(y) pairs over the active domain {7}.
        let candidates = suggest_candidates(&db, &q("q :- R(x, y), S(y)"), &config).unwrap();
        assert!(candidates.contains(&("R".to_string(), tup![7, 7])));
    }

    #[test]
    fn trusted_relations_are_never_repaired() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(s, tup![1]);
        let config = CandidateConfig {
            max_new_per_derivation: 3,
            trusted_relations: vec!["S".to_string()],
        };
        let candidates = suggest_candidates(&db, &q("q :- R(x, y), S(y)"), &config).unwrap();
        assert!(candidates.iter().all(|(rel, _)| rel == "R"));
        // Only derivations through the existing S(1) survive.
        assert!(candidates.contains(&("R".to_string(), tup![1, 1])));
        assert_eq!(candidates.len(), 1);
    }

    /// End-to-end: generate candidates, install them, and run the Why-No
    /// machinery — the counterfactual repair surfaces with ρ = 1.
    #[test]
    fn candidates_feed_why_no_pipeline() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);

        let query = q("q :- R(x, y), S(y)");
        let config = CandidateConfig {
            max_new_per_derivation: 1,
            ..Default::default()
        };
        let candidates = suggest_candidates(&db, &query, &config).unwrap();
        let refs = install_candidates(&mut db, &candidates).unwrap();
        assert_eq!(refs.len(), 1);

        let causes = why_no_causes(&db, &query).unwrap();
        assert!(causes.counterfactual.contains(&refs[0]));
        let resp = why_no_responsibility(&db, &query, refs[0]).unwrap();
        assert_eq!(resp.rho, 1.0);

        // The bitset screen agrees: the installed candidate matters.
        let screened = screen_candidates(&db, &query, &refs, None).unwrap();
        assert_eq!(screened, refs);
    }

    /// The screen keeps exactly the installed candidates the full cause
    /// computation would report, and drops irrelevant insertions.
    #[test]
    fn screen_filters_irrelevant_candidates() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup![1, 2]);
        let useful = db.insert_endo(s, tup![2]);
        let dangling = db.insert_endo(s, tup![9]); // joins nothing
        let query = q("q :- R(x, y), S(y)");
        let screened = screen_candidates(&db, &query, &[useful, dangling], None).unwrap();
        assert_eq!(screened, vec![useful]);
        let causes = why_no_causes(&db, &query).unwrap();
        assert!(causes.is_cause(useful) && !causes.is_cause(dangling));
    }

    /// A query already true on Dx screens every candidate out.
    #[test]
    fn screen_on_actual_answer_is_empty() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![1]);
        let t = db.insert_endo(r, tup![2]);
        let screened = screen_candidates(&db, &q("q :- R(x)"), &[t], None).unwrap();
        assert!(screened.is_empty());
    }

    #[test]
    fn constants_restrict_candidates() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(s, tup!["a"]);
        let config = CandidateConfig {
            max_new_per_derivation: 1,
            ..Default::default()
        };
        let candidates = suggest_candidates(&db, &q("q :- R('k', y), S(y)"), &config).unwrap();
        assert_eq!(candidates, vec![("R".to_string(), tup!["k", "a"])]);
    }

    #[test]
    fn empty_domain_yields_nothing() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x"]));
        let candidates =
            suggest_candidates(&db, &q("q :- R(x)"), &CandidateConfig::default()).unwrap();
        assert!(candidates.is_empty());
    }

    #[test]
    fn non_boolean_rejected() {
        let mut db = Database::new();
        db.add_relation(Schema::new("R", &["x"]));
        let err =
            suggest_candidates(&db, &q("q(x) :- R(x)"), &CandidateConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::Engine(EngineError::NotBoolean(_))));
    }

    #[test]
    fn already_true_query_yields_existing_only_derivations() {
        // If the query is already satisfied, derivations needing zero new
        // tuples contribute no candidates; others may still appear.
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_exo(r, tup![5]);
        let config = CandidateConfig {
            max_new_per_derivation: 1,
            ..Default::default()
        };
        let candidates = suggest_candidates(&db, &q("q :- R(x)"), &config).unwrap();
        assert!(
            candidates.is_empty(),
            "single atom over adom {{5}} already present"
        );
    }
}
