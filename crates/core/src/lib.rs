//! # causality-core — causality and responsibility for query answers
//!
//! The primary contribution of *Meliou, Gatterbauer, Moore, Suciu: "The
//! Complexity of Causality and Responsibility for Query Answers and
//! non-Answers"*, implemented end to end:
//!
//! * [`causes`] — Why-So and Why-No **causality** (Def. 2.1): counterfactual
//!   and actual causes, computed in PTIME from the non-redundant conjuncts
//!   of the n-lineage (Theorem 3.2), plus a brute-force contingency-search
//!   oracle implementing Def. 2.1 literally (for cross-validation).
//! * [`fo`] — Theorem 3.4: the non-recursive stratified Datalog program
//!   (two strata, one negation level) that computes all causes inside the
//!   database, with Corollary 3.7's negation-free special case.
//! * [`resp`] — **responsibility** (Def. 2.3): the max-flow algorithm for
//!   (weakly) linear queries (Algorithm 1 / Theorem 4.5), an exact
//!   branch-and-bound solver for the NP-hard cases, and the PTIME Why-No
//!   computation (Theorem 4.17).
//! * [`dichotomy`] — the complexity dichotomy (Corollary 4.14): linearity
//!   (Def. 4.4), weakening (Def. 4.9), rewriting (Def. 4.6), recognition of
//!   the canonical hard queries h1*, h2*, h3* (Theorem 4.1), and the
//!   classifier that returns a PTIME or NP-hardness *certificate* for any
//!   self-join-free conjunctive query.
//! * [`ranking`] / [`explain`] — the user-facing API of the introduction:
//!   rank the causes of a (non-)answer by responsibility (Fig. 2b).
//! * [`whyno_candidates`] — generating the Why-No candidate set `Dn`
//!   (the substrate the paper delegates to Huang et al. \[15\]).
//!
//! # Quickstart
//!
//! ```
//! use causality_core::explain::Explainer;
//! use causality_engine::{database::example_2_2, ConjunctiveQuery, Value};
//!
//! let db = example_2_2();
//! let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
//! let explanation = Explainer::new(&db, &q).why(&[Value::str("a4")]).unwrap();
//! // S(a3) and S(a2) are actual causes with responsibility 1/2, etc.
//! assert!(!explanation.causes.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causes;
pub mod dichotomy;
pub mod error;
pub mod explain;
pub mod fo;
pub mod ranking;
pub mod resp;
pub mod whyno_candidates;

pub use causes::{why_no_causes, why_so_causes, CauseSet};
pub use dichotomy::classify::{classify_why_so, Complexity, DichotomyTag};
pub use error::CoreError;
pub use explain::{ExplainMode, ExplainTiming, Explainer};
pub use ranking::{rank_why_so_parallel, RankConfig, RankMeta, RankStats, RankedTopK};
pub use resp::approx::{anytime_min_contingency, AnytimeOutcome, ApproxBudget, RhoBounds};
pub use resp::{why_no_responsibility, why_so_responsibility, Responsibility};
pub use whyno_candidates::{
    install_candidates, screen_candidates, suggest_candidates, CandidateConfig,
};
