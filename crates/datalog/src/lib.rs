//! # causality-datalog — stratified Datalog with negation
//!
//! Theorem 3.4 of the paper shows that the set of all causes of a
//! conjunctive query "can be expressed in non-recursive stratified Datalog
//! with negation, with only two strata" — and hence as a SQL query. This
//! crate supplies the language that theorem targets:
//!
//! * [`ast`] — programs, rules, literals (positive and negated) over the
//!   engine's relations, with `R^n` / `R^x` views of the endogenous /
//!   exogenous partition as EDB predicates.
//! * [`safety`] — range-restriction checks (head and negated variables
//!   must be bound by positive body literals).
//! * [`mod@stratify`] — stratification with negative-cycle detection. The
//!   evaluator supports arbitrary stratified programs (recursion included),
//!   a strict superset of what Theorem 3.4 emits.
//! * [`eval`] — bottom-up fixpoint evaluation, stratum by stratum.
//! * [`pretty`] — rendering as Datalog text and as executable-style SQL
//!   (`SELECT … WHERE NOT EXISTS`), substantiating the paper's claim that
//!   causes "can be retrieved … by simply running a certain SQL query".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod pretty;
pub mod safety;
pub mod stratify;

pub use ast::{DTerm, Literal, Program, Rule};
pub use eval::{evaluate_program, DatalogResult};
pub use stratify::stratify;
