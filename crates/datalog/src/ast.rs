//! Datalog abstract syntax.
//!
//! A program is a list of rules `H(x̄) :- L1, …, Lk` where each body
//! literal is a possibly negated atom. Predicates split into:
//!
//! * **EDB** — relations of the underlying [`Database`], optionally viewed
//!   through the endogenous/exogenous partition (`R^n` / `R^x`), exactly
//!   the `Rn_i`, `Rx_i` symbols of Theorem 3.4's program;
//! * **IDB** — predicates defined by rules (e.g. the `I` and `C_Ri`
//!   predicates of Examples 3.5/3.6).
//!
//! [`Database`]: causality_engine::Database

use causality_engine::{Nature, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A term in a Datalog literal: named variable or constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DTerm {
    /// A variable, scoped to its rule.
    Var(String),
    /// A constant.
    Const(Value),
}

impl DTerm {
    /// Shorthand variable constructor.
    pub fn var(name: impl Into<String>) -> Self {
        DTerm::Var(name.into())
    }

    /// Shorthand constant constructor.
    pub fn cst(v: impl Into<Value>) -> Self {
        DTerm::Const(v.into())
    }

    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            DTerm::Var(v) => Some(v),
            DTerm::Const(_) => None,
        }
    }
}

/// A body literal `[¬] P^nature(t̄)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Literal {
    /// Predicate (EDB relation or IDB symbol).
    pub predicate: String,
    /// Endo/exo view for EDB predicates; must be `Any` for IDB predicates.
    pub nature: Nature,
    /// Argument terms.
    pub terms: Vec<DTerm>,
    /// Whether the literal is negated.
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(predicate: impl Into<String>, nature: Nature, terms: Vec<DTerm>) -> Self {
        Literal {
            predicate: predicate.into(),
            nature,
            terms,
            negated: false,
        }
    }

    /// A negated literal.
    pub fn neg(predicate: impl Into<String>, nature: Nature, terms: Vec<DTerm>) -> Self {
        Literal {
            predicate: predicate.into(),
            nature,
            terms,
            negated: true,
        }
    }

    /// The distinct variable names of the literal.
    pub fn vars(&self) -> BTreeSet<&str> {
        self.terms.iter().filter_map(DTerm::as_var).collect()
    }
}

/// One rule `head :- body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head predicate name.
    pub head: String,
    /// Head argument terms.
    pub head_terms: Vec<DTerm>,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: impl Into<String>, head_terms: Vec<DTerm>, body: Vec<Literal>) -> Self {
        Rule {
            head: head.into(),
            head_terms,
            body,
        }
    }
}

/// A Datalog program: rules plus a stable list of IDB output predicates.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// The IDB predicates: those appearing in some rule head, in first-use
    /// order.
    pub fn idb_predicates(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.as_str()) {
                out.push(&r.head);
            }
        }
        out
    }

    /// Whether `name` is an IDB predicate.
    pub fn is_idb(&self, name: &str) -> bool {
        self.rules.iter().any(|r| r.head == name)
    }

    /// The EDB predicates referenced (body predicates that are not IDB).
    pub fn edb_predicates(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            for l in &r.body {
                if !self.is_idb(&l.predicate) && !out.contains(&l.predicate.as_str()) {
                    out.push(&l.predicate);
                }
            }
        }
        out
    }
}

impl fmt::Display for DTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTerm::Var(v) => write!(f, "{v}"),
            DTerm::Const(Value::Int(i)) => write!(f, "{i}"),
            DTerm::Const(Value::Str(s)) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬")?;
        }
        write!(f, "{}{}(", self.predicate, self.nature.suffix())?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 3.5 program:
    /// I(y)      :- Rx(x,y), Sn(y)
    /// CR(x,y)   :- Rn(x,y), Sn(y), ¬I(y)
    /// CS(y)     :- Rn(x,y), Sn(y), ¬I(y)
    /// CS(y)     :- Rx(x,y), Sn(y)
    pub(crate) fn example_3_5_program() -> Program {
        let x = || DTerm::var("x");
        let y = || DTerm::var("y");
        Program::new(vec![
            Rule::new(
                "I",
                vec![y()],
                vec![
                    Literal::pos("R", Nature::Exo, vec![x(), y()]),
                    Literal::pos("S", Nature::Endo, vec![y()]),
                ],
            ),
            Rule::new(
                "CR",
                vec![x(), y()],
                vec![
                    Literal::pos("R", Nature::Endo, vec![x(), y()]),
                    Literal::pos("S", Nature::Endo, vec![y()]),
                    Literal::neg("I", Nature::Any, vec![y()]),
                ],
            ),
            Rule::new(
                "CS",
                vec![y()],
                vec![
                    Literal::pos("R", Nature::Endo, vec![x(), y()]),
                    Literal::pos("S", Nature::Endo, vec![y()]),
                    Literal::neg("I", Nature::Any, vec![y()]),
                ],
            ),
            Rule::new(
                "CS",
                vec![y()],
                vec![
                    Literal::pos("R", Nature::Exo, vec![x(), y()]),
                    Literal::pos("S", Nature::Endo, vec![y()]),
                ],
            ),
        ])
    }

    #[test]
    fn idb_edb_classification() {
        let p = example_3_5_program();
        assert_eq!(p.idb_predicates(), vec!["I", "CR", "CS"]);
        assert_eq!(p.edb_predicates(), vec!["R", "S"]);
        assert!(p.is_idb("I"));
        assert!(!p.is_idb("R"));
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = example_3_5_program();
        let text = p.to_string();
        assert!(text.contains("I(y) :- R^x(x, y), S^n(y)"));
        assert!(text.contains("CR(x, y) :- R^n(x, y), S^n(y), ¬I(y)"));
    }

    #[test]
    fn literal_vars() {
        let l = Literal::pos(
            "R",
            Nature::Any,
            vec![DTerm::var("x"), DTerm::cst(3), DTerm::var("x")],
        );
        assert_eq!(l.vars().len(), 1);
    }
}
