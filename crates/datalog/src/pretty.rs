//! Rendering programs as SQL.
//!
//! Theorem 3.4's punchline: "one can retrieve all causes to a conjunctive
//! query by simply running a certain SQL query. In general, the latter
//! cannot be a conjunctive query, but must have one level of negation."
//! This module makes the claim concrete by translating a stratified
//! program into SQL: one `SELECT DISTINCT` per rule, `UNION` across rules
//! of the same predicate, and `NOT EXISTS` subqueries for negated
//! literals. Endogenous/exogenous views become `WHERE endo = TRUE/FALSE`
//! filters on an `endo` flag column.
//!
//! The output targets readability (it is printed by the experiment
//! harnesses next to the Datalog form); lower strata are emitted as common
//! table expressions so the whole program is one executable statement.

use crate::ast::{DTerm, Literal, Program, Rule};
use crate::stratify::stratify;
use causality_engine::{Nature, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render an entire program as a single SQL statement: lower-stratum IDB
/// predicates become CTEs (`WITH name AS (…)`), and the final stratum's
/// predicates are emitted as a UNION of labelled selects.
pub fn program_to_sql(program: &Program) -> String {
    let (strata, _) = match stratify(program) {
        Ok(s) => s,
        Err(e) => return format!("-- not stratifiable: {e}"),
    };
    let idb = program.idb_predicates();
    let mut ordered: Vec<&str> = idb.clone();
    ordered.sort_by_key(|p| strata[*p]);

    let mut sql = String::new();
    let mut ctes: Vec<String> = Vec::new();
    for pred in &ordered {
        let rules: Vec<&Rule> = program.rules.iter().filter(|r| &r.head == pred).collect();
        let selects: Vec<String> = rules.iter().map(|r| rule_to_select(r)).collect();
        let body = selects.join("\n  UNION\n");
        ctes.push(format!("{pred} AS (\n{body}\n)"));
    }
    if !ctes.is_empty() {
        let _ = write!(sql, "WITH {}", ctes.join(",\n"));
    }
    let finals: Vec<String> = ordered
        .iter()
        .map(|p| format!("SELECT '{p}' AS predicate, * FROM {p}"))
        .collect();
    let _ = write!(sql, "\n{}", finals.join("\nUNION ALL\n"));
    sql
}

/// Render one rule as a `SELECT`.
pub fn rule_to_select(rule: &Rule) -> String {
    let mut aliases: Vec<(String, &Literal)> = Vec::new();
    for (i, lit) in rule.body.iter().enumerate() {
        aliases.push((format!("t{i}"), lit));
    }
    // First binding position of each variable among positive literals.
    let mut var_col: HashMap<&str, String> = HashMap::new();
    let mut conditions: Vec<String> = Vec::new();
    for (alias, lit) in aliases.iter().filter(|(_, l)| !l.negated) {
        for (pos, term) in lit.terms.iter().enumerate() {
            let col = format!("{alias}.c{pos}");
            match term {
                DTerm::Const(c) => conditions.push(format!("{col} = {}", sql_value(c))),
                DTerm::Var(v) => match var_col.get(v.as_str()) {
                    Some(first) => conditions.push(format!("{col} = {first}")),
                    None => {
                        var_col.insert(v, col);
                    }
                },
            }
        }
        if let Some(cond) = nature_condition(alias, lit.nature) {
            conditions.push(cond);
        }
    }
    // Negated literals become NOT EXISTS.
    for (_, lit) in aliases.iter().filter(|(_, l)| l.negated) {
        let mut inner: Vec<String> = Vec::new();
        for (pos, term) in lit.terms.iter().enumerate() {
            let col = format!("n.c{pos}");
            match term {
                DTerm::Const(c) => inner.push(format!("{col} = {}", sql_value(c))),
                DTerm::Var(v) => {
                    let outer = var_col
                        .get(v.as_str())
                        .cloned()
                        .unwrap_or_else(|| "/* unbound */".to_string());
                    inner.push(format!("{col} = {outer}"));
                }
            }
        }
        if let Some(cond) = nature_condition("n", lit.nature) {
            inner.push(cond);
        }
        let where_inner = if inner.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", inner.join(" AND "))
        };
        conditions.push(format!(
            "NOT EXISTS (SELECT 1 FROM {} n{where_inner})",
            lit.predicate
        ));
    }

    let projections: Vec<String> = rule
        .head_terms
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            DTerm::Var(v) => format!("{} AS c{i}", var_col[v.as_str()]),
            DTerm::Const(c) => format!("{} AS c{i}", sql_value(c)),
        })
        .collect();
    let from: Vec<String> = aliases
        .iter()
        .filter(|(_, l)| !l.negated)
        .map(|(alias, lit)| format!("{} {alias}", lit.predicate))
        .collect();
    let where_clause = if conditions.is_empty() {
        String::new()
    } else {
        format!("\n  WHERE {}", conditions.join("\n    AND "))
    };
    format!(
        "  SELECT DISTINCT {}\n  FROM {}{}",
        projections.join(", "),
        from.join(", "),
        where_clause
    )
}

fn nature_condition(alias: &str, nature: Nature) -> Option<String> {
    match nature {
        Nature::Any => None,
        Nature::Endo => Some(format!("{alias}.endo = TRUE")),
        Nature::Exo => Some(format!("{alias}.endo = FALSE")),
    }
}

fn sql_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DTerm, Literal, Program, Rule};
    use causality_engine::Nature;

    fn v(name: &str) -> DTerm {
        DTerm::var(name)
    }

    fn example_program() -> Program {
        Program::new(vec![
            Rule::new(
                "I",
                vec![v("y")],
                vec![
                    Literal::pos("R", Nature::Exo, vec![v("x"), v("y")]),
                    Literal::pos("S", Nature::Endo, vec![v("y")]),
                ],
            ),
            Rule::new(
                "CS",
                vec![v("y")],
                vec![
                    Literal::pos("R", Nature::Endo, vec![v("x"), v("y")]),
                    Literal::pos("S", Nature::Endo, vec![v("y")]),
                    Literal::neg("I", Nature::Any, vec![v("y")]),
                ],
            ),
        ])
    }

    #[test]
    fn single_rule_select_shape() {
        let p = example_program();
        let sql = rule_to_select(&p.rules[0]);
        // y first binds at R's second column (alias t0, position 1).
        assert!(
            sql.contains("SELECT DISTINCT t0.c1 AS c0"),
            "sql was: {sql}"
        );
        assert!(sql.contains("FROM R t0, S t1"));
        assert!(sql.contains("t0.endo = FALSE"));
        assert!(sql.contains("t1.endo = TRUE"));
        assert!(sql.contains("t1.c0 = t0.c1"), "join condition on y");
    }

    #[test]
    fn negation_becomes_not_exists() {
        let p = example_program();
        let sql = rule_to_select(&p.rules[1]);
        assert!(
            sql.contains("NOT EXISTS (SELECT 1 FROM I n WHERE n.c0 = t0.c1)"),
            "sql: {sql}"
        );
    }

    #[test]
    fn program_renders_with_ctes() {
        let p = example_program();
        let sql = program_to_sql(&p);
        assert!(sql.starts_with("WITH I AS ("));
        assert!(sql.contains("CS AS ("));
        assert!(sql.contains("SELECT 'CS' AS predicate, * FROM CS"));
    }

    #[test]
    fn constants_are_quoted() {
        let rule = Rule::new(
            "H",
            vec![v("x")],
            vec![Literal::pos(
                "R",
                Nature::Any,
                vec![v("x"), DTerm::cst("o'hara"), DTerm::cst(5)],
            )],
        );
        let sql = rule_to_select(&rule);
        assert!(sql.contains("t0.c1 = 'o''hara'"));
        assert!(sql.contains("t0.c2 = 5"));
    }

    #[test]
    fn union_across_rules_of_same_predicate() {
        let p = Program::new(vec![
            Rule::new(
                "A",
                vec![v("x")],
                vec![Literal::pos("R", Nature::Any, vec![v("x")])],
            ),
            Rule::new(
                "A",
                vec![v("x")],
                vec![Literal::pos("S", Nature::Any, vec![v("x")])],
            ),
        ]);
        let sql = program_to_sql(&p);
        assert!(sql.contains("UNION"));
        assert!(sql.matches("SELECT DISTINCT").count() >= 2);
    }
}
